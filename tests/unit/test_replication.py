"""Unit tests for the replication extension."""

import pytest

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.cache.nuca import AccessType
from repro.cache.replication import ReplicatingNucaL2, ReplicationConfig


@pytest.fixture()
def nuca():
    return ReplicatingNucaL2(build_topology(ChipConfig()))


def remote_address(nuca, cpu_id):
    """An address homed in a step-2 cluster for ``cpu_id``."""
    remote = nuca.search.plan(cpu_id).step2[0]
    return nuca.addr_map.compose(remote, 0)


def test_replica_installed_after_repeated_remote_reads(nuca):
    address = remote_address(nuca, 0)
    nuca.access(0, address, AccessType.READ, 0.0)       # miss, placed
    nuca.access(0, address, AccessType.READ, 10.0)      # remote hit 1
    nuca.access(0, address, AccessType.READ, 20.0)      # remote hit 2 -> replicate
    local = nuca.search.plan(0).local_cluster
    assert local in nuca.replicas_of(address)


def test_replica_hit_resolves_locally(nuca):
    address = remote_address(nuca, 0)
    for cycle in range(3):
        nuca.access(0, address, AccessType.READ, cycle * 10.0)
    outcome = nuca.access(0, address, AccessType.READ, 100.0)
    assert outcome.hit
    assert outcome.search_step == 1
    assert outcome.cluster == nuca.search.plan(0).local_cluster
    assert nuca.stats.counter("l2.replica_hits").value == 1


def test_write_invalidates_replicas(nuca):
    address = remote_address(nuca, 0)
    for cycle in range(3):
        nuca.access(0, address, AccessType.READ, cycle * 10.0)
    assert nuca.replica_count == 1
    nuca.access(1, address, AccessType.WRITE, 100.0)
    assert nuca.replica_count == 0
    assert nuca.stats.counter("l2.replica_invalidations").value == 1


def test_read_after_invalidation_goes_remote_again(nuca):
    address = remote_address(nuca, 0)
    for cycle in range(3):
        nuca.access(0, address, AccessType.READ, cycle * 10.0)
    nuca.access(1, address, AccessType.WRITE, 100.0)
    outcome = nuca.access(0, address, AccessType.READ, 200.0)
    assert outcome.search_step == 2  # replica gone, primary is remote


def test_replication_respects_capacity_guard():
    nuca = ReplicatingNucaL2(
        build_topology(ChipConfig()),
        ReplicationConfig(min_free_ways=17),  # never enough room (16 ways)
    )
    address = remote_address(nuca, 0)
    for cycle in range(5):
        nuca.access(0, address, AccessType.READ, cycle * 10.0)
    assert nuca.replica_count == 0


def test_replication_disabled():
    nuca = ReplicatingNucaL2(
        build_topology(ChipConfig()), ReplicationConfig(enabled=False)
    )
    address = remote_address(nuca, 0)
    for cycle in range(5):
        nuca.access(0, address, AccessType.READ, cycle * 10.0)
    assert nuca.replica_count == 0


def test_location_map_ignores_replicas(nuca):
    address = remote_address(nuca, 0)
    for cycle in range(3):
        nuca.access(0, address, AccessType.READ, cycle * 10.0)
    # The primary copy's location is unchanged by replication.
    assert nuca.location_of(address) == nuca.addr_map.decode(address).home_cluster


def test_replica_eviction_cleans_map(nuca):
    address = remote_address(nuca, 0)
    for cycle in range(3):
        nuca.access(0, address, AccessType.READ, cycle * 10.0)
    local = nuca.search.plan(0).local_cluster
    decoded = nuca.addr_map.decode(address)
    # Fill the local set with primaries until the replica is displaced.
    for way in range(16):
        tag = local + (way + 50) * 16
        filler = nuca.addr_map.compose(tag, decoded.index)
        nuca.access(0, filler, AccessType.READ, 1000.0 + way)
    assert local not in nuca.replicas_of(address)
    # And the displaced replica never perturbed the primaries' map.
    assert nuca.location_of(address) is not None

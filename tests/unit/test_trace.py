"""Unit tests for the structured event tracing layer."""

import io
import json

import pytest

from repro.noc.packet import MessageClass, Packet
from repro.noc.routing import Coord
from repro.sim.trace import (
    NULL_TRACER,
    NullTracer,
    RingTracer,
    TraceSpec,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)


def _packet(packet_id=7):
    packet = Packet(
        src=Coord(0, 0, 0),
        dest=Coord(1, 1, 1),
        size_flits=4,
        message_class=MessageClass.REQUEST,
    )
    packet.packet_id = packet_id  # pin the id so assertions are stable
    return packet


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.track("router.0.0.0") == 0
        # Probe methods are no-ops; nothing to observe but no crash either.
        tracer.packet_hop(1, 0, 7, "EAST", 0)
        tracer.bus_frame(2, 0, 1, 3)

    def test_module_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False


class TestRingTracer:
    def test_records_in_order(self):
        tracer = RingTracer()
        track = tracer.track("router.0.0.0")
        tracer.packet_hop(5, track, 1, "EAST", 0)
        tracer.packet_eject(9, track, 1, 4)
        events = list(tracer.events())
        assert [event[0] for event in events] == [5, 9]
        assert tracer.recorded == 2
        assert tracer.dropped == 0

    def test_ring_overwrites_oldest_and_counts_drops(self):
        tracer = RingTracer(limit=3)
        track = tracer.track("t")
        for ts in range(5):
            tracer.packet_hop(ts, track, ts, "EAST", 0)
        assert tracer.recorded == 3
        assert tracer.dropped == 2
        # Oldest two (ts 0, 1) were overwritten; survivors oldest-first.
        assert [event[0] for event in tracer.events()] == [2, 3, 4]

    def test_track_dedup(self):
        tracer = RingTracer()
        a = tracer.track("pillar.3.3")
        b = tracer.track("pillar.3.3")
        c = tracer.track("pillar.7.5")
        assert a == b
        assert a != c
        assert tracer.tracks() == ["pillar.3.3", "pillar.7.5"]

    def test_component_filter_suppresses_tracks(self):
        tracer = RingTracer(component_filter="pillar.*")
        router = tracer.track("router.0.0.0")
        pillar = tracer.track("pillar.3.3")
        assert not tracer.track_enabled(router)
        assert tracer.track_enabled(pillar)
        tracer.packet_hop(1, router, 1, "EAST", 0)
        tracer.bus_grant(2, pillar, 1, 0, 1, 0)
        events = list(tracer.events())
        assert len(events) == 1
        assert events[0][2] == pillar
        # Filtered events are suppressed, not dropped.
        assert tracer.dropped == 0

    def test_packet_inject_captures_packet_fields(self):
        tracer = RingTracer()
        track = tracer.track("router.0.0.0")
        tracer.packet_inject(3, track, _packet(packet_id=42))
        (event,) = tracer.events()
        assert event[3] == 42
        assert event[4] == (0, 0, 0)
        assert event[5] == (1, 1, 1)

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            RingTracer(limit=0)


class TestTraceSpec:
    def test_defaults_round_trip(self):
        spec = TraceSpec()
        assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_filter_round_trip(self):
        spec = TraceSpec(format="jsonl", limit=99, component_filter="router.*")
        assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_invalid_format_rejected(self):
        with pytest.raises(ValueError, match="chrome"):
            TraceSpec(format="binary")

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(limit=-1)

    def test_filename_suffix(self):
        assert TraceSpec(format="chrome").filename_suffix() == ".trace.json"
        assert TraceSpec(format="jsonl").filename_suffix() == ".trace.jsonl"

    def test_make_tracer(self):
        tracer = TraceSpec(limit=10, component_filter="cpu.*").make_tracer()
        assert isinstance(tracer, RingTracer)
        assert tracer.limit == 10
        assert tracer.component_filter == "cpu.*"


def _sample_tracer():
    tracer = RingTracer()
    router = tracer.track("router.0.0.0")
    pillar = tracer.track("pillar.3.3")
    empty = tracer.track("cluster.0")  # registered but never records
    packet = _packet(packet_id=11)
    tracer.packet_inject(0, router, packet)
    tracer.packet_hop(1, router, 11, "UP", 0)
    tracer.bus_grant(2, pillar, 11, 0, 1, 0)
    tracer.packet_eject(5, router, 11, 5)
    tracer.bus_frame(3, pillar, 0, 2)
    return tracer, empty


class TestChromeExport:
    def test_valid_and_flows_match_packet_ids(self):
        tracer, __ = _sample_tracer()
        buf = io.StringIO()
        written = write_chrome_trace(tracer, buf)
        assert written == 5
        info = validate_chrome_trace(buf.getvalue())
        assert info["slices"] == 5
        assert info["flow_ids"] == {11}

    def test_all_registered_tracks_in_metadata(self):
        # Empty tracks still appear so the timeline always shows every
        # router/pillar/cluster lane.
        tracer, __ = _sample_tracer()
        buf = io.StringIO()
        write_chrome_trace(tracer, buf)
        info = validate_chrome_trace(buf.getvalue())
        assert set(info["tracks"].values()) == {
            "router.0.0.0", "pillar.3.3", "cluster.0"
        }

    def test_per_track_sort_repairs_stragglers(self):
        # bus_frame was recorded at ts 3 after the ts 5 eject on another
        # track; per-track ordering must still be monotonic.
        tracer, __ = _sample_tracer()
        buf = io.StringIO()
        write_chrome_trace(tracer, buf)
        validate_chrome_trace(buf.getvalue())  # raises on regression

    def test_document_reports_drops(self):
        tracer = RingTracer(limit=2)
        track = tracer.track("t")
        for ts in range(4):
            tracer.packet_hop(ts, track, ts, "EAST", 0)
        buf = io.StringIO()
        write_chrome_trace(tracer, buf)
        document = json.loads(buf.getvalue())
        assert document["otherData"]["dropped"] == 2
        assert document["otherData"]["recorded"] == 2
        validate_chrome_trace(document)  # drops never unbalance B/E


class TestJsonlExport:
    def test_header_plus_one_line_per_event(self):
        tracer, __ = _sample_tracer()
        buf = io.StringIO()
        written = write_jsonl(tracer, buf)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert written == 5
        assert len(lines) == 6
        header = lines[0]
        assert header["format"] == "repro-trace"
        assert header["tracks"] == ["router.0.0.0", "pillar.3.3", "cluster.0"]
        inject = lines[1]
        assert inject["event"] == "packet_inject"
        assert inject["track"] == "router.0.0.0"
        assert inject["packet_id"] == 11


class TestWriteTrace:
    def test_writes_both_formats(self, tmp_path):
        tracer, __ = _sample_tracer()
        chrome = tmp_path / "out.trace.json"
        jsonl = tmp_path / "out.trace.jsonl"
        assert write_trace(tracer, str(chrome), "chrome") == (5, 0)
        assert write_trace(tracer, str(jsonl), "jsonl") == (5, 0)
        validate_chrome_trace(chrome.read_text())
        assert len(jsonl.read_text().splitlines()) == 6

    def test_unknown_format_rejected(self, tmp_path):
        tracer, __ = _sample_tracer()
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(tracer, str(tmp_path / "x"), "xml")


class TestValidateChromeTrace:
    def _minimal(self, events):
        return {"traceEvents": events}

    def test_detects_ts_regression(self):
        events = [
            {"ph": "B", "tid": 0, "ts": 5.0, "name": "a"},
            {"ph": "E", "tid": 0, "ts": 6.0},
            {"ph": "B", "tid": 0, "ts": 2.0, "name": "b"},
            {"ph": "E", "tid": 0, "ts": 3.0},
        ]
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace(self._minimal(events))

    def test_detects_unbalanced_pairs(self):
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace(
                self._minimal([{"ph": "B", "tid": 0, "ts": 1.0, "name": "a"}])
            )
        with pytest.raises(ValueError, match="E without"):
            validate_chrome_trace(
                self._minimal([{"ph": "E", "tid": 0, "ts": 1.0}])
            )

    def test_detects_orphan_flow(self):
        events = [
            {"ph": "t", "tid": 0, "ts": 1.0, "id": 9, "name": "packet"},
        ]
        with pytest.raises(ValueError, match="without a start"):
            validate_chrome_trace(self._minimal(events))

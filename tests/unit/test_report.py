"""Unit tests for the ASCII chart renderers."""

from repro.experiments.report import bar_chart, grouped_bar_chart, trend_lines


class TestBarChart:
    def test_scales_to_max(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert bar_chart({}) == "(empty)"

    def test_labels_aligned(self):
        text = bar_chart({"short": 1.0, "a-longer-label": 2.0})
        starts = [line.index("|") for line in text.splitlines()]
        assert len(set(starts)) == 1

    def test_zero_values(self):
        text = bar_chart({"a": 0.0})
        assert "#" not in text


class TestGroupedBarChart:
    def test_groups_rendered(self):
        text = grouped_bar_chart(
            {"swim": {"2D": 80.0, "3D": 60.0}, "art": {"2D": 70.0, "3D": 55.0}}
        )
        assert "swim:" in text and "art:" in text
        assert text.count("|") == 4

    def test_global_scale(self):
        text = grouped_bar_chart(
            {"g1": {"s": 100.0}, "g2": {"s": 50.0}}, width=10
        )
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert grouped_bar_chart({}) == "(empty)"


class TestTrendLines:
    def test_direction_annotation(self):
        text = trend_lines(
            {
                "up": [(1, 1.0), (2, 2.0)],
                "down": [(1, 2.0), (2, 1.0)],
            }
        )
        lines = dict(
            (line.split(":")[0], line) for line in text.splitlines()
        )
        assert "[rising]" in lines["up"]
        assert "[falling]" in lines["down"]

    def test_points_rendered(self):
        text = trend_lines({"s": [(16, 70.0), (32, 75.5)]})
        assert "16:70.0" in text
        assert "32:75.5" in text

"""Unit tests for the CPU model and the synthetic workload generators."""

import pytest

from repro.cpu.core import InOrderCore
from repro.cpu.trace import (
    OP_IFETCH,
    OP_READ,
    OP_WRITE,
    op_name,
    validate_trace,
)
from repro.workloads.benchmarks import BENCHMARKS, BENCHMARK_NAMES, get_benchmark
from repro.workloads.generator import SyntheticWorkload


class TestInOrderCore:
    def test_gap_retirement(self):
        core = InOrderCore(0)
        core.retire_gap(10)
        assert core.clock == 10 and core.instructions == 10

    def test_read_stalls(self):
        core = InOrderCore(0)
        core.retire_reference(OP_READ, stall_cycles=50)
        assert core.clock == 51
        assert core.memory_stall_cycles == 50

    def test_write_never_stalls(self):
        core = InOrderCore(0)
        core.retire_reference(OP_WRITE, stall_cycles=50)
        assert core.clock == 1
        assert core.memory_stall_cycles == 0

    def test_ipc(self):
        core = InOrderCore(0)
        core.retire_gap(9)
        core.retire_reference(OP_READ, stall_cycles=10)
        assert core.ipc == pytest.approx(10 / 20)

    def test_reset_stats_keeps_clock(self):
        core = InOrderCore(0)
        core.retire_gap(100)
        core.reset_stats()
        assert core.clock == 100
        assert core.instructions == 0
        core.retire_gap(50)
        assert core.ipc == pytest.approx(1.0)

    def test_cpi_base_scaling(self):
        core = InOrderCore(0, cpi_base=2.0)
        core.retire_gap(5)
        assert core.clock == 10


class TestTraceValidation:
    def test_op_names(self):
        assert op_name(OP_READ) == "read"
        assert op_name(OP_WRITE) == "write"
        assert op_name(OP_IFETCH) == "ifetch"
        with pytest.raises(ValueError):
            op_name(9)

    def test_validate_trace_passes_good_events(self):
        events = [(0, OP_READ, 0x100), (3, OP_WRITE, 0x200)]
        assert list(validate_trace(events)) == events

    def test_validate_trace_rejects_bad(self):
        with pytest.raises(ValueError):
            list(validate_trace([(-1, OP_READ, 0)]))
        with pytest.raises(ValueError):
            list(validate_trace([(0, 7, 0)]))
        with pytest.raises(ValueError):
            list(validate_trace([(0, OP_READ, -4)]))


class TestBenchmarkProfiles:
    def test_all_nine_present(self):
        assert len(BENCHMARK_NAMES) == 9
        assert set(BENCHMARK_NAMES) == {
            "ammp", "apsi", "art", "equake", "fma3d",
            "galgel", "mgrid", "swim", "wupwise",
        }

    def test_table5_transaction_counts(self):
        # Spot-check the recorded Table 5 values.
        assert BENCHMARKS["mgrid"].l2_transactions_paper == 204_815_737
        assert BENCHMARKS["fma3d"].l2_transactions_paper == 12_599_496

    def test_intense_benchmarks_have_higher_miss_estimates(self):
        heavy = min(
            BENCHMARKS[name].expected_l1_miss_rate
            for name in ("mgrid", "swim", "wupwise")
        )
        light = max(
            BENCHMARKS[name].expected_l1_miss_rate
            for name in ("art", "fma3d")
        )
        assert heavy > light

    def test_get_benchmark_unknown(self):
        with pytest.raises(ValueError):
            get_benchmark("doom")


class TestSyntheticWorkload:
    def test_trace_length(self):
        workload = SyntheticWorkload("art", refs_per_cpu=1000)
        trace = workload.cpu_trace(0)
        assert len(trace) == 1000

    def test_events_are_valid(self):
        workload = SyntheticWorkload("swim", refs_per_cpu=500)
        list(validate_trace(workload.cpu_trace(3)))

    def test_deterministic_given_seed(self):
        a = SyntheticWorkload("mgrid", refs_per_cpu=200, seed=5).cpu_trace(0)
        b = SyntheticWorkload("mgrid", refs_per_cpu=200, seed=5).cpu_trace(0)
        assert a == b

    def test_seed_changes_trace(self):
        a = SyntheticWorkload("mgrid", refs_per_cpu=200, seed=5).cpu_trace(0)
        b = SyntheticWorkload("mgrid", refs_per_cpu=200, seed=6).cpu_trace(0)
        assert a != b

    def test_cpus_have_distinct_traces(self):
        workload = SyntheticWorkload("apsi", refs_per_cpu=200)
        assert workload.cpu_trace(0) != workload.cpu_trace(1)

    def test_traces_returns_all_cpus(self):
        workload = SyntheticWorkload("ammp", num_cpus=4, refs_per_cpu=50)
        assert len(workload.traces()) == 4

    def test_write_fraction_respected(self):
        workload = SyntheticWorkload("swim", refs_per_cpu=20_000)
        trace = workload.cpu_trace(0)
        writes = sum(1 for __, op, __ in trace if op == OP_WRITE)
        fraction = writes / len(trace)
        # Stream+hot write at profile rate; residual barely writes.
        assert 0.1 < fraction < 0.4

    def test_ifetch_fraction_respected(self):
        workload = SyntheticWorkload("ammp", refs_per_cpu=20_000)
        trace = workload.cpu_trace(0)
        fraction = (
            sum(1 for __, op, __ in trace if op == OP_IFETCH) / len(trace)
        )
        assert fraction == pytest.approx(0.05, abs=0.01)

    def test_cpu_id_bounds(self):
        workload = SyntheticWorkload("art", num_cpus=2, refs_per_cpu=10)
        with pytest.raises(ValueError):
            workload.cpu_trace(2)

    def test_addresses_cover_shared_region(self):
        workload = SyntheticWorkload("galgel", refs_per_cpu=5_000)
        addresses = {addr for __, op, addr in workload.cpu_trace(0)
                     if op != OP_IFETCH}
        shared = [a for a in addresses if 0x1000_0000 <= a < 0x8000_0000]
        assert len(shared) > 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticWorkload("art", num_cpus=0)
        with pytest.raises(ValueError):
            SyntheticWorkload("art", refs_per_cpu=0)

"""Unit tests for the dTDMA arbiter, transceiver, and pillar bus."""

import pytest

from repro.sim.engine import Engine
from repro.dtdma.arbiter import DynamicTDMAArbiter, control_wire_count
from repro.dtdma.transceiver import Transceiver
from repro.noc.network import Network, NetworkConfig
from repro.noc.packet import Packet
from repro.noc.routing import Coord


class TestControlWires:
    def test_paper_formula_four_layers(self):
        # 3n + log2(n): the paper's 4-layer example gives 14.
        assert control_wire_count(4) == 14

    def test_two_layers(self):
        assert control_wire_count(2) == 7

    def test_single_layer(self):
        assert control_wire_count(1) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            control_wire_count(0)


class TestArbiter:
    def test_round_robin_over_active(self):
        arbiter = DynamicTDMAArbiter(["a", "b", "c"])
        grants = [arbiter.grant({"a", "b", "c"}) for __ in range(6)]
        assert grants == ["a", "b", "c", "a", "b", "c"]

    def test_frame_shrinks_to_active_set(self):
        # dTDMA property: only active clients occupy slots.
        arbiter = DynamicTDMAArbiter(["a", "b", "c", "d"])
        grants = [arbiter.grant({"b", "d"}) for __ in range(4)]
        assert grants == ["b", "d", "b", "d"]

    def test_idle_when_no_active(self):
        arbiter = DynamicTDMAArbiter(["a"])
        assert arbiter.grant(set()) is None
        granted, idle = arbiter.utilization_samples
        assert (granted, idle) == (0, 1)

    def test_work_conserving(self):
        # Any nonempty active set always gets a grant.
        arbiter = DynamicTDMAArbiter(list("abcd"))
        for active in ({"a"}, {"d"}, {"b", "c"}):
            assert arbiter.grant(active) in active

    def test_add_client(self):
        arbiter = DynamicTDMAArbiter(["a"])
        arbiter.add_client("b")
        assert arbiter.grant({"b"}) == "b"
        with pytest.raises(ValueError):
            arbiter.add_client("a")

    def test_needs_clients(self):
        with pytest.raises(ValueError):
            DynamicTDMAArbiter([])


class TestTransceiver:
    def test_fifo_order(self):
        transceiver = Transceiver(layer=0, num_vcs=2, depth=4)
        packet = Packet(Coord(0, 0, 0), Coord(0, 0, 1), size_flits=3)
        flits = packet.make_flits()
        for flit in flits:
            transceiver.accept(flit, 0)
        assert transceiver.occupancy == 3
        assert transceiver.pop(0) is flits[0]
        assert transceiver.head(0) is flits[1]

    def test_overflow_guard(self):
        transceiver = Transceiver(layer=0, num_vcs=1, depth=1)
        packet = Packet(Coord(0, 0, 0), Coord(0, 0, 1), size_flits=2)
        flits = packet.make_flits()
        transceiver.accept(flits[0], 0)
        with pytest.raises(RuntimeError, match="overflow"):
            transceiver.accept(flits[1], 0)

    def test_credit_return_on_pop(self):
        transceiver = Transceiver(layer=0, num_vcs=1, depth=2)
        credits = []
        transceiver.credit_return = credits.append
        packet = Packet(Coord(0, 0, 0), Coord(0, 0, 1), size_flits=1)
        transceiver.accept(packet.make_flits()[0], 0)
        transceiver.pop(0)
        assert credits == [0]


class TestPillarBus:
    def _network(self, layers=2):
        return Network(
            NetworkConfig(width=4, height=4, layers=layers,
                          pillar_locations=((1, 1),))
        )

    def test_single_flit_crossing(self):
        net = self._network()
        packet = net.send(Coord(1, 1, 0), Coord(1, 1, 1), size_flits=1)
        net.quiesce()
        assert packet.ejected_cycle is not None
        bus = net.pillars[(1, 1)]
        assert bus.stats.counter("bus.flit_transfers").value == 1

    def test_four_layer_single_hop(self):
        # Layer 0 to layer 3 directly: still exactly one bus transfer/flit.
        net = self._network(layers=4)
        packet = net.send(Coord(1, 1, 0), Coord(1, 1, 3), size_flits=4)
        net.quiesce()
        bus = net.pillars[(1, 1)]
        assert packet.ejected_cycle is not None
        assert bus.stats.counter("bus.flit_transfers").value == 4

    def test_bus_serializes_one_flit_per_cycle(self):
        net = self._network()
        a = net.send(Coord(1, 1, 0), Coord(1, 1, 1), size_flits=4)
        b = net.send(Coord(1, 1, 1), Coord(1, 1, 0), size_flits=4)
        net.quiesce()
        bus = net.pillars[(1, 1)]
        assert bus.stats.counter("bus.flit_transfers").value == 8
        # 8 flits over one shared medium: both packets completed, and the
        # bus was busy at least 8 cycles.
        assert bus.stats.counter("bus.busy_cycles").value == 8
        assert a.ejected_cycle is not None and b.ejected_cycle is not None

    def test_no_interleaving_within_receive_vc(self):
        # Two senders on different layers target layer 1; bus-level VC
        # allocation must keep each packet contiguous per VC.
        net = Network(
            NetworkConfig(width=4, height=4, layers=3,
                          pillar_locations=((1, 1),))
        )
        packets = [
            net.send(Coord(1, 1, 0), Coord(2, 1, 1), size_flits=4),
            net.send(Coord(1, 1, 2), Coord(2, 1, 1), size_flits=4),
        ]
        net.quiesce()
        assert all(p.ejected_cycle is not None for p in packets)

    def test_requires_two_layers(self):
        from repro.dtdma.bus import PillarBus
        from repro.noc.router import Router

        with pytest.raises(ValueError, match="two layers"):
            PillarBus(Engine(), (0, 0), {0: Router(Coord(0, 0, 0))})

    def test_utilization_bounded(self):
        net = self._network()
        net.send(Coord(1, 1, 0), Coord(1, 1, 1), size_flits=4)
        net.quiesce()
        assert 0.0 < net.pillars[(1, 1)].utilization <= 1.0


class TestArbiterRegistration:
    def test_unknown_client_rejected(self):
        # Regression: an unregistered client used to be silently starved
        # (grant() returned None with active clients pending).
        arbiter = DynamicTDMAArbiter(["a", "b"])
        with pytest.raises(ValueError, match="unregistered client"):
            arbiter.grant({"a", "ghost"})
        with pytest.raises(ValueError, match="ghost"):
            arbiter.grant({"ghost"})

    def test_add_client_interleaved_with_grants(self):
        arbiter = DynamicTDMAArbiter(["a", "b"])
        assert arbiter.grant({"a", "b"}) == "a"
        arbiter.add_client("c")
        # The new client joins the circular order after "b".
        grants = [arbiter.grant({"a", "b", "c"}) for __ in range(4)]
        assert grants == ["b", "c", "a", "b"]
        # Late joiner alone in the active set still gets the bus.
        assert arbiter.grant({"c"}) == "c"

    def test_bulk_idle_accounting_matches_grant_loop(self):
        bulk = DynamicTDMAArbiter(["a"])
        loop = DynamicTDMAArbiter(["a"])
        bulk.account_idle(7)
        for __ in range(7):
            loop.grant(set())
        assert bulk.utilization_samples == loop.utilization_samples
        assert bulk.stats.snapshot() == loop.stats.snapshot()
        with pytest.raises(ValueError):
            bulk.account_idle(-1)

"""Search-plan coverage across topologies (layer/pillar variants)."""

import pytest

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.cache.search import SearchPolicy


def plan_for(layers, pillars):
    if layers == 1:
        config = ChipConfig(num_layers=1, num_pillars=0)
    else:
        config = ChipConfig(num_layers=layers, num_pillars=pillars)
    topology = build_topology(config)
    return SearchPolicy(topology), topology


def test_four_layer_vicinity_cylinder():
    policy, topology = plan_for(4, 8)
    for cpu in range(8):
        plan = policy.plan(cpu)
        layers_covered = {
            topology.clusters[c].layer for c in plan.step1
        }
        # The pillar broadcast reaches every layer (Figure 8's cylinder).
        assert layers_covered == {0, 1, 2, 3}


def test_step1_fraction_grows_with_layers():
    fractions = {}
    for layers in (1, 2, 4):
        policy, __ = plan_for(layers, 8 if layers > 1 else 0)
        sizes = [len(policy.plan(cpu).step1) for cpu in range(8)]
        fractions[layers] = sum(sizes) / len(sizes) / 16
    assert fractions[1] < fractions[2] < fractions[4]


def test_all_cpus_have_disjoint_step_sets():
    policy, __ = plan_for(2, 8)
    for cpu in range(8):
        plan = policy.plan(cpu)
        assert set(plan.step1).isdisjoint(plan.step2)
        assert len(set(plan.step1)) == len(plan.step1)


def test_fewer_pillars_still_full_coverage():
    policy, __ = plan_for(2, 2)
    for cpu in range(8):
        plan = policy.plan(cpu)
        assert sorted(plan.step1 + plan.step2) == list(range(16))

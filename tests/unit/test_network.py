"""Unit tests for network assembly and end-to-end packet delivery."""

import pytest

from repro.noc.network import Network, NetworkConfig
from repro.noc.packet import MessageClass
from repro.noc.routing import Coord, route_hop_count


class TestNetworkConfig:
    def test_defaults_valid(self):
        NetworkConfig(pillar_locations=((2, 2),)).validate()

    def test_rejects_multilayer_without_pillars(self):
        with pytest.raises(ValueError, match="pillar"):
            NetworkConfig(layers=2, pillar_locations=()).validate()

    def test_rejects_offgrid_pillar(self):
        with pytest.raises(ValueError, match="outside"):
            NetworkConfig(
                width=4, height=4, layers=2, pillar_locations=((9, 0),)
            ).validate()

    def test_rejects_duplicate_pillars(self):
        with pytest.raises(ValueError, match="duplicate"):
            NetworkConfig(
                width=4, height=4, layers=2,
                pillar_locations=((1, 1), (1, 1)),
            ).validate()

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            NetworkConfig(width=0, height=4, layers=1).validate()

    def test_node_counts(self):
        config = NetworkConfig(width=4, height=3, layers=2,
                               pillar_locations=((1, 1),))
        assert config.nodes_per_layer == 12
        assert config.total_nodes == 24


class TestNetworkDelivery:
    def test_single_layer_delivery(self):
        net = Network(NetworkConfig(width=4, height=4, layers=1))
        packet = net.send(Coord(0, 0, 0), Coord(3, 3, 0))
        net.quiesce()
        assert packet.ejected_cycle is not None
        assert packet.latency > 0

    def test_latency_matches_hop_formula(self):
        # zero-load: link_latency * hops + (flits - 1) + 1 injection cycle
        cfg = NetworkConfig(width=6, height=6, layers=1)
        net = Network(cfg)
        packet = net.send(Coord(0, 0, 0), Coord(5, 5, 0), size_flits=4)
        net.quiesce()
        hops = 10
        expected = cfg.link_latency * hops + 3 + 1
        assert packet.latency == expected

    def test_cross_layer_delivery_uses_pillar(self):
        net = Network(
            NetworkConfig(width=4, height=4, layers=2,
                          pillar_locations=((1, 1), (2, 2)))
        )
        packet = net.send(Coord(0, 0, 0), Coord(3, 3, 1))
        net.quiesce()
        assert packet.pillar_xy in ((1, 1), (2, 2))
        assert packet.ejected_cycle is not None

    def test_cross_layer_latency_adds_bus_overhead(self):
        cfg = NetworkConfig(width=4, height=4, layers=2,
                            pillar_locations=((1, 1),))
        net = Network(cfg)
        packet = net.send(Coord(1, 1, 0), Coord(1, 1, 1), size_flits=1)
        net.quiesce()
        # 0 mesh hops; transceiver + bus slot + delivery ~ small constant.
        assert 2 <= packet.latency <= 5

    def test_many_packets_all_delivered(self):
        net = Network(NetworkConfig(width=4, height=4, layers=1))
        packets = []
        coords = list(net.coords())
        for i, src in enumerate(coords):
            dest = coords[(i + 5) % len(coords)]
            if src != dest:
                packets.append(net.send(src, dest))
        net.quiesce()
        assert all(p.ejected_cycle is not None for p in packets)
        assert net.in_flight == 0

    def test_send_validates_endpoints(self):
        net = Network(NetworkConfig(width=4, height=4, layers=1))
        with pytest.raises(ValueError, match="differ"):
            net.send(Coord(0, 0, 0), Coord(0, 0, 0))
        with pytest.raises(ValueError, match="unknown"):
            net.send(Coord(0, 0, 0), Coord(9, 9, 0))

    def test_packet_callback_fires(self):
        net = Network(NetworkConfig(width=3, height=3, layers=1))
        seen = []
        net.add_packet_callback(seen.append)
        packet = net.send(Coord(0, 0, 0), Coord(2, 2, 0))
        net.quiesce()
        assert seen == [packet]

    def test_message_class_preserved(self):
        net = Network(NetworkConfig(width=3, height=3, layers=1))
        packet = net.send(
            Coord(0, 0, 0), Coord(2, 0, 0),
            message_class=MessageClass.MIGRATION,
        )
        net.quiesce()
        assert packet.message_class == MessageClass.MIGRATION

    def test_mean_packet_latency_aggregates(self):
        net = Network(NetworkConfig(width=3, height=3, layers=1))
        net.send(Coord(0, 0, 0), Coord(2, 0, 0))
        net.send(Coord(0, 0, 0), Coord(0, 2, 0))
        net.quiesce()
        assert net.mean_packet_latency() > 0


class TestRouterPortCounts:
    def test_interior_router_has_five_ports(self):
        net = Network(NetworkConfig(width=4, height=4, layers=1))
        interior = net.routers[Coord(1, 1, 0)]
        assert interior.ports == {
            p for p in
            (
                # all four mesh directions plus LOCAL
                *interior.ports,
            )
        }
        assert len(interior.input_ports) == 5
        assert len(interior.output_ports) == 5

    def test_corner_router_has_three_ports(self):
        net = Network(NetworkConfig(width=4, height=4, layers=1))
        corner = net.routers[Coord(0, 0, 0)]
        assert len(corner.input_ports) == 3  # LOCAL, EAST, NORTH

    def test_pillar_router_gains_vertical_port(self):
        net = Network(
            NetworkConfig(width=4, height=4, layers=2,
                          pillar_locations=((1, 1),))
        )
        pillar_router = net.routers[Coord(1, 1, 0)]
        plain_router = net.routers[Coord(2, 2, 0)]
        assert len(pillar_router.input_ports) == 6
        assert len(plain_router.input_ports) == 5

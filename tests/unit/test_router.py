"""Unit tests for the wormhole router: credits, VC allocation, forwarding."""

import pytest

from repro.sim.engine import Engine
from repro.noc.flit import FlitType
from repro.noc.packet import Packet
from repro.noc.router import Router, connect
from repro.noc.routing import Coord, Port


def make_pair(engine, link_latency=1):
    """Two routers connected EAST->WEST, upstream at (0,0)."""
    up = Router(Coord(0, 0, 0))
    down = Router(Coord(1, 0, 0))
    engine.register(up)
    engine.register(down)
    connect(engine, up, Port.EAST, down, Port.WEST, link_latency)
    return up, down


def drain_sink(router, port=Port.LOCAL):
    """Give a router an always-accepting LOCAL output; returns the sink."""
    received = []
    router.add_output_port(
        port, downstream_depth=10**6,
        deliver=lambda flit, vc: received.append(flit),
    )
    return received


def inject(router, packet, vc=0, port=Port.LOCAL):
    """Push a whole packet into one input VC (bypassing a NIC)."""
    if port not in router.input_ports:
        router.add_input_port(port)
    for flit in packet.make_flits():
        router.input_ports[port].accept(flit, vc)


def test_flit_traverses_two_routers():
    engine = Engine()
    up, down = make_pair(engine)
    received = drain_sink(down)
    packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
    inject(up, packet)
    engine.run(20)
    assert len(received) == 4
    assert received[0].is_head and received[-1].is_tail


def test_one_flit_per_output_per_cycle():
    engine = Engine()
    up, down = make_pair(engine)
    received = drain_sink(down)
    # Two packets in different VCs of the same input contend for EAST.
    first = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
    second = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
    inject(up, first, vc=0)
    inject(up, second, vc=1)
    engine.run(40)
    assert len(received) == 8


def test_wormhole_flits_do_not_interleave_within_vc():
    engine = Engine()
    up, down = make_pair(engine)
    received = drain_sink(down)
    for vc in (0, 1, 2):
        inject(
            up,
            Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4),
            vc=vc,
        )
    engine.run(60)
    assert len(received) == 12
    # Per downstream VC, flits of one packet arrive head..tail contiguously.
    per_packet_progress = {}
    for flit in received:
        expected = per_packet_progress.get(flit.packet.packet_id, 0)
        assert flit.index == expected
        per_packet_progress[flit.packet.packet_id] = expected + 1


def test_credits_block_when_downstream_full():
    engine = Engine()
    up, down = make_pair(engine)
    # No sink on downstream: its WEST input buffers (3 VCs x 4 flits)
    # are the only capacity; packets head to LOCAL which has no output.
    down.add_output_port(Port.LOCAL, 4, deliver=lambda f, v: None)
    # Saturate with more flits than the downstream VC can hold.
    for vc in range(3):
        inject(up, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4), vc=vc)
    engine.run(10)
    # Upstream may not overflow the downstream buffer.
    for vc in down.input_ports[Port.WEST].vcs:
        assert vc.occupancy <= down.vc_depth


def test_buffered_flits_accounting():
    engine = Engine()
    router = Router(Coord(0, 0, 0))
    engine.register(router)
    inject(router, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4))
    assert router.buffered_flits() == 4


def test_router_requires_output_port_for_route():
    engine = Engine()
    router = Router(Coord(0, 0, 0))
    engine.register(router)
    inject(router, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1))
    with pytest.raises(RuntimeError, match="no output port"):
        engine.run(2)


def test_input_vc_overflow_detected():
    router = Router(Coord(0, 0, 0), vc_depth=2)
    port = router.add_input_port(Port.WEST)
    packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
    flits = packet.make_flits()
    port.accept(flits[0], 0)
    port.accept(flits[1], 0)
    with pytest.raises(RuntimeError, match="overflow"):
        port.accept(flits[2], 0)


def test_link_latency_delays_delivery():
    slow_engine = Engine()
    up, down = make_pair(slow_engine, link_latency=5)
    received = drain_sink(down)
    inject(up, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1))
    slow_engine.run(3)
    assert not received
    slow_engine.run(10)
    assert len(received) == 1


def test_output_port_free_vc_prefers_requested():
    engine = Engine()
    up, __ = make_pair(engine)
    output = up.output_ports[Port.EAST]
    assert output.free_vc(preferred=1) == 1
    output.vc_busy[1] = True
    assert output.free_vc(preferred=1) == 2


# -- hot-path structures ----------------------------------------------------


def test_route_table_memoizes_routes():
    engine = Engine()
    up, down = make_pair(engine)
    drain_sink(down)
    dest = Coord(1, 0, 0)
    inject(up, Packet(Coord(0, 0, 0), dest, size_flits=1))
    engine.run(5)
    assert up._route_table == {(dest, None): Port.EAST}
    # The memo is authoritative: poison it and the next head flit to the
    # same destination follows the poisoned route, proving no recompute.
    up._route_table[(dest, None)] = Port.LOCAL
    received = drain_sink(up, port=Port.LOCAL)
    inject(up, Packet(Coord(0, 0, 0), dest, size_flits=1))
    engine.run(5)
    assert len(received) == 1


def test_port_order_cache_invalidated_by_new_input_port():
    engine = Engine()
    up, down = make_pair(engine)
    received = drain_sink(down)
    # First evaluate builds the arbitration orders from the LOCAL port...
    inject(up, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1))
    engine.run(10)
    assert len(received) == 1
    # ...then a port added later must re-enter the cached rotation.
    inject(
        up,
        Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1),
        port=Port.SOUTH,
    )
    engine.run(10)
    assert len(received) == 2


def test_link_pipeline_credit_round_trip():
    engine = Engine()
    up, down = make_pair(engine, link_latency=3)
    received = drain_sink(down)
    output = up.output_ports[Port.EAST]
    inject(up, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4))
    engine.run(5)
    # Mid-flight: some credits are consumed.
    assert sum(output.credits) < 3 * up.vc_depth
    engine.run(40)
    assert len(received) == 4
    # Fully drained: every consumed credit made the round trip back.
    assert output.credits == [up.vc_depth] * up.num_vcs
    assert all(not busy for busy in output.vc_busy)


def test_shared_link_pipeline_carries_multiple_links():
    from repro.noc.link import LinkPipeline

    engine = Engine()
    pipeline = LinkPipeline(engine, max_latency=2)
    engine.register(pipeline)
    a = Router(Coord(0, 0, 0))
    b = Router(Coord(1, 0, 0))
    c = Router(Coord(1, 1, 0))
    for router in (a, b, c):
        engine.register(router)
    connect(engine, a, Port.EAST, b, Port.WEST, 2, pipeline=pipeline)
    connect(engine, b, Port.NORTH, c, Port.SOUTH, 2, pipeline=pipeline)
    received = drain_sink(c)
    inject(a, Packet(Coord(0, 0, 0), Coord(1, 1, 0), size_flits=4))
    engine.run(40)
    assert len(received) == 4
    assert pipeline.is_idle()
    assert pipeline.flits_carried == 8  # four flits over each of two hops


def test_link_pipeline_rejects_short_latency_and_live_growth():
    from repro.noc.link import LinkPipeline

    engine = Engine()
    pipeline = LinkPipeline(engine, max_latency=2)
    engine.register(pipeline)
    with pytest.raises(ValueError, match="latency >= 2"):
        pipeline.reserve(1)
    pipeline.send(lambda f, v: None, object(), 0, 2)
    with pytest.raises(RuntimeError, match="in flight"):
        pipeline.reserve(9)


def test_credit_pipeline_delays_one_cycle():
    from repro.noc.link import CreditPipeline
    from repro.noc.router import OutputPort

    engine = Engine()
    output = OutputPort(Port.EAST, 1, 1, deliver=lambda f, v: None)
    credit_return = CreditPipeline(engine, output.return_credit)
    packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1)
    output.send(packet.make_flits()[0], 0)
    assert output.credits == [0]
    credit_return(0)
    # Not yet applied: posts run at the top of the next step.
    assert output.credits == [0]
    engine.step()
    assert output.credits == [1]


def test_blocked_evaluate_cache_invalidated_by_credit_return():
    engine = Engine()
    up, down = make_pair(engine)
    received = drain_sink(down)
    # Choke the downstream: its LOCAL output exists but WEST input fills.
    down.add_output_port(Port.LOCAL, 4, deliver=lambda f, v: None)
    for vc in range(3):
        inject(up, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4), vc=vc)
    engine.run(10)
    blocked_before = up.stats.counter(
        f"router{Coord(0, 0, 0)}.flits_forwarded"
    ).value
    # Unchoke by draining the downstream LOCAL port for real.
    down.output_ports[Port.LOCAL].deliver = lambda f, v: received.append(f)
    down.output_ports[Port.LOCAL].credits = [10**6] * 3
    down.output_ports[Port.LOCAL].vc_busy = [False] * 3
    engine.run(60)
    forwarded_after = up.stats.counter(
        f"router{Coord(0, 0, 0)}.flits_forwarded"
    ).value
    # Credits flowing back re-dirtied the upstream's cached blocked state,
    # so it resumed granting rather than replaying "blocked" forever.
    assert forwarded_after == 12 > blocked_before

"""Unit tests for the wormhole router: credits, VC allocation, forwarding."""

import pytest

from repro.sim.engine import Engine
from repro.noc.flit import FlitType
from repro.noc.packet import Packet
from repro.noc.router import Router, connect
from repro.noc.routing import Coord, Port


def make_pair(engine, link_latency=1):
    """Two routers connected EAST->WEST, upstream at (0,0)."""
    up = Router(Coord(0, 0, 0))
    down = Router(Coord(1, 0, 0))
    engine.register(up)
    engine.register(down)
    connect(engine, up, Port.EAST, down, Port.WEST, link_latency)
    return up, down


def drain_sink(router, port=Port.LOCAL):
    """Give a router an always-accepting LOCAL output; returns the sink."""
    received = []
    router.add_output_port(
        port, downstream_depth=10**6,
        deliver=lambda flit, vc: received.append(flit),
    )
    return received


def inject(router, packet, vc=0, port=Port.LOCAL):
    """Push a whole packet into one input VC (bypassing a NIC)."""
    if port not in router.input_ports:
        router.add_input_port(port)
    for flit in packet.make_flits():
        router.input_ports[port].accept(flit, vc)


def test_flit_traverses_two_routers():
    engine = Engine()
    up, down = make_pair(engine)
    received = drain_sink(down)
    packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
    inject(up, packet)
    engine.run(20)
    assert len(received) == 4
    assert received[0].is_head and received[-1].is_tail


def test_one_flit_per_output_per_cycle():
    engine = Engine()
    up, down = make_pair(engine)
    received = drain_sink(down)
    # Two packets in different VCs of the same input contend for EAST.
    first = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
    second = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
    inject(up, first, vc=0)
    inject(up, second, vc=1)
    engine.run(40)
    assert len(received) == 8


def test_wormhole_flits_do_not_interleave_within_vc():
    engine = Engine()
    up, down = make_pair(engine)
    received = drain_sink(down)
    for vc in (0, 1, 2):
        inject(
            up,
            Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4),
            vc=vc,
        )
    engine.run(60)
    assert len(received) == 12
    # Per downstream VC, flits of one packet arrive head..tail contiguously.
    per_packet_progress = {}
    for flit in received:
        expected = per_packet_progress.get(flit.packet.packet_id, 0)
        assert flit.index == expected
        per_packet_progress[flit.packet.packet_id] = expected + 1


def test_credits_block_when_downstream_full():
    engine = Engine()
    up, down = make_pair(engine)
    # No sink on downstream: its WEST input buffers (3 VCs x 4 flits)
    # are the only capacity; packets head to LOCAL which has no output.
    down.add_output_port(Port.LOCAL, 4, deliver=lambda f, v: None)
    # Saturate with more flits than the downstream VC can hold.
    for vc in range(3):
        inject(up, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4), vc=vc)
    engine.run(10)
    # Upstream may not overflow the downstream buffer.
    for vc in down.input_ports[Port.WEST].vcs:
        assert vc.occupancy <= down.vc_depth


def test_buffered_flits_accounting():
    engine = Engine()
    router = Router(Coord(0, 0, 0))
    engine.register(router)
    inject(router, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4))
    assert router.buffered_flits() == 4


def test_router_requires_output_port_for_route():
    engine = Engine()
    router = Router(Coord(0, 0, 0))
    engine.register(router)
    inject(router, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1))
    with pytest.raises(RuntimeError, match="no output port"):
        engine.run(2)


def test_input_vc_overflow_detected():
    router = Router(Coord(0, 0, 0), vc_depth=2)
    port = router.add_input_port(Port.WEST)
    packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
    flits = packet.make_flits()
    port.accept(flits[0], 0)
    port.accept(flits[1], 0)
    with pytest.raises(RuntimeError, match="overflow"):
        port.accept(flits[2], 0)


def test_link_latency_delays_delivery():
    slow_engine = Engine()
    up, down = make_pair(slow_engine, link_latency=5)
    received = drain_sink(down)
    inject(up, Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1))
    slow_engine.run(3)
    assert not received
    slow_engine.run(10)
    assert len(received) == 1


def test_output_port_free_vc_prefers_requested():
    engine = Engine()
    up, __ = make_pair(engine)
    output = up.output_ports[Port.EAST]
    assert output.free_vc(preferred=1) == 1
    output.vc_busy[1] = True
    assert output.free_vc(preferred=1) == 2

"""Unit tests for the thermal solver, floorplans, and Table 3 shape."""

import numpy as np
import pytest

from repro.core.chip import ChipConfig
from repro.core.placement import PlacementPolicy, build_topology
from repro.thermal.power import PowerModel, ThermalParams
from repro.thermal.floorplan import build_floorplan
from repro.thermal.grid import ThermalGrid
from repro.thermal.hotspot import simulate_thermal


@pytest.fixture(scope="module")
def topo2d():
    return build_topology(ChipConfig(num_layers=1, num_pillars=0))


@pytest.fixture(scope="module")
def topo3d():
    return build_topology(ChipConfig())


class TestPowerModel:
    def test_cpu_dominates(self):
        model = PowerModel()
        cpu = model.node_power(is_cpu=True, has_pillar=False, num_layers=2)
        bank = model.node_power(is_cpu=False, has_pillar=False, num_layers=2)
        assert cpu > 50 * bank

    def test_pillar_overhead_tiny(self):
        model = PowerModel()
        plain = model.node_power(False, False, 2)
        pillar = model.node_power(False, True, 2)
        assert (pillar - plain) / plain < 0.01

    def test_clock_gating(self):
        model = PowerModel()
        assert model.bank_idle_w < model.bank_w() < model.bank_active_w


class TestFloorplan:
    def test_shape(self, topo3d):
        floorplan = build_floorplan(topo3d)
        assert floorplan.power.shape == (2, 8, 16)

    def test_total_power_plausible(self, topo3d):
        floorplan = build_floorplan(topo3d)
        # 8 CPUs x 8 W plus banks and routers: within [64, 120] W.
        assert 64 < floorplan.total_power < 120

    def test_cpu_cells_marked(self, topo3d):
        floorplan = build_floorplan(topo3d)
        assert len(floorplan.cpu_cells) == 8
        for z, y, x in floorplan.cpu_cells:
            assert floorplan.power[z, y, x] > 8.0


class TestThermalGrid:
    def test_temperatures_above_ambient(self, topo2d):
        grid = ThermalGrid(build_floorplan(topo2d), ThermalParams())
        field = grid.solve()
        assert (field > ThermalParams().ambient_c).all()

    def test_energy_conservation(self, topo2d):
        # All generated heat must leave through the sink:
        # sum(g_sink * (T_bottom - T_amb)) == total power.
        params = ThermalParams()
        floorplan = build_floorplan(topo2d)
        grid = ThermalGrid(floorplan, params)
        field = grid.solve()
        sink_heat = params.g_sink * (field[0] - params.ambient_c).sum()
        assert sink_heat == pytest.approx(floorplan.total_power, rel=1e-6)

    def test_peak_at_cpu(self, topo2d):
        floorplan = build_floorplan(topo2d)
        grid = ThermalGrid(floorplan, ThermalParams())
        field = grid.solve()
        peak_cell = np.unravel_index(field.argmax(), field.shape)
        assert tuple(int(v) for v in peak_cell) in floorplan.cpu_cells

    def test_hotspots_listing(self, topo2d):
        grid = ThermalGrid(build_floorplan(topo2d), ThermalParams())
        grid.solve()
        assert grid.hotspots(grid.peak + 1) == []
        assert len(grid.hotspots(grid.minimum - 1)) == 16 * 16


class TestTable3Shape:
    """The orderings the paper's Table 3 demonstrates."""

    @staticmethod
    def _profile(layers, pillars, placement, k=1):
        return simulate_thermal(
            config=ChipConfig(num_layers=layers, num_pillars=pillars),
            placement=placement,
            k=k,
        )

    def test_3d_raises_average_temperature(self):
        two_d = simulate_thermal(
            config=ChipConfig(num_layers=1, num_pillars=0),
            placement=PlacementPolicy.CENTER_2D,
        )
        two_layer = self._profile(2, 8, PlacementPolicy.MAXIMAL_OFFSET)
        four_layer = self._profile(4, 8, PlacementPolicy.MAXIMAL_OFFSET)
        assert two_d.avg_c < two_layer.avg_c < four_layer.avg_c

    def test_average_independent_of_placement(self):
        offset = self._profile(2, 8, PlacementPolicy.MAXIMAL_OFFSET)
        stacked = self._profile(2, 8, PlacementPolicy.STACKED)
        assert offset.avg_c == pytest.approx(stacked.avg_c, abs=0.5)

    def test_stacking_creates_hotspots(self):
        offset = self._profile(2, 8, PlacementPolicy.MAXIMAL_OFFSET)
        stacked = self._profile(2, 8, PlacementPolicy.STACKED)
        assert stacked.peak_c > offset.peak_c + 20

    def test_larger_offset_cools_peak(self):
        k1 = self._profile(2, 2, PlacementPolicy.ALGORITHM1, k=1)
        k2 = self._profile(2, 2, PlacementPolicy.ALGORITHM1, k=2)
        assert k2.peak_c < k1.peak_c

    def test_four_layer_stacking_is_worst(self):
        cases = [
            self._profile(2, 8, PlacementPolicy.MAXIMAL_OFFSET),
            self._profile(2, 8, PlacementPolicy.STACKED),
            self._profile(4, 8, PlacementPolicy.MAXIMAL_OFFSET),
            self._profile(4, 8, PlacementPolicy.STACKED),
        ]
        worst = max(cases, key=lambda p: p.peak_c)
        assert worst is cases[-1]

    def test_paper_2d_row_calibration(self):
        profile = simulate_thermal(
            config=ChipConfig(num_layers=1, num_pillars=0),
            placement=PlacementPolicy.CENTER_2D,
        )
        # Calibrated against Table 3 row 1: 111.05 / 53.96 / 46.77.
        assert profile.peak_c == pytest.approx(111.05, rel=0.05)
        assert profile.avg_c == pytest.approx(53.96, rel=0.02)
        assert profile.min_c == pytest.approx(46.77, rel=0.05)

    def test_simulate_thermal_requires_input(self):
        with pytest.raises(ValueError):
            simulate_thermal()

"""Unit tests for coordinates, routing, and pillar selection."""

import pytest

from repro.noc.routing import (
    Coord,
    Port,
    OPPOSITE_PORT,
    best_pillar,
    dimension_order_route,
    route_hop_count,
    xy_route,
)


class TestCoord:
    def test_manhattan_2d_ignores_layer(self):
        assert Coord(0, 0, 0).manhattan_2d(Coord(3, 4, 1)) == 7

    def test_same_layer(self):
        assert Coord(1, 1, 2).same_layer(Coord(5, 5, 2))
        assert not Coord(1, 1, 0).same_layer(Coord(1, 1, 1))


class TestXYRoute:
    def test_x_first(self):
        # X is corrected before Y (dimension order).
        assert xy_route(Coord(0, 0), 3, 3) == Port.EAST
        assert xy_route(Coord(3, 0), 3, 3) == Port.NORTH

    def test_all_directions(self):
        assert xy_route(Coord(5, 5), 2, 5) == Port.WEST
        assert xy_route(Coord(5, 5), 5, 2) == Port.SOUTH

    def test_arrival(self):
        assert xy_route(Coord(4, 4), 4, 4) == Port.LOCAL


class TestDimensionOrderRoute:
    def test_same_layer_ignores_pillar(self):
        port = dimension_order_route(Coord(0, 0, 0), Coord(2, 0, 0))
        assert port == Port.EAST

    def test_heads_to_pillar_when_crossing_layers(self):
        port = dimension_order_route(
            Coord(0, 0, 0), Coord(0, 0, 1), pillar_xy=(3, 0)
        )
        assert port == Port.EAST

    def test_vertical_at_pillar(self):
        port = dimension_order_route(
            Coord(3, 0, 0), Coord(0, 0, 1), pillar_xy=(3, 0)
        )
        assert port == Port.VERTICAL

    def test_missing_pillar_raises(self):
        with pytest.raises(ValueError):
            dimension_order_route(Coord(0, 0, 0), Coord(0, 0, 1))

    def test_route_terminates_at_destination(self):
        # Walk the route; it must reach LOCAL within the hop bound.
        current = Coord(0, 0, 0)
        dest = Coord(3, 2, 1)
        pillar = (1, 1)
        hops = 0
        while True:
            port = dimension_order_route(current, dest, pillar)
            if port == Port.LOCAL:
                break
            hops += 1
            assert hops <= 20, "routing loop"
            if port == Port.VERTICAL:
                current = Coord(current.x, current.y, dest.z)
            elif port == Port.EAST:
                current = Coord(current.x + 1, current.y, current.z)
            elif port == Port.WEST:
                current = Coord(current.x - 1, current.y, current.z)
            elif port == Port.NORTH:
                current = Coord(current.x, current.y + 1, current.z)
            else:
                current = Coord(current.x, current.y - 1, current.z)
        assert current == dest
        assert hops == route_hop_count(Coord(0, 0, 0), dest, pillar)


class TestHopCount:
    def test_same_layer(self):
        assert route_hop_count(Coord(0, 0, 0), Coord(3, 4, 0)) == 7

    def test_cross_layer_counts_bus_as_one(self):
        hops = route_hop_count(Coord(0, 0, 0), Coord(0, 0, 1), (2, 0))
        assert hops == 2 + 1 + 2

    def test_missing_pillar_raises(self):
        with pytest.raises(ValueError):
            route_hop_count(Coord(0, 0, 0), Coord(0, 0, 1))


class TestBestPillar:
    def test_minimizes_total_path(self):
        pillars = [(0, 0), (5, 5)]
        chosen = best_pillar(Coord(4, 4, 0), Coord(6, 6, 1), pillars)
        assert chosen == (5, 5)

    def test_tie_breaks_toward_source(self):
        pillars = [(0, 0), (4, 4)]
        # Both give the same total; (4, 4) is nearer the source.
        chosen = best_pillar(Coord(4, 4, 0), Coord(0, 0, 1), pillars)
        assert chosen == (4, 4)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            best_pillar(Coord(0, 0, 0), Coord(0, 0, 1), [])


def test_opposite_ports_are_symmetric():
    for port, opposite in OPPOSITE_PORT.items():
        assert OPPOSITE_PORT[opposite] == port

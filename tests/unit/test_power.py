"""Unit tests for the energy accounting subsystem."""

import pytest

from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, SystemConfig
from repro.power.energy import EnergyBreakdown, EnergyModel, account_run
from repro.power.report import compare_energy, energy_report
from repro.workloads.generator import SyntheticWorkload


@pytest.fixture(scope="module")
def completed_run():
    system = NetworkInMemory(SystemConfig(scheme=Scheme.CMP_DNUCA_3D))
    workload = SyntheticWorkload("swim", refs_per_cpu=8_000)
    stats = system.run_trace(workload.traces(), warmup_events=20_000)
    return system, stats


class TestEnergyModel:
    def test_bus_cheaper_than_hop(self):
        model = EnergyModel()
        assert model.bus_flit_j < model.router_flit_j + model.link_flit_j

    def test_from_cacti_scales_with_array_size(self):
        small = EnergyModel.from_cacti(bank_kb=64)
        large = EnergyModel.from_cacti(bank_kb=256)
        assert large.bank_access_j > small.bank_access_j


class TestBreakdown:
    def test_total_sums_components(self):
        breakdown = EnergyBreakdown(
            network_j=1.0, bus_j=2.0, tag_j=3.0, bank_j=4.0, dram_j=5.0
        )
        assert breakdown.total_j == 15.0
        assert breakdown.l2_dynamic_j == 10.0

    def test_scaled(self):
        breakdown = EnergyBreakdown(network_j=10.0, migration_j=4.0)
        half = breakdown.scaled(0.5)
        assert half.network_j == 5.0
        assert half.migration_j == 2.0


class TestAccounting:
    def test_all_components_positive(self, completed_run):
        system, stats = completed_run
        breakdown = account_run(system, stats)
        assert breakdown.network_j > 0
        assert breakdown.bus_j > 0        # 3D scheme uses the pillars
        assert breakdown.tag_j > 0
        assert breakdown.bank_j > 0
        assert breakdown.dram_j > 0
        assert breakdown.migration_j > 0  # DNUCA-3D migrates

    def test_report_renders(self, completed_run):
        system, stats = completed_run
        text = energy_report(system, stats)
        assert "network" in text
        assert "total" in text
        assert stats.scheme.value in text

    def test_migration_energy_tracks_policy(self):
        """The paper's power claim: no migration, no migration energy."""
        results = {}
        for scheme in (Scheme.CMP_SNUCA_3D, Scheme.CMP_DNUCA_3D):
            system = NetworkInMemory(SystemConfig(scheme=scheme))
            workload = SyntheticWorkload("swim", refs_per_cpu=8_000)
            stats = system.run_trace(workload.traces(), warmup_events=20_000)
            results[scheme] = account_run(system, stats)
        assert results[Scheme.CMP_SNUCA_3D].migration_j == 0.0
        assert results[Scheme.CMP_DNUCA_3D].migration_j > 0.0

    def test_compare_energy_normalizes(self, completed_run):
        system, stats = completed_run
        per_access = compare_energy({"run": (system, stats)})
        raw = account_run(system, stats)
        assert per_access["run"].total_j == pytest.approx(
            raw.total_j / stats.l2_accesses
        )

"""Unit tests for NICs, flits/packets, links, and traffic generators."""

import pytest

from repro.sim.engine import Engine
from repro.noc.flit import Flit, FlitType
from repro.noc.link import Link
from repro.noc.network import Network, NetworkConfig
from repro.noc.packet import MessageClass, Packet
from repro.noc.routing import Coord
from repro.noc.traffic import (
    HotspotTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
)


class TestFlitsAndPackets:
    def test_four_flit_segmentation(self):
        packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=4)
        flits = packet.make_flits()
        assert [f.flit_type for f in flits] == [
            FlitType.HEAD, FlitType.BODY, FlitType.BODY, FlitType.TAIL
        ]
        assert [f.index for f in flits] == [0, 1, 2, 3]

    def test_single_flit_is_head_tail(self):
        packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1)
        (flit,) = packet.make_flits()
        assert flit.flit_type == FlitType.HEAD_TAIL
        assert flit.is_head and flit.is_tail

    def test_two_flit_packet(self):
        packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=2)
        head, tail = packet.make_flits()
        assert head.is_head and not head.is_tail
        assert tail.is_tail and not tail.is_head

    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=0)

    def test_latency_none_until_delivered(self):
        packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0))
        assert packet.latency is None
        assert packet.network_latency is None
        packet.created_cycle = 5
        packet.injected_cycle = 7
        packet.ejected_cycle = 20
        assert packet.latency == 15
        assert packet.network_latency == 13

    def test_packet_ids_unique(self):
        a = Packet(Coord(0, 0, 0), Coord(1, 0, 0))
        b = Packet(Coord(0, 0, 0), Coord(1, 0, 0))
        assert a.packet_id != b.packet_id


class TestLink:
    def test_zero_latency_immediate(self):
        engine = Engine()
        seen = []
        link = Link(engine, lambda f, v: seen.append((f, v)), latency=0)
        packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1)
        flit = packet.make_flits()[0]
        link.send(flit, 2)
        assert seen == [(flit, 2)]

    def test_delayed_delivery(self):
        engine = Engine()
        seen = []
        link = Link(engine, lambda f, v: seen.append(v), latency=3)
        packet = Packet(Coord(0, 0, 0), Coord(1, 0, 0), size_flits=1)
        link.send(packet.make_flits()[0], 0)
        engine.run(2)
        assert seen == []
        engine.run(2)
        assert seen == [0]
        assert link.flits_carried == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link(Engine(), lambda f, v: None, latency=-1)


class TestNic:
    def test_pending_injections_counts_queue(self):
        network = Network(NetworkConfig(width=3, height=3, layers=1))
        nic = network.nics[Coord(0, 0, 0)]
        network.send(Coord(0, 0, 0), Coord(2, 2, 0))
        network.send(Coord(0, 0, 0), Coord(2, 0, 0))
        assert nic.pending_injections >= 1
        network.quiesce()
        assert nic.pending_injections == 0

    def test_drain_ejected(self):
        network = Network(NetworkConfig(width=3, height=3, layers=1))
        packet = network.send(Coord(0, 0, 0), Coord(2, 2, 0))
        network.quiesce()
        nic = network.nics[Coord(2, 2, 0)]
        assert nic.drain_ejected() == [packet]
        assert nic.drain_ejected() == []

    def test_injection_serializes_packets(self):
        # Two packets from the same NIC: second cannot finish before the
        # first has fully left (one flit per cycle on the local port).
        network = Network(NetworkConfig(width=4, height=1, layers=1))
        a = network.send(Coord(0, 0, 0), Coord(3, 0, 0))
        b = network.send(Coord(0, 0, 0), Coord(3, 0, 0))
        network.quiesce()
        assert b.ejected_cycle > a.ejected_cycle


class TestTrafficGenerators:
    def test_uniform_random_delivers_everything(self):
        network = Network(NetworkConfig(width=4, height=4, layers=1))
        generator = UniformRandomTraffic(network, 0.02, seed=1)
        generator.run(300)
        assert generator.packets_sent > 0
        assert network.in_flight == 0

    def test_injection_rate_validation(self):
        network = Network(NetworkConfig(width=3, height=3, layers=1))
        with pytest.raises(ValueError):
            UniformRandomTraffic(network, 1.5)

    def test_deterministic_with_seed(self):
        counts = []
        for __ in range(2):
            network = Network(NetworkConfig(width=4, height=4, layers=1))
            generator = UniformRandomTraffic(network, 0.05, seed=9)
            generator.run(200)
            counts.append(generator.packets_sent)
        assert counts[0] == counts[1]

    def test_hotspot_concentrates_traffic(self):
        network = Network(NetworkConfig(width=4, height=4, layers=1))
        hotspot = Coord(2, 2, 0)
        received_before = network.nics[hotspot].stats
        generator = HotspotTraffic(
            network, 0.05, hotspots=[hotspot], hotspot_fraction=1.0, seed=2
        )
        generator.run(200)
        total = sum(
            1 for p in []
        )
        # All packets target the hotspot.
        received = network.stats.counter("nic.packets_received").value
        assert received == generator.packets_sent

    def test_hotspot_validation(self):
        network = Network(NetworkConfig(width=3, height=3, layers=1))
        with pytest.raises(ValueError):
            HotspotTraffic(network, 0.01, hotspots=[])
        with pytest.raises(ValueError):
            HotspotTraffic(
                network, 0.01, hotspots=[Coord(0, 0, 0)],
                hotspot_fraction=2.0,
            )

    def test_transpose_pattern(self):
        network = Network(NetworkConfig(width=4, height=4, layers=1))
        generator = TransposeTraffic(network, 0.0, seed=3)
        dest = generator.pick_destination(Coord(1, 3, 0))
        assert dest == Coord(3, 1, 0)


class TestIdScopesAndPooling:
    def test_id_scope_restarts_per_scope(self):
        from repro.noc.flit import IdScope

        first = IdScope()
        second = IdScope()
        a = Packet(Coord(0, 0, 0), Coord(1, 0, 0), ids=first)
        b = Packet(Coord(0, 0, 0), Coord(1, 0, 0), ids=second)
        assert a.packet_id == b.packet_id == 0
        assert [f.flit_id for f in a.make_flits()] == [0, 1, 2, 3]
        assert [f.flit_id for f in b.make_flits()] == [0, 1, 2, 3]

    def test_default_scope_shared_by_loose_packets(self):
        a = Packet(Coord(0, 0, 0), Coord(1, 0, 0))
        b = Packet(Coord(0, 0, 0), Coord(1, 0, 0))
        assert b.packet_id == a.packet_id + 1

    def test_flit_pool_recycles_objects_with_fresh_state(self):
        from repro.noc.flit import IdScope
        from repro.noc.packet import FlitPool

        pool = FlitPool()
        ids = IdScope()
        first = Packet(Coord(0, 0, 0), Coord(1, 0, 0), ids=ids)
        flits = first.make_flits(pool)
        originals = set(map(id, flits))
        for flit in flits:
            flit.injected_cycle = 99
            pool.release(flit)
        assert len(pool) == 4
        second = Packet(Coord(2, 0, 0), Coord(3, 0, 0), ids=ids)
        recycled = second.make_flits(pool)
        assert set(map(id, recycled)) == originals  # same objects reused
        assert len(pool) == 0
        assert [f.flit_id for f in recycled] == [4, 5, 6, 7]
        assert all(f.packet is second for f in recycled)
        assert all(f.injected_cycle is None for f in recycled)
        assert recycled[0].is_head and recycled[-1].is_tail
        assert not recycled[1].is_head and not recycled[1].is_tail

    def test_pooled_and_unpooled_segmentation_identical(self):
        from repro.noc.flit import IdScope
        from repro.noc.packet import FlitPool

        def describe(flits):
            return [
                (f.flit_type, f.index, f.flit_id, f.is_head, f.is_tail)
                for f in flits
            ]

        plain = Packet(Coord(0, 0, 0), Coord(1, 0, 0), ids=IdScope())
        pooled = Packet(Coord(0, 0, 0), Coord(1, 0, 0), ids=IdScope())
        assert describe(plain.make_flits()) == describe(
            pooled.make_flits(FlitPool())
        )

"""Detailed pricing-path tests for the model pricer."""

import pytest

from repro.cache.nuca import AccessType
from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, SystemConfig


@pytest.fixture(scope="module")
def system():
    return NetworkInMemory(SystemConfig(scheme=Scheme.CMP_DNUCA_3D))


def _hit(system, cpu, cluster, index=0, op=AccessType.READ, cycle=1e4):
    address = system.l2.addr_map.compose(cluster, index)
    system.l2_transaction(cpu, address, AccessType.READ, 0.0)
    return system.l2_transaction(cpu, address, op, cycle)


def test_step1_hit_cheaper_than_step2_hit(system):
    plan = system.l2.search.plan(0)
    neighbor = next(c for c in plan.step1 if c != plan.local_cluster)
    remote = plan.step2[0]
    near = _hit(system, 0, neighbor, index=1)
    far = _hit(system, 0, remote, index=2)
    assert near.search_step == 1 and far.search_step == 2
    assert near.latency < far.latency


def test_local_hit_cheapest(system):
    plan = system.l2.search.plan(0)
    local = _hit(system, 0, plan.local_cluster, index=3)
    neighbor = next(c for c in plan.step1 if c != plan.local_cluster)
    near = _hit(system, 0, neighbor, index=4)
    assert local.latency < near.latency


def test_miss_costs_at_least_memory_plus_search(system):
    result = system.l2_transaction(0, 0x7abc_0000, AccessType.READ, 0.0)
    assert not result.hit
    assert result.latency > system.config.memory_latency + 20


def test_cross_layer_hit_priced_with_bus(system):
    plan = system.l2.search.plan(0)
    topo = system.topology
    cpu_layer = topo.cpu_positions[0].z
    other = next(
        c for c in plan.step1 + plan.step2
        if topo.clusters[c].layer != cpu_layer
    )
    result = _hit(system, 0, other, index=5)
    assert result.hit
    assert system.model.bus_flits_total > 0


def test_vertical_mirror_cluster_is_step1(system):
    """The Figure-8 cylinder: the same-tile cluster above/below the CPU
    resolves in step 1 despite being on another layer."""
    topo = system.topology
    local = topo.cpu_cluster(0)
    mirror = topo.cluster_by_tile(
        1 - local.layer, local.tile_x, local.tile_y
    )
    plan = system.l2.search.plan(0)
    assert mirror.index in plan.step1
    result = _hit(system, 0, mirror.index, index=6)
    assert result.search_step == 1

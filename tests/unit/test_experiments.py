"""Unit tests for the experiment harness (scales, runner, formatting)."""

import pytest

from repro.core.schemes import Scheme
from repro.experiments.config import (
    FULL,
    QUICK,
    ExperimentScale,
    current_scale,
)
from repro.experiments.runner import SCHEME_ORDER, format_table, run_scheme
from repro.experiments import table1, table2


class TestScales:
    def test_default_scale_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() is QUICK

    def test_env_selects_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert current_scale() is FULL

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_warmup_events_counts_all_cpus(self):
        scale = ExperimentScale(
            name="x", refs_per_cpu=1000, warmup_fraction=0.5
        )
        assert scale.warmup_events == 4000


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["alpha", "1"], ["b", "22"]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_handles_wide_cells(self):
        text = format_table(["x"], [["longer-than-header"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("longer-than-header")


class TestRunner:
    def test_scheme_order_matches_paper(self):
        assert SCHEME_ORDER == (
            Scheme.CMP_DNUCA,
            Scheme.CMP_DNUCA_2D,
            Scheme.CMP_SNUCA_3D,
            Scheme.CMP_DNUCA_3D,
        )

    def test_run_scheme_tiny(self):
        scale = ExperimentScale(name="tiny", refs_per_cpu=400)
        stats = run_scheme(Scheme.CMP_DNUCA_3D, "art", scale=scale)
        assert stats.l2_accesses > 0
        assert stats.scheme == Scheme.CMP_DNUCA_3D

    def test_run_scheme_respects_topology_args(self):
        scale = ExperimentScale(name="tiny", refs_per_cpu=200)
        stats = run_scheme(
            Scheme.CMP_SNUCA_3D, "art",
            num_layers=4, num_pillars=8, scale=scale,
        )
        assert stats.l2_accesses > 0


class TestStaticTables:
    def test_table1_runs(self):
        assert len(table1.run()) == 3

    def test_table2_runs(self):
        rows = table2.run()
        assert [pitch for pitch, __ in rows] == [10.0, 5.0, 1.0, 0.2]

    def test_table_mains_print(self, capsys):
        table1.main()
        table2.main()
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "Table 2" in captured.out

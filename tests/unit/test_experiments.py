"""Unit tests for the experiment harness (scales, runner, formatting)."""

import pytest

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import (
    FULL,
    QUICK,
    ExperimentScale,
    current_scale,
)
from repro.experiments.registry import (
    EXPERIMENT_NAMES,
    SCHEME_ORDER,
    get_experiment,
)
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec, run_spec
from repro.experiments import table1, table2


class TestScales:
    def test_default_scale_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() is QUICK

    def test_env_selects_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert current_scale() is FULL

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_warmup_events_scale_with_cpu_count(self):
        scale = ExperimentScale(
            name="x", refs_per_cpu=1000, warmup_fraction=0.5
        )
        assert scale.warmup_events_for(8) == 4000
        assert scale.warmup_events_for(4) == 2000
        assert scale.warmup_events_for(16) == 8000

    def test_warmup_events_property_assumes_eight_cpus(self):
        scale = ExperimentScale(
            name="x", refs_per_cpu=1000, warmup_fraction=0.5
        )
        assert scale.warmup_events == scale.warmup_events_for(8)

    def test_scale_round_trips(self):
        scale = ExperimentScale(
            name="x", refs_per_cpu=123, warmup_fraction=0.25, seed=9
        )
        assert ExperimentScale.from_dict(scale.to_dict()) == scale


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["alpha", "1"], ["b", "22"]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_handles_wide_cells(self):
        text = format_table(["x"], [["longer-than-header"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("longer-than-header")


class TestRunner:
    def test_scheme_order_matches_paper(self):
        assert SCHEME_ORDER == (
            Scheme.CMP_DNUCA,
            Scheme.CMP_DNUCA_2D,
            Scheme.CMP_SNUCA_3D,
            Scheme.CMP_DNUCA_3D,
        )

    def test_run_spec_tiny(self):
        scale = ExperimentScale(name="tiny", refs_per_cpu=400)
        spec = SimSpec.make(Scheme.CMP_DNUCA_3D, "art", scale=scale)
        stats = run_spec(spec)
        assert stats.l2_accesses > 0
        assert stats.scheme == Scheme.CMP_DNUCA_3D

    def test_run_spec_respects_topology_args(self):
        scale = ExperimentScale(name="tiny", refs_per_cpu=200)
        spec = SimSpec.make(
            Scheme.CMP_SNUCA_3D, "art", scale=scale, layers=4, pillars=8
        )
        stats = run_spec(spec)
        assert stats.l2_accesses > 0

    def test_run_scheme_shim_is_gone(self):
        """The deprecated kwargs API was retired; the facade is the API."""
        import repro.experiments
        import repro.experiments.runner as runner

        assert not hasattr(runner, "run_scheme")
        assert not hasattr(repro.experiments, "run_scheme")


def fake_stats(spec: SimSpec, latency: float = 50.0) -> RunStats:
    return RunStats(
        scheme=spec.scheme,
        avg_l2_hit_latency=latency,
        avg_l2_miss_latency=300.0,
        l2_hits=80,
        l2_misses=20,
        migrations=5,
        ipc=1.0,
        per_cpu_ipc=[1.0] * 8,
        l1_miss_rate=0.1,
        flit_hops=1000.0,
        bus_flits=100.0,
        invalidations=3,
        instructions=10_000.0,
        cycles=10_000.0,
    )


class TestUniformInterface:
    """Every registered experiment exposes cells() and render()."""

    def test_registry_covers_all_ten(self):
        assert len(EXPERIMENT_NAMES) == 10

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    @pytest.mark.parametrize("name", EXPERIMENT_NAMES)
    def test_cells_are_specs(self, name):
        module = get_experiment(name)
        specs = module.cells()
        assert isinstance(specs, list)
        for spec in specs:
            assert isinstance(spec, SimSpec)

    @pytest.mark.parametrize(
        "name", [n for n in EXPERIMENT_NAMES if n not in
                 ("table1", "table2", "table3")]
    )
    def test_render_from_fake_results(self, name):
        """render() needs only a results mapping, not a live simulation."""
        module = get_experiment(name)
        results = {spec: fake_stats(spec) for spec in module.cells()}
        text = module.render(results)
        assert isinstance(text, str) and text

    def test_simulation_experiments_share_default_cells(self):
        """Figs 13/14/15 and Table 5 overlap: one cache pays once."""
        fig13 = set(get_experiment("fig13").cells())
        assert set(get_experiment("fig15").cells()) == fig13
        assert set(get_experiment("fig14").cells()) <= fig13
        assert set(get_experiment("table5").cells()) <= fig13


class TestStaticTables:
    def test_table1_runs(self):
        assert len(table1.run()) == 3

    def test_table2_runs(self):
        rows = table2.run()
        assert [pitch for pitch, __ in rows] == [10.0, 5.0, 1.0, 0.2]

    def test_static_tables_have_no_cells(self):
        assert table1.cells() == []
        assert table2.cells() == []

    def test_table_mains_print(self, capsys):
        table1.main()
        table2.main()
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "Table 2" in captured.out

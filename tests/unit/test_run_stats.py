"""RunStats derived-metric tests."""

from repro.core.schemes import Scheme
from repro.core.system import RunStats


def make_stats(hits=80, misses=20):
    return RunStats(
        scheme=Scheme.CMP_DNUCA_3D,
        avg_l2_hit_latency=50.0,
        avg_l2_miss_latency=300.0,
        l2_hits=hits,
        l2_misses=misses,
        migrations=5,
        ipc=1.0,
        per_cpu_ipc=[1.0] * 8,
        l1_miss_rate=0.1,
        flit_hops=1000.0,
        bus_flits=100.0,
        invalidations=3,
        instructions=10_000.0,
        cycles=10_000.0,
    )


def test_l2_accesses_sum():
    assert make_stats().l2_accesses == 100


def test_hit_rate():
    assert make_stats().l2_hit_rate == 0.8


def test_hit_rate_empty():
    assert make_stats(hits=0, misses=0).l2_hit_rate == 0.0


def test_round_trip_identity():
    stats = make_stats()
    clone = RunStats.from_dict(stats.to_dict())
    assert clone == stats
    assert clone.scheme is Scheme.CMP_DNUCA_3D


def test_to_dict_is_json_safe():
    import json

    encoded = json.dumps(make_stats().to_dict())
    assert RunStats.from_dict(json.loads(encoded)) == make_stats()

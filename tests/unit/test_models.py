"""Unit tests for the analytic models (Tables 1-2, Cacti, wiring)."""

import pytest

from repro.models.components import (
    DTDMA_ARBITER,
    DTDMA_RX_TX,
    NOC_ROUTER_5PORT,
    pillar_overhead_vs_router,
    table1_rows,
)
from repro.models.via import (
    area_overhead_vs_router,
    pillar_area_um2,
    pillar_wire_count,
    table2_rows,
)
from repro.models.cacti import CactiModel, CacheArraySpec
from repro.models.wiring import (
    average_wire_length_mm,
    mesh_hop_wire_mm,
    wire_length_scale_factor,
)


class TestTable1:
    def test_recorded_values(self):
        assert NOC_ROUTER_5PORT.power_w == pytest.approx(0.11955)
        assert NOC_ROUTER_5PORT.area_mm2 == pytest.approx(0.3748)
        assert DTDMA_RX_TX.power_w == pytest.approx(97.39e-6)
        assert DTDMA_ARBITER.area_mm2 == pytest.approx(0.0006548)

    def test_rows_in_paper_order(self):
        names = [row[0] for row in table1_rows()]
        assert names[0].startswith("Generic NoC Router")

    def test_pillar_overhead_orders_of_magnitude_below_router(self):
        power_ratio, area_ratio = pillar_overhead_vs_router(4)
        assert power_ratio < 0.01
        assert area_ratio < 0.01


class TestTable2:
    def test_wire_count_is_170(self):
        # 128-bit bus + 3 x 14 control wires in a 4-layer chip.
        assert pillar_wire_count(128, 4) == 170

    def test_paper_areas_reproduced(self):
        rows = dict(table2_rows())
        assert rows[10.0] == pytest.approx(62_500, rel=1e-6)
        assert rows[5.0] == pytest.approx(15_625, rel=1e-6)
        assert rows[1.0] == pytest.approx(625, rel=1e-6)
        assert rows[0.2] == pytest.approx(25, rel=1e-6)

    def test_area_scales_with_pitch_squared(self):
        assert pillar_area_um2(10.0) / pillar_area_um2(5.0) == pytest.approx(4)

    def test_five_um_overhead_about_four_percent(self):
        # The paper: "even at a pitch of 5 um, a pillar induces an area
        # overhead of around 4% to the generic 5-port NoC router".
        assert area_overhead_vs_router(5.0) == pytest.approx(0.04, abs=0.005)

    def test_invalid_pitch(self):
        with pytest.raises(ValueError):
            pillar_area_um2(0.0)


class TestCacti:
    def test_paper_anchors(self):
        model = CactiModel()
        assert model.access_cycles(CacheArraySpec(64)) == 5
        assert model.tag_cycles(CacheArraySpec(24)) == 4

    def test_latency_grows_with_size(self):
        model = CactiModel()
        assert (
            model.access_cycles(CacheArraySpec(256))
            > model.access_cycles(CacheArraySpec(64))
        )

    def test_tag_array_sizing_matches_paper(self):
        # 16 x 64KB cluster -> 24 KB tag array (Table 4).
        model = CactiModel()
        assert model.tag_array_kb(16, CacheArraySpec(64)) == pytest.approx(
            24.0
        )

    def test_energy_and_leakage_scale(self):
        model = CactiModel()
        small = CacheArraySpec(64)
        large = CacheArraySpec(256)
        assert model.dynamic_read_energy_nj(large) > (
            model.dynamic_read_energy_nj(small)
        )
        assert model.leakage_w(large) == pytest.approx(
            4 * model.leakage_w(small)
        )

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            CactiModel(frequency_ghz=0)


class TestWiring:
    def test_sqrt_scaling(self):
        # Figure 2: a 4-layer 3D design has ~sqrt(4) = 2x shorter wires.
        assert wire_length_scale_factor(4) == pytest.approx(2.0)

    def test_average_length(self):
        assert average_wire_length_mm(10.0, 4) == pytest.approx(5.0)

    def test_hop_wire_for_64kb_bank(self):
        # ~1.5 mm between routers for a 64KB bank at 70 nm (Section 3).
        assert mesh_hop_wire_mm(2.25) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            wire_length_scale_factor(0)
        with pytest.raises(ValueError):
            average_wire_length_mm(-1, 2)
        with pytest.raises(ValueError):
            mesh_hop_wire_mm(0)

"""Unit tests for L1 caches, the directory, and the MSI protocol."""

import pytest

from repro.cache.nuca import AccessType
from repro.coherence.l1cache import L1Cache, L1Config
from repro.coherence.directory import Directory
from repro.coherence.protocol import CoherentL1System


class TestL1Cache:
    def test_geometry(self):
        config = L1Config()
        assert config.num_sets == 512  # 64KB / 64B / 2 ways

    def test_miss_then_hit(self):
        cache = L1Cache(0)
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)

    def test_lru_within_set(self):
        config = L1Config()
        cache = L1Cache(0, config)
        set_stride = config.num_sets * config.line_bytes
        a, b, c = 0x0, set_stride, 2 * set_stride  # same set
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a)          # a becomes MRU
        evicted = cache.fill(c)
        assert evicted == cache.line_of(b)

    def test_invalidate(self):
        cache = L1Cache(0)
        cache.fill(0x40)
        assert cache.invalidate(0x40)
        assert not cache.contains(0x40)
        assert not cache.invalidate(0x40)

    def test_miss_rate(self):
        cache = L1Cache(0)
        cache.lookup(0x0)   # miss
        cache.fill(0x0)
        cache.lookup(0x0)   # hit
        assert cache.miss_rate == pytest.approx(0.5)

    def test_fill_same_line_no_eviction(self):
        cache = L1Cache(0)
        cache.fill(0x80)
        assert cache.fill(0x80) is None
        assert cache.lines_resident == 1


class TestDirectory:
    def test_sharers_tracking(self):
        directory = Directory(4)
        directory.add_sharer(0x10, 0)
        directory.add_sharer(0x10, 2)
        assert directory.sharers_of(0x10) == frozenset({0, 2})

    def test_write_invalidate_spares_writer(self):
        directory = Directory(4)
        for cpu in (0, 1, 2):
            directory.add_sharer(0x10, cpu)
        targets = directory.write_invalidate(0x10, writer=1)
        assert targets == [0, 2]
        assert directory.sharers_of(0x10) == frozenset({1})

    def test_write_invalidate_nonsharing_writer(self):
        directory = Directory(4)
        directory.add_sharer(0x10, 0)
        targets = directory.write_invalidate(0x10, writer=3)
        assert targets == [0]
        assert directory.sharers_of(0x10) == frozenset()

    def test_invalidate_line(self):
        directory = Directory(4)
        directory.add_sharer(0x10, 0)
        directory.add_sharer(0x10, 1)
        assert directory.invalidate_line(0x10) == [0, 1]
        assert directory.tracked_lines() == 0

    def test_drop_sharer_cleans_empty(self):
        directory = Directory(2)
        directory.add_sharer(0x10, 0)
        directory.drop_sharer(0x10, 0)
        assert directory.tracked_lines() == 0

    def test_unknown_cpu_rejected(self):
        directory = Directory(2)
        with pytest.raises(ValueError):
            directory.add_sharer(0x10, 5)


class TestCoherentL1System:
    def test_read_miss_needs_l2_and_registers_sharer(self):
        system = CoherentL1System(4)
        event = system.access(0, 0x1000, AccessType.READ)
        assert event.needs_l2 and not event.l1_hit
        line = system.dcaches[0].line_of(0x1000)
        assert 0 in system.directory.sharers_of(line)

    def test_read_hit_skips_l2(self):
        system = CoherentL1System(4)
        system.access(0, 0x1000, AccessType.READ)
        event = system.access(0, 0x1000, AccessType.READ)
        assert event.l1_hit and not event.needs_l2

    def test_write_always_reaches_l2(self):
        system = CoherentL1System(4)
        event = system.access(0, 0x2000, AccessType.WRITE)
        assert event.needs_l2

    def test_write_invalidates_other_sharers(self):
        system = CoherentL1System(4)
        system.access(0, 0x3000, AccessType.READ)
        system.access(1, 0x3000, AccessType.READ)
        event = system.access(2, 0x3000, AccessType.WRITE)
        assert sorted(event.invalidate_cpus) == [0, 1]
        assert not system.dcaches[0].contains(0x3000)
        assert not system.dcaches[1].contains(0x3000)

    def test_write_coalescing_in_buffer(self):
        system = CoherentL1System(4)
        first = system.access(0, 0x4000, AccessType.WRITE)
        second = system.access(0, 0x4008, AccessType.WRITE)  # same line
        assert first.needs_l2
        assert not second.needs_l2
        assert system.coalesced_writes == 1

    def test_write_buffer_limited_capacity(self):
        system = CoherentL1System(4)
        system.access(0, 0x0, AccessType.WRITE)
        # Push 8 other lines through the buffer, evicting line 0.
        for i in range(1, 9):
            system.access(0, i * 64, AccessType.WRITE)
        event = system.access(0, 0x0, AccessType.WRITE)
        assert event.needs_l2

    def test_remote_write_flushes_coalescing_entry(self):
        system = CoherentL1System(4)
        system.access(0, 0x5000, AccessType.READ)
        system.access(0, 0x5000, AccessType.WRITE)
        system.access(1, 0x5000, AccessType.WRITE)  # invalidates CPU 0
        event = system.access(0, 0x5000, AccessType.WRITE)
        assert event.needs_l2  # must not coalesce into a stale entry

    def test_ifetch_uses_icache(self):
        system = CoherentL1System(4)
        system.access(0, 0x6000, AccessType.IFETCH)
        assert system.icaches[0].contains(0x6000)
        assert not system.dcaches[0].contains(0x6000)

    def test_l2_eviction_back_invalidates(self):
        system = CoherentL1System(4)
        system.access(0, 0x7000, AccessType.READ)
        line = system.dcaches[0].line_of(0x7000)
        targets = system.l2_eviction(line)
        assert targets == [0]
        assert not system.dcaches[0].contains(0x7000)

    def test_miss_rate_aggregation(self):
        system = CoherentL1System(2)
        system.access(0, 0x100, AccessType.READ)   # miss
        system.access(0, 0x100, AccessType.READ)   # hit
        assert 0.0 < system.miss_rate() < 1.0
        assert 0.0 < system.miss_rate(0) < 1.0

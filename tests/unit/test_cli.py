"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.benchmark == "swim"
        assert args.refs == 30_000
        assert args.json is False

    def test_scheme_parsing_case_insensitive(self):
        args = build_parser().parse_args(
            ["run", "--scheme", "cmp-snuca-3d"]
        )
        from repro.core.schemes import Scheme

        assert args.scheme == Scheme.CMP_SNUCA_3D

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])

    def test_experiments_choices(self):
        args = build_parser().parse_args(["experiments", "table1"])
        assert args.name == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "fig99"])

    def test_experiments_orchestrator_flags(self):
        args = build_parser().parse_args(
            ["experiments", "fig13", "--jobs", "4", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir is None

    def test_sweep_defaults_cover_the_full_grid(self):
        from repro.core.schemes import Scheme
        from repro.workloads.benchmarks import BENCHMARK_NAMES

        args = build_parser().parse_args(["sweep"])
        assert args.schemes == list(Scheme)
        assert args.benchmarks == list(BENCHMARK_NAMES)
        assert args.cache_mb == [16]
        assert args.jobs == 1

    def test_sweep_grid_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--schemes", "CMP-DNUCA-3D", "--benchmarks", "art",
             "swim", "--cache-mb", "16", "32", "--jobs", "2", "--json"]
        )
        assert len(args.schemes) == 1
        assert args.benchmarks == ["art", "swim"]
        assert args.cache_mb == [16, 32]
        assert args.json is True

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe", "--layers", "2", "--pillars", "8"]) == 0
        out = capsys.readouterr().out
        assert "Chip: 2 layer(s)" in out
        assert "CPU 7" in out

    def test_thermal(self, capsys):
        assert main(["thermal", "--layers", "2", "--placement", "stacked"]) == 0
        out = capsys.readouterr().out
        assert "peak=" in out

    def test_thermal_2d(self, capsys):
        assert main(["thermal", "--layers", "1"]) == 0
        assert "peak=" in capsys.readouterr().out

    def test_run_small(self, capsys):
        assert main(
            ["run", "--benchmark", "art", "--refs", "1500", "--energy"]
        ) == 0
        out = capsys.readouterr().out
        assert "IPC (aggregate)" in out
        assert "Energy breakdown" in out

    def test_run_json(self, capsys):
        assert main(
            ["run", "--benchmark", "art", "--refs", "1500", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["benchmark"] == "art"
        assert payload["stats"]["scheme"] == "CMP-DNUCA-3D"
        assert payload["stats"]["l2_hits"] > 0

    def test_run_fabric_auto_reports_resolution(self, capsys):
        assert main(
            ["run", "--benchmark", "art", "--refs", "1500",
             "--fabric", "auto", "--json"]
        ) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        resolution = payload["fabric_resolution"]
        assert resolution["requested"] == "auto"
        # Model-mode runs resolve to the optimized object fabric; the
        # concrete name — never "auto" — is what the spec records.
        assert resolution["resolved"] == "optimized"
        assert resolution["reason"]
        assert payload["spec"].get("fabric", "optimized") == "optimized"
        assert "fabric: auto -> optimized" in captured.err

    def test_run_concrete_fabric_omits_resolution(self, capsys):
        assert main(
            ["run", "--benchmark", "art", "--refs", "1500", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fabric_resolution" not in payload

    def test_experiments_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_sweep_tiny_grid(self, capsys, tmp_path):
        argv = [
            "sweep", "--schemes", "CMP-DNUCA-3D", "--benchmarks", "art",
            "--refs", "800", "--cache-dir", str(tmp_path), "--quiet",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Sweep results" in out
        assert "1 cells: 1 simulated, 0 cached, 0 failed" in out
        # Warm rerun: everything from the cache, nothing simulated.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 cells: 0 simulated, 1 cached, 0 failed" in out

    def test_run_trace_exports_valid_chrome_json(self, capsys, tmp_path):
        from repro.sim.trace import validate_chrome_trace

        out_path = tmp_path / "out.trace.json"
        assert main(
            ["run", "--benchmark", "art", "--refs", "120",
             "--trace", str(out_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "trace:" in err and str(out_path) in err
        info = validate_chrome_trace(out_path.read_text())
        names = set(info["tracks"].values())
        assert any(n.startswith("router.") for n in names)
        assert any(n.startswith("pillar.") for n in names)
        assert any(n.startswith("cluster.") for n in names)
        assert info["flow_ids"]  # packet flows survived the round trip

    def test_run_trace_implies_cycle_mode(self):
        args = build_parser().parse_args(["run", "--trace", "out.json"])
        assert args.mode is None  # resolution happens in _cmd_run
        assert args.trace == "out.json"
        assert args.trace_format == "chrome"
        assert args.trace_limit == 1_000_000

    def test_run_trace_jsonl_with_filter(self, capsys, tmp_path):
        out_path = tmp_path / "out.trace.jsonl"
        assert main(
            ["run", "--benchmark", "art", "--refs", "120",
             "--trace", str(out_path), "--trace-format", "jsonl",
             "--trace-filter", "pillar.*"]
        ) == 0
        lines = out_path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "repro-trace"
        for line in lines[1:]:
            assert json.loads(line)["track"].startswith("pillar.")

    def test_sweep_json_output(self, capsys, tmp_path):
        argv = [
            "sweep", "--schemes", "CMP-DNUCA-3D", "--benchmarks", "art",
            "--refs", "800", "--cache-dir", str(tmp_path), "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulated"] == 1
        assert payload["cells"][0]["spec"]["benchmark"] == "art"
        assert payload["cells"][0]["stats"]["l2_hits"] > 0

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.benchmark == "swim"
        assert args.refs == 30_000

    def test_scheme_parsing_case_insensitive(self):
        args = build_parser().parse_args(
            ["run", "--scheme", "cmp-snuca-3d"]
        )
        from repro.core.schemes import Scheme

        assert args.scheme == Scheme.CMP_SNUCA_3D

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])

    def test_experiments_choices(self):
        args = build_parser().parse_args(["experiments", "table1"])
        assert args.name == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe", "--layers", "2", "--pillars", "8"]) == 0
        out = capsys.readouterr().out
        assert "Chip: 2 layer(s)" in out
        assert "CPU 7" in out

    def test_thermal(self, capsys):
        assert main(["thermal", "--layers", "2", "--placement", "stacked"]) == 0
        out = capsys.readouterr().out
        assert "peak=" in out

    def test_thermal_2d(self, capsys):
        assert main(["thermal", "--layers", "1"]) == 0
        assert "peak=" in capsys.readouterr().out

    def test_run_small(self, capsys):
        assert main(
            ["run", "--benchmark", "art", "--refs", "1500", "--energy"]
        ) == 0
        out = capsys.readouterr().out
        assert "IPC (aggregate)" in out
        assert "Energy breakdown" in out

    def test_experiments_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

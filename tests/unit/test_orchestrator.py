"""Orchestrator unit tests: cache behaviour, failure records, robustness.

The parallel-path tests monkeypatch ``run_spec`` in the orchestrator
module; worker processes are forked on Linux, so they inherit the patch.
Simulations here are stubbed — the differential test against real
simulations lives in ``tests/integration/test_sweep_differential.py``.
"""

import json
import multiprocessing
import os

import pytest

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments import orchestrator
from repro.experiments.config import ExperimentScale
from repro.experiments.orchestrator import (
    ResultCache,
    results_by_spec,
    run_sweep,
)
from repro.experiments.spec import SimSpec

TINY = ExperimentScale(name="tiny", refs_per_cpu=50)


def make_spec(benchmark="art", **overrides) -> SimSpec:
    return SimSpec.make(
        Scheme.CMP_DNUCA_3D, benchmark, scale=TINY, **overrides
    )


def fake_stats(spec: SimSpec, latency: float = 42.0) -> RunStats:
    return RunStats(
        scheme=spec.scheme,
        avg_l2_hit_latency=latency,
        avg_l2_miss_latency=300.0,
        l2_hits=10,
        l2_misses=2,
        migrations=1,
        ipc=0.5,
        per_cpu_ipc=[0.5] * 8,
        l1_miss_rate=0.1,
        flit_hops=100.0,
        bus_flits=10.0,
        invalidations=0,
        instructions=1000.0,
        cycles=2000.0,
    )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = make_spec()
        assert cache.get(spec) is None
        cache.put(spec, fake_stats(spec))
        hit = cache.get(spec)
        assert hit is not None
        assert hit.to_dict() == fake_stats(spec).to_dict()

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(make_spec(), fake_stats(make_spec(), latency=1.0))
        assert cache.get(make_spec(benchmark="swim")) is None

    def test_corrupted_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = make_spec()
        cache.put(spec, fake_stats(spec))
        path = cache._path(spec.spec_hash())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        assert cache.get(spec) is None

    def test_version_skew_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = make_spec()
        cache.put(spec, fake_stats(spec))
        path = cache._path(spec.spec_hash())
        with open(path, encoding="utf-8") as handle:
            artifact = json.load(handle)
        artifact["cache_version"] = orchestrator.CACHE_VERSION + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle)
        assert cache.get(spec) is None

    def test_spec_mismatch_is_a_miss(self, tmp_path):
        """Artifact whose embedded spec disagrees with the key is ignored."""
        cache = ResultCache(str(tmp_path))
        spec = make_spec()
        other = make_spec(benchmark="swim")
        cache.put(other, fake_stats(other))
        # Graft other's artifact under spec's hash.
        os.makedirs(
            os.path.dirname(cache._path(spec.spec_hash())), exist_ok=True
        )
        os.replace(
            cache._path(other.spec_hash()), cache._path(spec.spec_hash())
        )
        assert cache.get(spec) is None

    def test_racing_writers_never_tear_an_artifact(self, tmp_path):
        """Concurrent puts on one spec_hash: readers always see a whole
        artifact (the atomicity the multi-tenant sweep service relies on
        when two jobs' workers race on the same cell)."""
        spec = make_spec()
        latencies = [10.0, 20.0, 30.0, 40.0]
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(len(latencies) + 1)
        writers = [
            ctx.Process(
                target=_hammer_cache,
                args=(str(tmp_path), spec.to_dict(), latency, 50, barrier),
            )
            for latency in latencies
        ]
        for writer in writers:
            writer.start()
        cache = ResultCache(str(tmp_path))
        barrier.wait()

        observed = set()
        while any(writer.is_alive() for writer in writers):
            hit = cache.get(spec)
            if hit is not None:
                observed.add(hit.avg_l2_hit_latency)
            artifact = cache.read_artifact(spec.spec_hash())
            if artifact is not None:
                observed.add(artifact["stats"]["avg_l2_hit_latency"])
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0

        # Every read saw a value some writer actually wrote, never a blend.
        assert observed
        assert observed <= set(latencies)
        final = cache.get(spec)
        assert final is not None
        assert final.avg_l2_hit_latency in latencies
        # No writer leaked its private temp file.
        leftovers = [
            name
            for root, _, names in os.walk(tmp_path)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


def _hammer_cache(root, spec_dict, latency, iterations, barrier):
    spec = SimSpec.from_dict(spec_dict)
    cache = ResultCache(root)
    stats = fake_stats(spec, latency=latency)
    barrier.wait()
    for _ in range(iterations):
        cache.put(spec, stats)


class TestSerialSweep:
    def test_cold_then_warm(self, tmp_path):
        specs = [make_spec(), make_spec(benchmark="swim")]
        cold = run_sweep(specs, cache_dir=str(tmp_path), runner=fake_stats)
        assert (cold.simulated, cold.cached, cold.failed) == (2, 0, 0)

        def exploding(spec):
            raise AssertionError("warm sweep must not simulate")

        warm = run_sweep(specs, cache_dir=str(tmp_path), runner=exploding)
        assert (warm.simulated, warm.cached, warm.failed) == (0, 2, 0)
        for spec in specs:
            assert warm.results[spec].to_dict() == (
                cold.results[spec].to_dict()
            )

    def test_traced_cell_exports_to_trace_dir(self, tmp_path):
        from repro.sim.trace import TraceSpec, validate_chrome_trace

        spec = make_spec(mode="cycle", trace=TraceSpec(limit=50_000))
        trace_dir = tmp_path / "traces"
        summary = run_sweep(
            [spec],
            cache_dir=str(tmp_path / "cache"),
            trace_dir=str(trace_dir),
        )
        assert (summary.simulated, summary.failed) == (1, 0)
        out = trace_dir / f"{spec.spec_hash()}.trace.json"
        assert out.exists()
        validate_chrome_trace(out.read_text())
        # A warm rerun reuses the cached stats without re-tracing.
        out.unlink()
        warm = run_sweep(
            [spec],
            cache_dir=str(tmp_path / "cache"),
            trace_dir=str(trace_dir),
        )
        assert (warm.simulated, warm.cached) == (0, 1)
        assert not out.exists()

    def test_untraced_cells_ignore_trace_dir(self, tmp_path):
        trace_dir = tmp_path / "traces"
        summary = run_sweep(
            [make_spec()], use_cache=False, trace_dir=str(trace_dir),
            runner=fake_stats,
        )
        assert summary.simulated == 1
        assert not trace_dir.exists()

    def test_no_cache_never_touches_disk(self, tmp_path):
        specs = [make_spec()]
        run_sweep(
            specs, use_cache=False, cache_dir=str(tmp_path),
            runner=fake_stats,
        )
        assert list(tmp_path.iterdir()) == []

    def test_corrupted_artifact_heals(self, tmp_path):
        spec = make_spec()
        cache = ResultCache(str(tmp_path))
        run_sweep([spec], cache_dir=str(tmp_path), runner=fake_stats)
        path = cache._path(spec.spec_hash())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage")
        summary = run_sweep([spec], cache_dir=str(tmp_path), runner=fake_stats)
        assert summary.simulated == 1  # miss: re-simulated
        assert cache.get(spec) is not None  # artifact rewritten

    def test_duplicate_specs_run_once(self, tmp_path):
        spec = make_spec()
        calls = []

        def counting(s):
            calls.append(s)
            return fake_stats(s)

        summary = run_sweep(
            [spec, spec, spec], cache_dir=str(tmp_path), runner=counting
        )
        assert len(calls) == 1
        assert summary.total == 1

    def test_failure_recorded_not_raised(self, tmp_path):
        good, bad = make_spec(), make_spec(benchmark="swim")

        def flaky(spec):
            if spec == bad:
                raise RuntimeError("boom")
            return fake_stats(spec)

        summary = run_sweep(
            [good, bad], cache_dir=str(tmp_path), runner=flaky
        )
        assert good in summary.results
        assert summary.failed == 1
        failure = summary.failures[0]
        assert failure.spec == bad
        assert failure.kind == "error"
        assert "boom" in failure.message
        assert failure.to_dict()["spec"] == bad.to_dict()

    def test_results_by_spec_flags_missing(self, tmp_path):
        good, bad = make_spec(), make_spec(benchmark="swim")

        def flaky(spec):
            if spec == bad:
                raise RuntimeError("boom")
            return fake_stats(spec)

        summary = run_sweep([good, bad], use_cache=False, runner=flaky)
        with pytest.raises(KeyError):
            results_by_spec(summary, [good, bad])
        assert results_by_spec(summary, [good])[good] is not None

    def test_summary_json_round_trips(self):
        summary = run_sweep([make_spec()], use_cache=False, runner=fake_stats)
        encoded = json.loads(json.dumps(summary.to_dict()))
        assert encoded["simulated"] == 1
        assert encoded["cells"][0]["spec"] == make_spec().to_dict()


# Three or more distinct cells force the parallel path (the orchestrator
# inlines trivially small grids).
PARALLEL_SPECS = [
    make_spec(), make_spec(benchmark="swim"), make_spec(benchmark="mgrid")
]


def _patched(monkeypatch, fn):
    """Patch the cell function seen by forked workers."""
    monkeypatch.setattr(orchestrator, "run_spec", fn)


class TestParallelSweep:
    def test_parallel_results_match_runner(self, monkeypatch):
        _patched(monkeypatch, fake_stats)
        summary = run_sweep(PARALLEL_SPECS, jobs=2, use_cache=False)
        assert summary.simulated == 3
        assert summary.failed == 0
        for spec in PARALLEL_SPECS:
            assert summary.results[spec].to_dict() == (
                fake_stats(spec).to_dict()
            )

    def test_worker_exception_is_structured_failure(self, monkeypatch):
        def exploding(spec):
            if spec.benchmark == "swim":
                raise ValueError("bad cell")
            return fake_stats(spec)

        _patched(monkeypatch, exploding)
        summary = run_sweep(PARALLEL_SPECS, jobs=2, use_cache=False)
        assert summary.failed == 1
        failure = summary.failures[0]
        assert failure.spec.benchmark == "swim"
        assert failure.kind == "error"
        assert "bad cell" in failure.message

    def test_worker_crash_retried_then_failed(self, monkeypatch):
        def crashing(spec):
            if spec.benchmark == "swim":
                os._exit(3)
            return fake_stats(spec)

        _patched(monkeypatch, crashing)
        summary = run_sweep(
            PARALLEL_SPECS, jobs=2, use_cache=False, retries=1
        )
        assert summary.failed == 1
        failure = summary.failures[0]
        assert failure.kind == "crash"
        assert failure.attempts == 2  # initial + one retry

    def test_crash_recovers_on_retry(self, monkeypatch, tmp_path):
        flag = tmp_path / "crashed-once"

        def crash_once(spec):
            if spec.benchmark == "swim" and not flag.exists():
                flag.touch()
                os._exit(3)
            return fake_stats(spec)

        _patched(monkeypatch, crash_once)
        summary = run_sweep(
            PARALLEL_SPECS, jobs=2, use_cache=False, retries=1
        )
        assert summary.failed == 0
        assert summary.simulated == 3

    def test_timeout_enforced(self, monkeypatch):
        import time

        def hanging(spec):
            if spec.benchmark == "swim":
                time.sleep(60.0)
            return fake_stats(spec)

        _patched(monkeypatch, hanging)
        summary = run_sweep(
            PARALLEL_SPECS, jobs=2, use_cache=False,
            timeout_s=1.0, retries=0,
        )
        assert summary.failed == 1
        assert summary.failures[0].kind == "timeout"
        assert len(summary.results) == 2

"""Unit tests for statistics primitives."""

import math
import warnings

import pytest

from repro.sim.stats import Counter, Histogram, MovingAverage, StatsRegistry


class TestCounter:
    def test_increment(self):
        counter = Counter("events")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter("events")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_mean_exact(self):
        hist = Histogram("lat")
        hist.extend([1, 2, 3, 4])
        assert hist.mean == 2.5

    def test_min_max(self):
        hist = Histogram("lat")
        hist.extend([5, 1, 9])
        assert hist.min_value == 1
        assert hist.max_value == 9

    def test_stddev(self):
        hist = Histogram("lat")
        hist.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert hist.stddev == pytest.approx(2.0)

    def test_overflow_bucket(self):
        hist = Histogram("lat", bucket_width=1.0, num_buckets=4)
        hist.add(100)
        assert hist.overflow == 1
        assert hist.mean == 100  # mean stays exact despite bucketing

    def test_percentile(self):
        hist = Histogram("lat", bucket_width=1.0, num_buckets=100)
        hist.extend(range(100))
        assert hist.percentile(0.5) == pytest.approx(50, abs=2)
        assert hist.percentile(0.99) == pytest.approx(99, abs=2)

    def test_percentile_validation(self):
        hist = Histogram("lat")
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_reset(self):
        hist = Histogram("lat")
        hist.extend([1, 2, 3])
        hist.reset()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.min_value == math.inf

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram("x", bucket_width=0)
        with pytest.raises(ValueError):
            Histogram("x", num_buckets=0)

    def test_negative_fraction_lands_in_underflow(self):
        # Regression: int() truncation filed samples in (-width, 0) under
        # bucket 0; floor-based indexing sends them to the underflow bucket.
        hist = Histogram("lat", bucket_width=1.0, num_buckets=4)
        hist.add(-0.5)
        assert hist.underflow == 1
        assert hist.buckets[0] == 0
        assert hist.mean == -0.5

    def test_underflow_bucket(self):
        hist = Histogram("lat", bucket_width=1.0, num_buckets=4)
        hist.extend([-3.0, -0.1, 0.5])
        assert hist.underflow == 2
        assert hist.buckets[0] == 1

    def test_percentile_counts_overflow_samples(self):
        # Regression: overflow samples were invisible to percentile(), so
        # p50 of {0.5, 100, 101, 102} reported the first bucket edge.
        hist = Histogram("lat", bucket_width=1.0, num_buckets=4)
        hist.extend([0.5, 100.0, 101.0, 102.0])
        assert hist.percentile(0.25) == 1.0  # first in-range bucket edge
        assert hist.percentile(0.5) == 102.0  # among overflow -> max_value
        assert hist.percentile(1.0) == 102.0

    def test_percentile_counts_underflow_samples(self):
        hist = Histogram("lat", bucket_width=1.0, num_buckets=4)
        hist.extend([-5.0, -2.0, 1.5, 2.5])
        assert hist.percentile(0.5) == -5.0  # among underflow -> min_value
        assert hist.percentile(0.75) == 2.0
        assert hist.percentile(1.0) == 3.0

    def test_add_many_matches_repeated_add(self):
        bulk = Histogram("a", bucket_width=2.0, num_buckets=8)
        loop = Histogram("b", bucket_width=2.0, num_buckets=8)
        bulk.add_many(0.0, 5)
        bulk.add_many(3.0, 2)
        for value in [0.0] * 5 + [3.0] * 2:
            loop.add(value)
        for attr in ("count", "total", "total_sq", "min_value",
                     "max_value", "buckets", "underflow", "overflow"):
            assert getattr(bulk, attr) == getattr(loop, attr)

    def test_add_many_validation(self):
        hist = Histogram("lat")
        with pytest.raises(ValueError):
            hist.add_many(1.0, -1)
        hist.add_many(1.0, 0)  # zero is a no-op
        assert hist.count == 0


class TestMovingAverage:
    def test_first_sample_initializes(self):
        ema = MovingAverage(alpha=0.5)
        assert ema.update(10.0) == 10.0

    def test_converges_to_constant(self):
        ema = MovingAverage(alpha=0.5)
        for __ in range(50):
            ema.update(3.0)
        assert ema.value == pytest.approx(3.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            MovingAverage(alpha=0.0)
        with pytest.raises(ValueError):
            MovingAverage(alpha=1.5)


class TestStatsRegistry:
    def test_same_name_same_object(self):
        registry = StatsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot(self):
        registry = StatsRegistry()
        registry.counter("c").increment(7)
        registry.histogram("h").add(2.0)
        snap = registry.snapshot()
        assert snap["c"] == 7
        assert snap["h.mean"] == 2.0
        assert snap["h.count"] == 1

    def test_reset_all(self):
        registry = StatsRegistry()
        registry.counter("c").increment()
        registry.histogram("h").add(1.0)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0

    def test_histogram_bucketing_mismatch_rejected(self):
        registry = StatsRegistry()
        registry.histogram("h", bucket_width=2.0, num_buckets=16)
        with pytest.raises(ValueError, match="already exists"):
            registry.histogram("h", bucket_width=1.0, num_buckets=16)
        with pytest.raises(ValueError, match="already exists"):
            registry.histogram("h", bucket_width=2.0, num_buckets=32)
        # Re-requesting with matching bucketing still shares the object.
        assert registry.histogram("h", bucket_width=2.0, num_buckets=16) \
            is registry.histogram("h", bucket_width=2.0, num_buckets=16)

    def test_snapshot_includes_underflow_and_overflow(self):
        # Regression: snapshot() silently omitted out-of-range samples,
        # so a saturated histogram looked healthy in exported stats.
        registry = StatsRegistry()
        hist = registry.scope("lat").histogram(
            "h", bucket_width=1.0, num_buckets=4
        )
        hist.extend([-2.0, 0.5, 100.0, 101.0])
        snap = registry.snapshot()
        assert snap["lat.h.count"] == 4
        assert snap["lat.h.underflow"] == 1
        assert snap["lat.h.overflow"] == 2


class TestStatsScope:
    def test_scope_prefixes_names(self):
        registry = StatsRegistry()
        scope = registry.scope("router.0")
        scope.counter("flits").increment(3)
        assert registry.snapshot()["router.0.flits"] == 3

    def test_scope_shares_objects_with_full_name(self):
        registry = StatsRegistry()
        scope = registry.scope("nic")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            flat = registry.counter("nic.injected")
        assert scope.counter("injected") is flat

    def test_nested_scopes(self):
        registry = StatsRegistry()
        inner = registry.scope("noc").scope("router.1")
        inner.histogram("lat").add(5.0)
        snap = registry.snapshot()
        assert snap["noc.router.1.lat.mean"] == 5.0

    def test_empty_prefix_rejected(self):
        registry = StatsRegistry()
        with pytest.raises(ValueError):
            registry.scope("")
        with pytest.raises(ValueError):
            registry.scope("ok").scope("")

    def test_snapshot_prefix_filter(self):
        registry = StatsRegistry()
        registry.scope("a").counter("x").increment()
        registry.scope("ab").counter("y").increment(2)
        snap = registry.snapshot(prefix="a")
        # Prefix matches whole dotted components, not raw string prefixes.
        assert snap == {"a.x": 1}
        assert registry.snapshot(prefix="ab") == {"ab.y": 2}
        assert registry.snapshot(prefix="missing") == {}

    def test_scope_snapshot_restricted_to_scope(self):
        registry = StatsRegistry()
        registry.scope("bus").counter("flits").increment(4)
        registry.scope("nic").counter("flits").increment(9)
        assert registry.scope("bus").snapshot() == {"bus.flits": 4}

    def test_flat_shim_warns_deprecation(self):
        registry = StatsRegistry()
        with pytest.warns(DeprecationWarning, match="scope"):
            registry.counter("legacy")
        with pytest.warns(DeprecationWarning, match="scope"):
            registry.histogram("legacy_hist")

    def test_scope_calls_do_not_warn(self):
        registry = StatsRegistry()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            registry.scope("s").counter("c")
            registry.scope("s").histogram("h")
            registry.snapshot()

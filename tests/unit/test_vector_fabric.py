"""Unit tests for the vectorized SoA batch fabric (``FabricKind.VECTOR``).

These cover the pieces that the distribution-level differential test
cannot pin down on its own: the precomputed lookup tables match the
scalar routing functions exactly, the credit/buffer bookkeeping is
conserved mid-flight and after a drain, and the survivorship-bias
observables (``delivered_fraction``, in-flight ages) report what the
packet ledger says.
"""

from __future__ import annotations

import random

import pytest

from repro.noc.fabric import FabricKind
from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import (
    PORT_INDEX,
    Coord,
    best_pillar,
    compute_route_table,
    xy_route,
)

np = pytest.importorskip("numpy")

PILLARS = ((1, 1), (2, 2))


def make_network(fabric="vector", width=4, height=4, layers=2):
    return Network(
        NetworkConfig(
            width=width, height=height, layers=layers,
            pillar_locations=PILLARS,
        ),
        fabric=fabric,
    )


def drive_random(network, cycles, rate, seed=11):
    rng = random.Random(seed)
    coords = list(network.coords())
    sent = 0
    for __ in range(cycles):
        for src in coords:
            if rng.random() < rate:
                dest = coords[rng.randrange(len(coords))]
                if dest != src:
                    network.send(src, dest)
                    sent += 1
        network.engine.step()
    return sent


def test_route_table_matches_scalar_routing():
    """Every dense-table entry equals the per-hop scalar route."""
    width, height = 5, 3
    table = compute_route_table(width, height)
    for cur in range(width * height):
        coord = Coord(cur % width, cur // width, 0)
        for tgt in range(width * height):
            port = xy_route(coord, tgt % width, tgt // width)
            assert table[cur, tgt] == PORT_INDEX[port], (cur, tgt)


def test_pillar_table_matches_best_pillar():
    """The vector pillar gather encodes the exact best_pillar tie-break."""
    network = make_network()
    width, height = network.config.width, network.config.height
    pillars = list(network.config.pillar_locations)
    for src_flat in range(width * height):
        src = Coord(src_flat % width, src_flat // width, 0)
        for dest_flat in range(width * height):
            dest = Coord(dest_flat % width, dest_flat // width, 1)
            expected = best_pillar(src, dest, pillars)
            index = int(network._pillar_choice[src_flat, dest_flat])
            assert network._pillar_tuples[index] == expected, (src, dest)


def test_credit_conservation_mid_run_and_after_drain():
    """check_invariants (credits+occupancy vs capacity) holds throughout."""
    network = make_network()
    vector = network.vector_fabric
    sent = drive_random(network, cycles=60, rate=0.2)
    assert sent > 0
    assert vector.check_invariants() == []
    network.quiesce(max_cycles=100_000)
    assert vector.check_invariants() == []
    assert network.in_flight == 0
    assert network.delivered_fraction() == 1.0


def test_inject_batch_equivalent_to_scalar_sends():
    """A batched injection delivers the same packets as scalar sends."""
    results = []
    for use_batch in (False, True):
        network = make_network()
        coords = list(network.coords())
        pairs = [(0, 17), (3, 30), (12, 5), (21, 8), (30, 1)]
        if use_batch:
            src = np.array([p[0] for p in pairs])
            dest = np.array([p[1] for p in pairs])
            count = network.try_send_batch(src, dest)
            assert count == len(pairs)
        else:
            for s, d in pairs:
                network.send(coords[s], coords[d])
        network.quiesce(max_cycles=100_000)
        received = network.stats.scope("nic").counter("packets_received")
        results.append(
            (received.value, network.in_flight, network.completed_packets)
        )
    assert results[0] == results[1]
    assert results[0][1] == 0


def test_in_flight_ages_track_the_packet_ledger():
    network = make_network()
    ages = network.in_flight_ages()
    assert ages["count"] == 0
    assert ages["mean_age"] == 0.0
    assert ages["max_age"] == 0

    network.send(Coord(0, 0, 0), Coord(3, 3, 1))
    for __ in range(3):
        network.engine.step()
    ages = network.in_flight_ages()
    assert ages["count"] == network.in_flight == 1
    assert ages["max_age"] == ages["mean_age"] == 3

    network.quiesce(max_cycles=10_000)
    ages = network.in_flight_ages()
    assert ages["count"] == 0
    assert network.delivered_fraction() == 1.0


def test_zero_load_latency_parity_with_object_fabrics():
    """Without contention a lone packet sees identical latency everywhere."""
    latencies = {}
    for fabric in ("reference", "optimized", "vector"):
        network = make_network(fabric)
        network.send(Coord(0, 0, 0), Coord(3, 3, 1))
        network.quiesce(max_cycles=10_000)
        hist = network.stats.scope("nic").histogram("packet_latency")
        assert hist.count == 1
        latencies[fabric] = hist.mean
    assert latencies["vector"] == latencies["optimized"]
    assert latencies["optimized"] == latencies["reference"]


def test_fabric_kind_parses_and_single_layer_works():
    network = make_network(FabricKind.VECTOR, width=3, height=3, layers=1)
    assert network.fabric is FabricKind.VECTOR
    sent = drive_random(network, cycles=40, rate=0.3)
    network.quiesce(max_cycles=100_000)
    assert sent > 0
    assert network.in_flight == 0
    assert (
        network.stats.scope("nic").counter("packets_received").value == sent
    )

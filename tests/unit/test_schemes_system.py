"""Unit tests for scheme setup and the assembled system."""

import pytest

from repro.core.schemes import Scheme, make_chip_config
from repro.core.system import NetworkInMemory, SystemConfig
from repro.core.placement import PlacementPolicy
from repro.cache.nuca import AccessType
from repro.cpu.trace import OP_READ, OP_WRITE


class TestSchemes:
    def test_scheme_flags(self):
        assert Scheme.CMP_DNUCA.perfect_search
        assert not Scheme.CMP_DNUCA_3D.perfect_search
        assert not Scheme.CMP_SNUCA_3D.migrates
        assert Scheme.CMP_DNUCA_3D.is_3d
        assert not Scheme.CMP_DNUCA_2D.is_3d

    def test_2d_schemes_single_layer(self):
        for scheme in (Scheme.CMP_DNUCA, Scheme.CMP_DNUCA_2D):
            setup = make_chip_config(scheme)
            assert setup.chip.num_layers == 1
            assert setup.chip.num_pillars == 0

    def test_edge_vs_center_placement(self):
        assert (
            make_chip_config(Scheme.CMP_DNUCA).placement
            == PlacementPolicy.EDGE_2D
        )
        assert (
            make_chip_config(Scheme.CMP_DNUCA_2D).placement
            == PlacementPolicy.CENTER_2D
        )

    def test_3d_uses_requested_layers(self):
        setup = make_chip_config(Scheme.CMP_SNUCA_3D, num_layers=4)
        assert setup.chip.num_layers == 4

    def test_shared_pillars_use_algorithm1(self):
        setup = make_chip_config(Scheme.CMP_DNUCA_3D, num_pillars=2)
        assert setup.placement == PlacementPolicy.ALGORITHM1

    def test_3d_rejects_one_layer(self):
        with pytest.raises(ValueError):
            make_chip_config(Scheme.CMP_DNUCA_3D, num_layers=1)


class TestSystemConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(mode="warp").validate()
        with pytest.raises(ValueError):
            SystemConfig(tag_latency=0).validate()

    def test_default_is_paper(self):
        config = SystemConfig()
        assert config.tag_latency == 4
        assert config.bank_latency == 5
        assert config.memory_latency == 260
        assert config.data_flits == 4


class TestNetworkInMemory:
    @pytest.fixture()
    def system(self):
        return NetworkInMemory(SystemConfig(scheme=Scheme.CMP_DNUCA_3D))

    def test_transaction_miss_then_hit(self, system):
        miss = system.l2_transaction(0, 0x4000_0000, AccessType.READ, 0.0)
        assert not miss.hit
        assert miss.latency >= system.config.memory_latency
        hit = system.l2_transaction(0, 0x4000_0000, AccessType.READ, 500.0)
        assert hit.hit
        assert hit.latency < miss.latency

    def test_local_hit_is_cheap(self, system):
        # Craft an address homed at CPU 0's local cluster.
        local = system.l2.search.plan(0).local_cluster
        address = system.l2.addr_map.compose(local, 0)
        system.l2_transaction(0, address, AccessType.READ, 0.0)
        hit = system.l2_transaction(0, address, AccessType.READ, 500.0)
        assert hit.hit and hit.search_step == 1
        assert hit.latency < 40

    def test_write_hits_cheaper_than_read_hits(self, system):
        remote = system.l2.search.plan(0).step2[0]
        addr_a = system.l2.addr_map.compose(remote, 0)
        addr_b = system.l2.addr_map.compose(remote, 1)
        system.l2_transaction(0, addr_a, AccessType.READ, 0.0)
        system.l2_transaction(0, addr_b, AccessType.READ, 0.0)
        read = system.l2_transaction(0, addr_a, AccessType.READ, 500.0)
        write = system.l2_transaction(0, addr_b, AccessType.WRITE, 500.0)
        assert write.latency < read.latency

    def test_run_trace_validates_cpu_count(self, system):
        with pytest.raises(ValueError):
            system.run_trace([[(0, OP_READ, 0x100)]])

    def test_run_trace_small(self, system):
        traces = [
            [(1, OP_READ, 0x1000 * (cpu + 1)), (1, OP_WRITE, 0x2000)]
            for cpu in range(8)
        ]
        stats = system.run_trace(traces)
        assert stats.l2_accesses > 0
        assert stats.instructions == 8 * 4

    def test_warmup_resets_measurements(self, system):
        traces = [
            [(1, OP_READ, 0x1000 * (cpu + 1))] * 10 for cpu in range(8)
        ]
        stats = system.run_trace(traces, warmup_events=40)
        # Half the events are warm-up: measured instruction count halves.
        assert stats.instructions == pytest.approx(80, abs=8)

    def test_max_events_caps_run(self, system):
        traces = [[(1, OP_READ, 0x40 * i)] * 100 for i in range(8)]
        system.run_trace(traces, max_events=16)
        total = sum(core.instructions for core in system.cores)
        assert total <= 2 * 16

    def test_memory_node_on_chip(self, system):
        width, height = system.setup.chip.mesh_dims
        assert 0 <= system.memory_node.x < width
        assert 0 <= system.memory_node.y < height

    def test_perfect_search_scheme_prices_differently(self):
        ideal = NetworkInMemory(SystemConfig(scheme=Scheme.CMP_DNUCA))
        remote_cluster = 9
        address = ideal.l2.addr_map.compose(remote_cluster, 0)
        ideal.l2_transaction(0, address, AccessType.READ, 0.0)
        hit = ideal.l2_transaction(0, address, AccessType.READ, 500.0)
        assert hit.hit

    def test_snuca_never_migrates(self):
        static = NetworkInMemory(SystemConfig(scheme=Scheme.CMP_SNUCA_3D))
        address = static.l2.addr_map.compose(12, 0)
        for cycle in range(10):
            result = static.l2_transaction(
                0, address, AccessType.READ, float(cycle * 10)
            )
            assert not result.migrated

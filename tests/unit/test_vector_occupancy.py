"""Unit tests for the vector fabric's occupancy-adaptive advance.

The occupied set (sorted flat (router, port, vc) indices with buffered
flits, maintained incrementally on deposit) is what makes the per-cycle
mesh cost scale with live traffic instead of mesh size.  These tests pin
its one invariant — ``occupied_lanes()`` equals the full buffer scan at
every compaction point — across the sparse/dense regime transitions, and
cover the observability satellites: the ``noc.vector`` occupancy
histograms and the ``VECTOR_OCCUPANCY`` trace probe.
"""

from __future__ import annotations

import random

import pytest

from repro.noc.network import Network, NetworkConfig
from repro.sim.trace import VECTOR_OCCUPANCY, RingTracer

np = pytest.importorskip("numpy")

PILLARS = ((1, 1), (2, 2))


def make_network(sparse_threshold=None, width=4, height=4, layers=2):
    config = NetworkConfig(
        width=width, height=height, layers=layers, pillar_locations=PILLARS
    )
    if sparse_threshold is not None:
        config.sparse_threshold = sparse_threshold
    return Network(config, fabric="vector")


def drive_random(network, cycles, rate, seed=11):
    rng = random.Random(seed)
    coords = list(network.coords())
    sent = 0
    for __ in range(cycles):
        for src in coords:
            if rng.random() < rate:
                dest = coords[rng.randrange(len(coords))]
                if dest != src:
                    network.send(src, dest)
                    sent += 1
        network.engine.step()
    return sent


def assert_occupied_set_exact(vector):
    """The compacted occupied set is exactly the nonzero buffer scan."""
    occ = vector.occupied_lanes()
    expected = np.flatnonzero(vector._buf_cnt)
    assert np.array_equal(occ, expected)
    # Staged lists were folded in by the compaction.
    assert vector._occ_new == []
    assert vector._occ_new_scalar == []
    # Membership mirrors the set unless dense mode turned bookkeeping off.
    if not vector._occ_dense:
        assert np.array_equal(np.flatnonzero(vector._in_occ), expected)


class TestOccupiedSetInvariant:
    def test_exact_mid_run_and_after_drain(self):
        network = make_network()
        vector = network.vector_fabric
        rng = random.Random(3)
        coords = list(network.coords())
        for cycle in range(120):
            for src in coords:
                if rng.random() < 0.1:
                    dest = coords[rng.randrange(len(coords))]
                    if dest != src:
                        network.send(src, dest)
            network.engine.step()
            if cycle % 10 == 0:
                assert_occupied_set_exact(vector)
        network.quiesce(max_cycles=100_000)
        assert_occupied_set_exact(vector)
        assert vector.occupied_lanes().size == 0
        assert vector.check_invariants() == []

    def test_survives_dense_sparse_transitions(self):
        """Saturate (dense mode), drain (back to sparse), stay exact."""
        network = make_network()
        vector = network.vector_fabric
        drive_random(network, cycles=80, rate=0.5, seed=7)
        saw_dense = vector._occ_dense or vector._nic_dense
        assert_occupied_set_exact(vector)
        network.quiesce(max_cycles=200_000)
        assert_occupied_set_exact(vector)
        assert not vector._occ_dense
        assert saw_dense, "saturating a 4x4x2 mesh should enter dense mode"
        assert vector.check_invariants() == []

    def test_occupied_lanes_idempotent(self):
        network = make_network()
        vector = network.vector_fabric
        drive_random(network, cycles=30, rate=0.2)
        first = vector.occupied_lanes()
        second = vector.occupied_lanes()
        assert np.array_equal(first, second)


class TestSparseDenseEquivalence:
    """Threshold 0 (always batched) vs huge (always scalar) vs default."""

    def _observables(self, threshold, seed=13):
        network = make_network(sparse_threshold=threshold)
        sent = drive_random(network, cycles=150, rate=0.08, seed=seed)
        network.quiesce(max_cycles=200_000)
        stats = network.stats.scope("nic")
        return (
            sent,
            network.completed_packets,
            network.engine.cycle,
            stats.counter("packets_received").value,
            stats.histogram("packet_latency").mean,
            network.vector_fabric.check_invariants(),
        )

    def test_identical_results_across_thresholds(self):
        batched = self._observables(0)
        scalar = self._observables(10**9)
        default = self._observables(None)
        assert batched == scalar == default
        assert batched[-1] == []


class TestOccupancyObservability:
    def test_histograms_recorded(self):
        network = make_network()
        drive_random(network, cycles=50, rate=0.1)
        scope = network.stats.scope("noc.vector")
        occupied = scope.histogram("occupied_vcs", bucket_width=8.0)
        lanes = scope.histogram("active_lanes")
        assert occupied.count > 0
        assert lanes.count > 0
        # Something was actually occupied at some point during the run.
        assert occupied.mean > 0

    def test_histograms_equal_across_sparse_and_dense_paths(self):
        """Both paths record the same per-cycle occupancy stream."""
        snapshots = []
        for threshold in (0, 10**9):
            network = make_network(sparse_threshold=threshold)
            drive_random(network, cycles=60, rate=0.08, seed=17)
            network.quiesce(max_cycles=200_000)
            scope = network.stats.scope("noc.vector")
            occupied = scope.histogram("occupied_vcs", bucket_width=8.0)
            lanes = scope.histogram("active_lanes")
            snapshots.append(
                (
                    occupied.count, occupied.mean,
                    lanes.count, lanes.mean,
                )
            )
        assert snapshots[0] == snapshots[1]

    def test_tracer_probe_emits_occupancy_events(self):
        network = make_network()
        tracer = RingTracer()
        network.vector_fabric.attach_tracer(tracer)
        drive_random(network, cycles=40, rate=0.1)
        events = [e for e in tracer.events() if e[1] == VECTOR_OCCUPANCY]
        assert events
        track_names = tracer.tracks()
        for ts, kind, track, occupied_vcs, active_lanes in events:
            assert track_names[track] == "noc.vector"
            assert occupied_vcs >= active_lanes >= 0

    def test_null_tracer_by_default_keeps_run_identical(self):
        """Attaching no tracer leaves observables untouched (guarded probe)."""
        results = []
        for attach in (False, True):
            network = make_network()
            if attach:
                network.vector_fabric.attach_tracer(RingTracer())
            drive_random(network, cycles=50, rate=0.1, seed=23)
            network.quiesce(max_cycles=200_000)
            results.append(
                (
                    network.completed_packets,
                    network.engine.cycle,
                    network.stats.scope("nic").histogram(
                        "packet_latency"
                    ).mean,
                )
            )
        assert results[0] == results[1]

"""Unit tests for addressing, replacement, and cluster storage."""

import pytest

from repro.core.chip import ChipConfig
from repro.cache.addressing import AddressMap
from repro.cache.replacement import TreePLRU
from repro.cache.cluster_store import ClusterStore
from repro.cache.line import LineEntry


class TestAddressMap:
    @pytest.fixture()
    def amap(self):
        return AddressMap(ChipConfig())

    def test_field_widths(self, amap):
        assert amap.offset_bits == 6     # 64 B lines
        assert amap.index_bits == 10     # 1024 sets per cluster
        assert amap.bank_bits == 4       # 16 banks per cluster
        assert amap.cluster_bits == 4    # 16 clusters

    def test_decode_compose_roundtrip(self, amap):
        address = 0x12345678C0
        decoded = amap.decode(address)
        line_aligned = address & ~0x3F
        assert amap.compose(decoded.tag, decoded.index) == line_aligned

    def test_home_cluster_from_tag_bits(self, amap):
        decoded = amap.decode(0x0)
        assert decoded.home_cluster == decoded.tag & 0xF

    def test_same_line_same_decode(self, amap):
        a = amap.decode(0x1000)
        b = amap.decode(0x1004)  # same 64B line, different word
        assert a.line_address == b.line_address
        assert a.index == b.index and a.tag == b.tag

    def test_bank_from_low_index_bits(self, amap):
        decoded = amap.decode(0b1111 << 6)  # index = 0b1111
        assert decoded.bank == 0b1111
        assert decoded.set_in_bank == 0

    def test_negative_address_rejected(self, amap):
        with pytest.raises(ValueError):
            amap.decode(-1)

    def test_larger_cache_has_more_index_bits(self):
        amap = AddressMap(ChipConfig(cache_mb=32))
        assert amap.index_bits == 11


class TestTreePLRU:
    def test_initial_victim_is_way_zero(self):
        assert TreePLRU(16).victim() == 0

    def test_touched_way_is_not_victim(self):
        tree = TreePLRU(16)
        for way in range(16):
            tree.touch(way)
            assert tree.victim() != way

    def test_cycles_through_all_ways(self):
        tree = TreePLRU(8)
        victims = []
        for __ in range(8):
            victim = tree.victim()
            victims.append(victim)
            tree.touch(victim)
        assert sorted(victims) == list(range(8))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRU(6)
        with pytest.raises(ValueError):
            TreePLRU(1)

    def test_touch_validates_way(self):
        tree = TreePLRU(4)
        with pytest.raises(ValueError):
            tree.touch(4)

    def test_reset(self):
        tree = TreePLRU(4)
        tree.touch(0)
        tree.reset()
        assert tree.victim() == 0


class TestClusterStore:
    def _store(self, ways=4):
        return ClusterStore(cluster_index=0, num_sets=16, ways=ways)

    def test_insert_and_lookup(self):
        store = self._store()
        entry = LineEntry(tag=0xAB, index=3)
        assert store.insert(3, entry) is None
        way, found = store.lookup(3, 0xAB)
        assert found is entry

    def test_lookup_miss(self):
        store = self._store()
        assert store.lookup(0, 0x1) is None

    def test_eviction_when_full(self):
        store = self._store(ways=2)
        store.insert(0, LineEntry(tag=1, index=0))
        store.insert(0, LineEntry(tag=2, index=0))
        victim = store.insert(0, LineEntry(tag=3, index=0))
        assert victim is not None
        assert victim.tag in (1, 2)

    def test_plru_victim_is_least_recent(self):
        store = self._store(ways=2)
        store.insert(0, LineEntry(tag=1, index=0))
        store.insert(0, LineEntry(tag=2, index=0))
        way, __ = store.lookup(0, 1)
        store.touch(0, way)  # make tag=1 most recent
        victim = store.insert(0, LineEntry(tag=3, index=0))
        assert victim.tag == 2

    def test_in_transit_victims_avoided(self):
        store = self._store(ways=2)
        migrating = LineEntry(tag=1, index=0)
        migrating.begin_migration(5, 100.0)
        store.insert(0, migrating)
        store.insert(0, LineEntry(tag=2, index=0))
        victim = store.insert(0, LineEntry(tag=3, index=0))
        assert victim.tag == 2

    def test_remove(self):
        store = self._store()
        store.insert(1, LineEntry(tag=9, index=1))
        removed = store.remove(1, 9)
        assert removed.tag == 9
        assert store.lookup(1, 9) is None

    def test_remove_missing_raises(self):
        store = self._store()
        with pytest.raises(KeyError):
            store.remove(0, 0x1)

    def test_free_ways(self):
        store = self._store(ways=2)
        assert store.free_ways(0) == 2
        store.insert(0, LineEntry(tag=1, index=0))
        assert store.free_ways(0) == 1

    def test_entries_iteration(self):
        store = self._store()
        store.insert(0, LineEntry(tag=1, index=0))
        store.insert(5, LineEntry(tag=2, index=5))
        entries = list(store.entries())
        assert len(entries) == 2
        assert {e.tag for __, __, e in entries} == {1, 2}

    def test_set_index_bounds(self):
        store = self._store()
        with pytest.raises(ValueError):
            store.insert(99, LineEntry(tag=1, index=99))


class TestLineEntry:
    def test_touch_updates_accessor(self):
        entry = LineEntry(tag=1, index=0)
        entry.touch(3)
        assert entry.last_accessor == 3
        assert entry.access_count == 1

    def test_migration_lifecycle(self):
        entry = LineEntry(tag=1, index=0)
        entry.begin_migration(7, 50.0)
        assert entry.in_transit
        assert entry.pending_cluster == 7
        target = entry.finish_migration()
        assert target == 7
        assert not entry.in_transit
        assert entry.migrations == 1

    def test_double_migration_rejected(self):
        entry = LineEntry(tag=1, index=0)
        entry.begin_migration(7, 50.0)
        with pytest.raises(RuntimeError):
            entry.begin_migration(8, 60.0)

    def test_finish_without_begin_rejected(self):
        entry = LineEntry(tag=1, index=0)
        with pytest.raises(RuntimeError):
            entry.finish_migration()

"""Unit tests for pillar placement and the CPU placement policies."""

import pytest

from repro.core.chip import ChipConfig
from repro.core.placement import (
    PlacementPolicy,
    algorithm1_offsets,
    build_topology,
    place_cpus,
    place_pillars,
)


class TestPillarPlacement:
    def test_default_eight_pillars(self):
        pillars = place_pillars(ChipConfig())
        assert len(pillars) == 8
        assert len(set(pillars)) == 8

    def test_pillars_off_edges(self):
        config = ChipConfig()
        width, height = config.mesh_dims
        for x, y in place_pillars(config):
            assert 0 < x < width - 1
            assert 0 < y < height - 1

    def test_2d_has_no_pillars(self):
        assert place_pillars(ChipConfig(num_layers=1, num_pillars=0)) == []

    def test_fewer_pillars_still_spread(self):
        pillars = place_pillars(ChipConfig(num_pillars=2))
        assert len(pillars) == 2
        (x1, y1), (x2, y2) = pillars
        assert abs(x1 - x2) + abs(y1 - y2) >= 6


class TestAlgorithm1:
    def test_case_table_matches_paper(self):
        # The four layer cases of Algorithm 1, literally.
        assert algorithm1_offsets(0, 2, 1) == [(1, 0), (-1, 0)]
        assert algorithm1_offsets(1, 2, 1) == [(0, 1), (0, -1)]
        assert algorithm1_offsets(2, 2, 1) == [(2, 0), (-2, 0)]
        assert algorithm1_offsets(3, 2, 1) == [(0, 2), (0, -2)]

    def test_c4_cases(self):
        assert algorithm1_offsets(0, 4, 1) == [
            (2, 0), (-2, 0), (0, 2), (0, -2)
        ]
        assert algorithm1_offsets(1, 4, 1) == [
            (1, 1), (1, -1), (-1, 1), (-1, -1)
        ]

    def test_k_scales_offsets(self):
        assert algorithm1_offsets(0, 2, 2) == [(2, 0), (-2, 0)]

    def test_pattern_repeats_every_four_layers(self):
        assert algorithm1_offsets(4, 2, 1) == algorithm1_offsets(0, 2, 1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            algorithm1_offsets(0, 3, 1)
        with pytest.raises(ValueError):
            algorithm1_offsets(0, 2, 0)

    def test_consecutive_layers_never_align(self):
        # CPUs on adjacent layers must not share (dx, dy): thermal rule.
        for c in (2, 4):
            for layer in range(3):
                now = set(algorithm1_offsets(layer, c, 1))
                above = set(algorithm1_offsets(layer + 1, c, 1))
                assert now.isdisjoint(above)


class TestCpuPlacement:
    def test_maximal_offset_one_per_pillar(self):
        config = ChipConfig()
        pillars = place_pillars(config)
        positions = place_cpus(config, PlacementPolicy.MAXIMAL_OFFSET, pillars)
        assert len(positions) == 8
        # each CPU adjacent to some pillar, never on one
        for coord in positions.values():
            distances = [
                abs(coord.x - x) + abs(coord.y - y) for x, y in pillars
            ]
            assert min(distances) == 1

    def test_maximal_offset_spreads_layers(self):
        config = ChipConfig()
        positions = place_cpus(
            config, PlacementPolicy.MAXIMAL_OFFSET, place_pillars(config)
        )
        layers = [coord.z for coord in positions.values()]
        assert layers.count(0) == 4 and layers.count(1) == 4

    def test_maximal_offset_no_vertical_alignment(self):
        config = ChipConfig()
        positions = place_cpus(
            config, PlacementPolicy.MAXIMAL_OFFSET, place_pillars(config)
        )
        columns = [(c.x, c.y) for c in positions.values()]
        assert len(set(columns)) == len(columns)

    def test_stacked_aligns_cpus(self):
        config = ChipConfig()
        positions = place_cpus(
            config, PlacementPolicy.STACKED, place_pillars(config)
        )
        columns = {}
        for coord in positions.values():
            columns.setdefault((coord.x, coord.y), []).append(coord.z)
        assert any(len(zs) == 2 for zs in columns.values())

    def test_algorithm1_two_pillars(self):
        config = ChipConfig(num_pillars=2)
        pillars = place_pillars(config)
        positions = place_cpus(config, PlacementPolicy.ALGORITHM1, pillars)
        assert len(positions) == 8
        assert len(set(positions.values())) == 8

    def test_center_2d(self):
        config = ChipConfig(num_layers=1, num_pillars=0)
        positions = place_cpus(config, PlacementPolicy.CENTER_2D, [])
        width, height = config.mesh_dims
        for coord in positions.values():
            assert 0 < coord.x < width - 1
            assert 0 < coord.y < height - 1
            assert coord.z == 0

    def test_edge_2d(self):
        config = ChipConfig(num_layers=1, num_pillars=0)
        positions = place_cpus(config, PlacementPolicy.EDGE_2D, [])
        height = config.mesh_dims[1]
        for coord in positions.values():
            assert coord.y in (0, height - 1)

    def test_2d_policies_reject_multilayer(self):
        with pytest.raises(ValueError):
            place_cpus(ChipConfig(), PlacementPolicy.CENTER_2D, [(2, 2)])

    def test_3d_policies_reject_single_layer(self):
        config = ChipConfig(num_layers=1, num_pillars=0)
        with pytest.raises(ValueError):
            place_cpus(config, PlacementPolicy.MAXIMAL_OFFSET, [])

    def test_cpus_never_on_pillar_nodes(self):
        config = ChipConfig()
        pillars = place_pillars(config)
        positions = place_cpus(config, PlacementPolicy.MAXIMAL_OFFSET, pillars)
        pillar_set = set(pillars)
        for coord in positions.values():
            assert (coord.x, coord.y) not in pillar_set


class TestBuildTopology:
    def test_default_policies(self):
        topo3d = build_topology(ChipConfig())
        assert len(topo3d.cpu_positions) == 8
        topo2d = build_topology(ChipConfig(num_layers=1, num_pillars=0))
        assert topo2d.pillar_xys == []

    def test_shared_pillars_fall_back_to_algorithm1(self):
        topo = build_topology(ChipConfig(num_pillars=4))
        assert len(topo.cpu_positions) == 8

    def test_four_layer_topology(self):
        topo = build_topology(ChipConfig(num_layers=4))
        layers = {c.z for c in topo.cpu_positions.values()}
        assert layers == {0, 1, 2, 3}

"""Unit tests for the contention-aware analytic latency model."""

import pytest

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.core.latency_model import LatencyModel, LatencyModelConfig
from repro.noc.routing import Coord


@pytest.fixture()
def model3d():
    return LatencyModel(build_topology(ChipConfig()))


@pytest.fixture()
def model2d():
    return LatencyModel(
        build_topology(ChipConfig(num_layers=1, num_pillars=0))
    )


class TestPath:
    def test_same_layer(self, model2d):
        hops, pillar = model2d.path(Coord(0, 0, 0), Coord(3, 4, 0))
        assert hops == 7 and pillar is None

    def test_cross_layer_uses_best_pillar(self, model3d):
        hops, pillar = model3d.path(Coord(2, 2, 0), Coord(2, 2, 1))
        assert pillar == (2, 2)
        assert hops == 0

    def test_cross_layer_hops_include_detour(self, model3d):
        hops, pillar = model3d.path(Coord(0, 0, 0), Coord(0, 0, 1))
        px, py = pillar
        assert hops == 2 * (abs(px) + abs(py))


class TestZeroLoad:
    def test_formula_same_layer(self, model2d):
        cfg = model2d.config
        latency = model2d.zero_load_latency(Coord(0, 0, 0), Coord(5, 0, 0), 4)
        assert latency == cfg.injection_overhead + 5 * cfg.hop_cycles + 3

    def test_bus_overhead_added_cross_layer(self, model3d):
        cfg = model3d.config
        latency = model3d.zero_load_latency(Coord(2, 2, 0), Coord(2, 2, 1), 1)
        assert latency == cfg.injection_overhead + cfg.bus_overhead

    def test_zero_for_same_node(self, model3d):
        assert model3d.zero_load_latency(Coord(1, 1, 0), Coord(1, 1, 0), 4) == 0


class TestLoadTracking:
    def test_rate_estimate_converges(self, model2d):
        # Needs several window half-lives to converge.
        for cycle in range(20_000):
            model2d.note_packet(Coord(0, 0, 0), Coord(5, 5, 0), 4, float(cycle))
        # one packet per cycle x 10 hops x 4 flits = 40 flit-hops/cycle
        assert model2d._mesh_rate == pytest.approx(40.0, rel=0.05)

    def test_rate_decays_when_idle(self, model2d):
        model2d.note_packet(Coord(0, 0, 0), Coord(5, 5, 0), 4, 0.0)
        busy = model2d._mesh_rate
        model2d._decay_to(100_000.0)
        assert model2d._mesh_rate < busy / 100

    def test_utilization_clamped(self, model2d):
        for cycle in range(2000):
            for __ in range(50):
                model2d.note_packet(
                    Coord(0, 0, 0), Coord(15, 15, 0), 4, float(cycle)
                )
        assert model2d.mesh_utilization() <= model2d.config.max_utilization

    def test_bus_rate_tracked_per_pillar(self, model3d):
        pillar = model3d.topology.pillar_xys[0]
        px, py = pillar
        for cycle in range(2000):
            model3d.note_packet(
                Coord(px, py, 0), Coord(px, py, 1), 4, float(cycle)
            )
        assert model3d.bus_utilization(pillar) > 0.5
        other = model3d.topology.pillar_xys[-1]
        assert model3d.bus_utilization(other) == 0.0


class TestContention:
    def test_latency_increases_with_load(self, model2d):
        quiet = model2d.packet_latency(
            Coord(0, 0, 0), Coord(8, 8, 0), 4, cycle=0.0, record=False
        )
        for cycle in range(3000):
            for __ in range(4):
                model2d.note_packet(
                    Coord(0, 0, 0), Coord(15, 15, 0), 4, float(cycle)
                )
        loaded = model2d.packet_latency(
            Coord(0, 0, 0), Coord(8, 8, 0), 4, cycle=3000.0, record=False
        )
        assert loaded > quiet

    def test_bus_contention_stretches_serialization(self, model3d):
        pillar = model3d.topology.pillar_xys[0]
        px, py = pillar
        src, dest = Coord(px, py, 0), Coord(px, py, 1)
        quiet = model3d.packet_latency(src, dest, 4, cycle=0.0, record=False)
        for cycle in range(3000):
            model3d.note_packet(src, dest, 4, float(cycle))
        loaded = model3d.packet_latency(
            src, dest, 4, cycle=3000.0, record=False
        )
        assert loaded > quiet

    def test_record_flag_controls_tracking(self, model2d):
        model2d.packet_latency(
            Coord(0, 0, 0), Coord(5, 5, 0), 4, cycle=1.0, record=False
        )
        assert model2d.flit_hops_total == 0
        model2d.packet_latency(
            Coord(0, 0, 0), Coord(5, 5, 0), 4, cycle=1.0, record=True
        )
        assert model2d.flit_hops_total == 40

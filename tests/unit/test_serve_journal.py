"""Unit tests for the durable head journal and JobStore recovery.

Every scenario builds a store on a temp cache dir, mutates it, tears it
down (or leaves the journal mid-flight), and boots a *fresh* store on
the same dir — recovery must rebuild jobs, queues, leases, and
cumulative totals from the journal plus the content-addressed cache,
and compaction must shrink the journal without changing any of it.
"""

import asyncio
import json
import os

import pytest

from repro.serve.journal import JOURNAL_NAME, Journal
from repro.serve.scheduler import JobStore, UnknownLeaseError
from tests.unit.test_serve_scheduler import (
    fake_stats,
    make_spec,
    outcome_for,
    run,
)


def journal_path(tmp_path) -> str:
    return str(tmp_path / JOURNAL_NAME)


def read_records(tmp_path) -> list:
    with open(journal_path(tmp_path)) as handle:
        return [json.loads(line) for line in handle if line.strip()]


async def fresh_store(tmp_path, **kwargs) -> JobStore:
    """Boot (or re-boot) a journaled head-only store on tmp_path."""
    defaults = dict(
        workers=0, use_cache=True, cache_dir=str(tmp_path), lease_ttl_s=30.0
    )
    defaults.update(kwargs)
    store = JobStore(**defaults)
    await store.start()
    return store


class TestJournalFile:
    def test_append_load_roundtrip(self, tmp_path):
        journal = Journal(journal_path(tmp_path), fsync_every=2)
        journal.append({"rec": "a", "n": 1})
        journal.append({"rec": "b"}, {"rec": "c"})
        journal.close()
        assert Journal(journal_path(tmp_path)).load() == [
            {"rec": "a", "n": 1}, {"rec": "b"}, {"rec": "c"},
        ]

    def test_missing_file_is_empty(self, tmp_path):
        journal = Journal(journal_path(tmp_path))
        assert journal.load() == []
        journal.close()

    def test_torn_tail_truncated_with_warning(self, tmp_path):
        journal = Journal(journal_path(tmp_path))
        journal.append({"rec": "a"}, {"rec": "b"})
        journal.close()
        with open(journal_path(tmp_path), "ab") as handle:
            handle.write(b'{"rec": "torn", "x"')  # crash mid-append
        reloaded = Journal(journal_path(tmp_path))
        with pytest.warns(RuntimeWarning, match="torn or corrupt tail"):
            records = reloaded.load()
        assert records == [{"rec": "a"}, {"rec": "b"}]
        # The file itself was repaired: a second load is clean.
        reloaded.close()
        assert Journal(journal_path(tmp_path)).load() == records

    def test_garbage_line_drops_line_and_rest(self, tmp_path):
        with open(journal_path(tmp_path), "wb") as handle:
            handle.write(b'{"rec": "a"}\nnot json\n{"rec": "b"}\n')
        journal = Journal(journal_path(tmp_path))
        with pytest.warns(RuntimeWarning):
            records = journal.load()
        journal.close()
        assert records == [{"rec": "a"}]

    def test_rewrite_replaces_contents(self, tmp_path):
        journal = Journal(journal_path(tmp_path))
        journal.append({"rec": "old"})
        journal.rewrite([{"rec": "new"}])
        journal.append({"rec": "tail"})
        journal.close()
        assert [r["rec"] for r in read_records(tmp_path)] == ["new", "tail"]
        assert not [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]


class TestRecovery:
    def test_resolved_cells_reserved_from_cache(self, tmp_path):
        """A done job survives a restart without re-execution."""
        spec = make_spec()

        async def before():
            store = await fresh_store(tmp_path)
            try:
                job = await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(spec)], worker_id="w1",
                )
                assert await asyncio.wait_for(job.wait(), timeout=5.0)
                return job.job_id
            finally:
                await store.close()

        async def after(job_id):
            store = await fresh_store(tmp_path)
            try:
                job = store._jobs[job_id]
                snapshot = job.snapshot()
                return snapshot, dict(store.totals), job.results_dict()
            finally:
                await store.close()

        job_id = run(before())
        snapshot, totals, results = run(after(job_id))
        assert snapshot["state"] == "done"
        assert snapshot["failed"] == 0
        assert totals["jobs_recovered"] == 1
        assert totals["cells_requeued_on_recovery"] == 0
        # Cumulative across the restart: the cell still counts once.
        assert totals["cells_simulated"] == 1
        assert totals["jobs_submitted"] == 1
        assert results["results"][0]["stats"] is not None

    def test_unresolved_cells_requeued(self, tmp_path):
        specs = [make_spec(), make_spec(benchmark="swim")]

        async def before():
            store = await fresh_store(tmp_path)
            try:
                await store.submit(specs, tenant="a")
            finally:
                await store.close()

        async def after():
            store = await fresh_store(tmp_path)
            try:
                lease = store.grant_lease("w2", max_cells=8)
                leased = len(lease.entries) if lease else 0
                return dict(store.totals), leased, store.stats_dict()
            finally:
                await store.close()

        run(before())
        totals, leased, stats = run(after())
        assert totals["jobs_recovered"] == 1
        assert totals["cells_requeued_on_recovery"] == 2
        assert leased == 2  # requeued cells are leasable immediately
        assert stats["journal_enabled"] is True

    def test_failed_cells_recover_as_failed(self, tmp_path):
        spec = make_spec()
        error = {"kind": "worker_crash", "message": "boom", "attempts": 2}

        async def before():
            store = await fresh_store(tmp_path, worker_retries=0)
            try:
                job = await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(spec, error=error)], worker_id="w1",
                )
                assert await asyncio.wait_for(job.wait(), timeout=5.0)
                return job.job_id
            finally:
                await store.close()

        async def after(job_id):
            store = await fresh_store(tmp_path, worker_retries=0)
            try:
                snapshot = store._jobs[job_id].snapshot()
                return snapshot, dict(store.totals)
            finally:
                await store.close()

        job_id = run(before())
        snapshot, totals = run(after(job_id))
        assert snapshot["state"] == "done"
        assert snapshot["failed"] == 1
        assert totals["cells_failed"] == 1
        assert totals["failure_kinds"].get("worker_crash") == 1

    def test_missing_artifact_requeues_cell(self, tmp_path):
        """A journaled ok-resolve whose artifact vanished re-executes."""
        spec = make_spec()

        async def before():
            store = await fresh_store(tmp_path)
            try:
                job = await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(spec)], worker_id="w1",
                )
                assert await asyncio.wait_for(job.wait(), timeout=5.0)
                return store.cache._path(spec.spec_hash())
            finally:
                await store.close()

        async def after():
            store = await fresh_store(tmp_path)
            try:
                return dict(store.totals)
            finally:
                await store.close()

        artifact = run(before())
        os.unlink(artifact)
        totals = run(after())
        assert totals["cells_requeued_on_recovery"] == 1

    def test_open_lease_restored_and_late_push_accepted(self, tmp_path):
        spec = make_spec()

        async def before():
            store = await fresh_store(tmp_path)
            try:
                job = await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                return job.job_id, lease.lease_id, lease.token
            finally:
                await store.close()

        async def after(job_id, lease_id, token):
            store = await fresh_store(tmp_path)
            try:
                restored = dict(store.totals)
                # The pre-restart worker pushes with its old credentials.
                ack = store.push_results(
                    lease_id, token, [outcome_for(spec)], worker_id="w1"
                )
                job = store._jobs[job_id]
                assert await asyncio.wait_for(job.wait(), timeout=5.0)
                return restored, ack, job.snapshot()
            finally:
                await store.close()

        job_id, lease_id, token = run(before())
        restored, ack, snapshot = run(after(job_id, lease_id, token))
        assert restored["leases_restored"] == 1
        assert restored["cells_requeued_on_recovery"] == 0
        assert ack["accepted"] == 1
        assert snapshot["state"] == "done"

    def test_recovery_survives_torn_tail(self, tmp_path):
        spec = make_spec()

        async def before():
            store = await fresh_store(tmp_path)
            try:
                await store.submit([spec], tenant="a")
            finally:
                await store.close()

        async def after():
            store = JobStore(
                workers=0, use_cache=True, cache_dir=str(tmp_path),
                lease_ttl_s=30.0,
            )
            with pytest.warns(RuntimeWarning, match="torn or corrupt"):
                await store.start()
            try:
                return dict(store.totals)
            finally:
                await store.close()

        run(before())
        with open(journal_path(tmp_path), "ab") as handle:
            handle.write(b'{"rec": "resolve", "spec_hash')  # torn append
        totals = run(after())
        assert totals["jobs_recovered"] == 1
        assert totals["cells_requeued_on_recovery"] == 1

    def test_journal_disabled_without_cache(self):
        async def scenario():
            store = JobStore(workers=0, use_cache=False)
            await store.start()
            try:
                return store.stats_dict()
            finally:
                await store.close()

        stats = run(scenario())
        assert stats["journal_enabled"] is False
        assert stats["journal_path"] is None


class TestCompaction:
    def test_start_compacts_resolved_jobs_but_keeps_totals(self, tmp_path):
        spec = make_spec()

        async def before():
            store = await fresh_store(tmp_path)
            try:
                job = await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(spec)], worker_id="w1",
                )
                assert await asyncio.wait_for(job.wait(), timeout=5.0)
            finally:
                await store.close()

        async def boot():
            store = await fresh_store(tmp_path)
            try:
                return dict(store.totals)
            finally:
                await store.close()

        run(before())
        totals_1 = run(boot())  # start() recovers, then compacts
        records = read_records(tmp_path)
        # The done job was dropped: only the totals baseline remains.
        assert [r["rec"] for r in records] == ["totals"]
        totals_2 = run(boot())  # and the baseline keeps counting
        for totals in (totals_1, totals_2):
            assert totals["cells_simulated"] == 1
            assert totals["jobs_submitted"] == 1
            assert totals["cells_remote"] == 1
        assert totals_2["jobs_recovered"] == 0

    def test_open_jobs_survive_compaction(self, tmp_path):
        done_spec = make_spec()
        open_spec = make_spec(benchmark="swim")

        async def before():
            store = await fresh_store(tmp_path)
            try:
                done_job = await store.submit([done_spec], tenant="a")
                await store.submit([open_spec], tenant="a")
                lease = store.grant_lease("w1", max_cells=1)
                store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(done_spec)], worker_id="w1",
                )
                assert await asyncio.wait_for(done_job.wait(), timeout=5.0)
            finally:
                await store.close()

        async def after():
            store = await fresh_store(tmp_path)
            try:
                return dict(store.totals), len(store._jobs)
            finally:
                await store.close()

        run(before())
        totals, jobs_alive = run(after())
        # Both jobs recovered into memory (the done one stays
        # queryable), but the compacted journal only carries the open
        # one forward — the done job is now baseline totals.
        assert jobs_alive == 2
        assert totals["jobs_recovered"] == 2
        assert totals["cells_requeued_on_recovery"] == 1
        assert totals["cells_simulated"] == 1
        assert totals["jobs_submitted"] == 2
        records = read_records(tmp_path)
        assert [r["rec"] for r in records].count("job") == 1
        kept = [r for r in records if r["rec"] == "job"]
        assert kept[0]["specs"][0]["benchmark"] == "swim"


class TestReleaseCells:
    def test_release_requeues_and_refunds_attempt(self, tmp_path):
        async def scenario():
            store = await fresh_store(tmp_path)
            try:
                specs = [make_spec(), make_spec(benchmark="swim")]
                job = await store.submit(specs, tenant="a")
                lease = store.grant_lease("w1", max_cells=8)
                done_spec = specs[0]
                store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(done_spec)], worker_id="w1",
                )
                outcome = store.release_cells(lease.lease_id, lease.token)
                requeued = store.grant_lease("w2", max_cells=8)
                states = [cell.state for cell in job.cells]
                attempts = [
                    entry.worker_attempts
                    for entry in requeued.entries.values()
                ]
                return outcome, states, attempts, dict(store.totals)
            finally:
                await store.close()

        outcome, states, attempts, totals = run(scenario())
        assert outcome == {"released": 1, "lease_open": False}
        assert states == ["done", "running"]
        # The release refunded w1's grant, so w2's grant is attempt 1.
        assert attempts == [1]
        assert totals["cells_released"] == 1

    def test_release_unknown_lease_raises(self, tmp_path):
        async def scenario():
            store = await fresh_store(tmp_path)
            try:
                with pytest.raises(UnknownLeaseError):
                    store.release_cells("l1-nope", "tok")
            finally:
                await store.close()

        run(scenario())

"""Unit tests for chip geometry: configs, cluster tiling, queries."""

import pytest

from repro.core.chip import ChipConfig, NodeRole
from repro.core.placement import build_topology, PlacementPolicy
from repro.noc.routing import Coord


class TestChipConfig:
    def test_default_is_paper_table4(self):
        config = ChipConfig()
        assert config.total_banks == 256
        assert config.banks_per_cluster == 16
        assert config.clusters_per_layer == 8
        assert config.mesh_dims == (16, 8)
        assert config.sets_per_bank == 64
        assert config.sets_per_cluster == 1024

    def test_single_layer_geometry(self):
        config = ChipConfig(num_layers=1, num_pillars=0)
        assert config.mesh_dims == (16, 16)
        assert config.clusters_per_layer == 16

    def test_four_layer_geometry(self):
        config = ChipConfig(num_layers=4)
        assert config.mesh_dims == (8, 8)
        assert config.clusters_per_layer == 4

    def test_larger_caches_grow_clusters(self):
        assert ChipConfig(cache_mb=32).banks_per_cluster == 32
        assert ChipConfig(cache_mb=64).banks_per_cluster == 64
        assert ChipConfig(cache_mb=32).mesh_dims == (32, 8)
        assert ChipConfig(cache_mb=64, num_layers=1,
                          num_pillars=0).mesh_dims == (32, 32)

    def test_rejects_odd_layer_count(self):
        with pytest.raises(ValueError):
            ChipConfig(num_layers=3).validate()

    def test_rejects_missing_pillars_3d(self):
        with pytest.raises(ValueError):
            ChipConfig(num_layers=2, num_pillars=0).validate()

    def test_lines_per_bank(self):
        assert ChipConfig().lines_per_bank == 1024


class TestTopology:
    @pytest.fixture()
    def topo3d(self):
        return build_topology(ChipConfig())

    @pytest.fixture()
    def topo2d(self):
        return build_topology(ChipConfig(num_layers=1, num_pillars=0))

    def test_cluster_count(self, topo3d):
        assert len(topo3d.clusters) == 16

    def test_every_cluster_has_16_bank_nodes(self, topo3d):
        for cluster in topo3d.clusters:
            assert len(cluster.bank_nodes) == 16

    def test_bank_nodes_tile_the_mesh(self, topo3d):
        all_nodes = {
            node for cluster in topo3d.clusters for node in cluster.bank_nodes
        }
        width, height = topo3d.config.mesh_dims
        assert len(all_nodes) == width * height * 2

    def test_cluster_at_consistency(self, topo3d):
        for cluster in topo3d.clusters:
            for node in cluster.bank_nodes:
                assert topo3d.cluster_at(node) is cluster

    def test_cluster_at_rejects_outside(self, topo3d):
        with pytest.raises(ValueError):
            topo3d.cluster_at(Coord(99, 0, 0))

    def test_tag_node_at_cpu_when_present(self, topo3d):
        for cpu_id, coord in topo3d.cpu_positions.items():
            cluster = topo3d.cluster_at(coord)
            if cluster.cpus[0] == cpu_id:
                assert cluster.tag_node == coord

    def test_tag_node_at_center_otherwise(self, topo3d):
        for cluster in topo3d.clusters:
            if not cluster.cpus:
                assert cluster.tag_node == cluster.center

    def test_node_roles(self, topo3d):
        cpu_node = topo3d.cpu_positions[0]
        assert topo3d.node_role(cpu_node) == NodeRole.CPU
        px, py = topo3d.pillar_xys[0]
        assert topo3d.node_role(Coord(px, py, 0)) == NodeRole.PILLAR_BANK

    def test_nearest_pillar(self, topo3d):
        px, py = topo3d.pillar_xys[0]
        assert topo3d.nearest_pillar(Coord(px, py, 0)) == (px, py)

    def test_nearest_pillar_requires_pillars(self, topo2d):
        with pytest.raises(ValueError):
            topo2d.nearest_pillar(Coord(0, 0, 0))

    def test_in_plane_neighbors_2d_interior(self, topo2d):
        interior = topo2d.cluster_by_tile(0, 1, 1)
        assert len(topo2d.in_plane_neighbors(interior)) == 4
        corner = topo2d.cluster_by_tile(0, 0, 0)
        assert len(topo2d.in_plane_neighbors(corner)) == 2

    def test_vertical_neighbors_cover_mirror_region(self, topo3d):
        cluster = topo3d.cluster_by_tile(0, 1, 1)
        neighbors = topo3d.vertical_neighbors(cluster)
        layers = {n.layer for n in neighbors}
        assert layers == {1}
        mirror_tiles = {(n.tile_x, n.tile_y) for n in neighbors}
        assert (1, 1) in mirror_tiles          # same tile
        assert (0, 1) in mirror_tiles          # mirror's neighbours too

    def test_vertical_neighbors_empty_in_2d(self, topo2d):
        assert topo2d.vertical_neighbors(topo2d.clusters[0]) == []

    def test_cluster_distance_symmetric_same_layer(self, topo3d):
        a, b = topo3d.clusters[0], topo3d.clusters[3]
        assert (
            topo3d.cluster_distance_hops(a, b)
            == topo3d.cluster_distance_hops(b, a)
        )

    def test_describe_mentions_all_cpus(self, topo3d):
        text = topo3d.describe()
        for cpu_id in range(8):
            assert f"CPU {cpu_id}:" in text

    def test_rejects_colliding_cpus(self):
        config = ChipConfig()
        with pytest.raises(ValueError, match="share"):
            from repro.core.chip import ChipTopology

            ChipTopology(
                config,
                {0: Coord(1, 1, 0), 1: Coord(1, 1, 0)},
                [(2, 2)],
            )

    def test_rejects_offchip_cpu(self):
        from repro.core.chip import ChipTopology

        with pytest.raises(ValueError, match="off-mesh"):
            ChipTopology(ChipConfig(), {0: Coord(99, 1, 0)}, [(2, 2)])


class TestBeyondPaperScale:
    def test_256mb_4layer_tiles_to_32x32(self):
        """The 256-bank cluster tiling enables the 32x32x4 sweep cell."""
        config = ChipConfig(
            cache_mb=256, num_layers=4, num_pillars=16, num_clusters=16
        )
        config.validate()
        assert config.mesh_dims == (32, 32)
        assert config.total_banks == 4096
        assert config.banks_per_cluster == 256
        assert config.cluster_tile == (16, 16)

"""Unit tests for the versioned wire messages of the sweep service.

Every message round-trips through ``to_dict``/``from_dict``; every
request parser rejects a payload from a different protocol revision
with :class:`~repro.serve.protocol.VersionMismatchError`.  Error bodies
are the deliberate exception — a mismatch report must be parseable by
the very peer it rejects.
"""

import pytest

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import ExperimentScale
from repro.experiments.spec import SimSpec
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    CellOutcome,
    ErrorBody,
    HeartbeatAck,
    HeartbeatRequest,
    LeaseCell,
    LeaseGrant,
    LeaseRequest,
    ResultAck,
    ResultPush,
    SubmitRequest,
    VersionMismatchError,
    check_version,
)

TINY = ExperimentScale(name="tiny", refs_per_cpu=50)


def make_spec(benchmark="art") -> SimSpec:
    return SimSpec.make(Scheme.CMP_DNUCA_3D, benchmark, scale=TINY)


def make_stats(spec: SimSpec) -> RunStats:
    return RunStats(
        scheme=spec.scheme,
        avg_l2_hit_latency=42.0,
        avg_l2_miss_latency=300.0,
        l2_hits=10,
        l2_misses=2,
        migrations=1,
        ipc=0.5,
        per_cpu_ipc=[0.5] * 8,
        l1_miss_rate=0.1,
        flit_hops=100.0,
        bus_flits=10.0,
        invalidations=0,
        instructions=1000.0,
        cycles=2000.0,
    )


class TestVersioning:
    def test_every_message_is_stamped(self):
        spec = make_spec()
        messages = [
            SubmitRequest(specs=(spec,), tenant="t"),
            LeaseRequest(worker_id="w1"),
            HeartbeatRequest(token="tok"),
            HeartbeatAck(
                lease_id="l1", ttl_s=15.0,
                expires_in_s=10.0, cells_outstanding=2,
            ),
            ResultPush(token="tok", outcomes=(), worker_id="w1"),
            ResultAck(accepted=1, stale=0, lease_open=True),
            ErrorBody(kind="bad_request", message="nope"),
            LeaseGrant(lease_id="l1", token="tok", ttl_s=15.0, cells=()),
        ]
        for message in messages:
            assert message.to_dict()["protocol_version"] == PROTOCOL_VERSION

    def test_check_version_rejects_missing_and_wrong(self):
        check_version({"protocol_version": PROTOCOL_VERSION})
        for bad in ({}, {"protocol_version": PROTOCOL_VERSION + 1},
                    {"protocol_version": "1"}, "not-a-mapping"):
            with pytest.raises(VersionMismatchError) as excinfo:
                check_version(bad)
            assert excinfo.value.expected == PROTOCOL_VERSION
            assert excinfo.value.status == 400

    def test_requests_reject_version_skew(self):
        spec = make_spec()
        payloads = [
            (SubmitRequest, SubmitRequest(specs=(spec,)).to_dict()),
            (LeaseRequest, LeaseRequest(worker_id="w").to_dict()),
            (HeartbeatRequest, HeartbeatRequest(token="t").to_dict()),
            (ResultPush, ResultPush(token="t", outcomes=()).to_dict()),
        ]
        for cls, payload in payloads:
            cls.from_dict(payload)  # sanity: current version parses
            payload["protocol_version"] = PROTOCOL_VERSION + 1
            with pytest.raises(VersionMismatchError):
                cls.from_dict(payload)

    def test_error_body_parses_without_version(self):
        # The one deliberate exception: a peer rejected for version skew
        # must still be able to read the rejection.
        parsed = ErrorBody.from_dict({"error": {
            "kind": "protocol_mismatch", "message": "skew",
            "expected_version": PROTOCOL_VERSION, "got_version": 99,
        }})
        assert parsed.kind == "protocol_mismatch"
        assert parsed.expected_version == PROTOCOL_VERSION
        assert parsed.got_version == 99


class TestRoundTrips:
    def test_submit_request(self):
        request = SubmitRequest(
            specs=(make_spec(), make_spec("swim")), tenant="lab",
        )
        parsed = SubmitRequest.from_dict(request.to_dict())
        assert parsed == request

    def test_submit_request_validates_specs(self):
        with pytest.raises(TypeError, match="list"):
            SubmitRequest.from_dict({
                "protocol_version": PROTOCOL_VERSION, "specs": "nope",
            })
        with pytest.raises(TypeError, match="tenant"):
            SubmitRequest.from_dict({
                "protocol_version": PROTOCOL_VERSION,
                "specs": [], "tenant": 7,
            })

    def test_lease_grant_with_cells(self):
        spec = make_spec()
        grant = LeaseGrant(
            lease_id="l000001-abc", token="deadbeef", ttl_s=15.0,
            cells=(LeaseCell(
                spec=spec, spec_hash=spec.spec_hash(),
                tenant="lab", attempt=2,
            ),),
        )
        parsed = LeaseGrant.from_dict(grant.to_dict())
        assert parsed == grant
        assert not parsed.is_empty
        assert parsed.cells[0].attempt == 2

    def test_empty_grant(self):
        grant = LeaseGrant(
            lease_id="", token="", ttl_s=15.0, cells=(), retry_after_s=0.5,
        )
        parsed = LeaseGrant.from_dict(grant.to_dict())
        assert parsed.is_empty
        assert parsed.retry_after_s == 0.5

    def test_lease_request_validation(self):
        for bad in ({"worker_id": ""}, {"worker_id": 3},
                    {"worker_id": "w", "max_cells": 0}):
            with pytest.raises(TypeError):
                LeaseRequest.from_dict({
                    "protocol_version": PROTOCOL_VERSION, **bad,
                })

    def test_result_push_with_outcomes(self):
        spec = make_spec()
        push = ResultPush(
            token="tok",
            worker_id="w1",
            outcomes=(
                CellOutcome(
                    spec_hash=spec.spec_hash(), stats=make_stats(spec),
                ),
                CellOutcome(
                    spec_hash="ffff", simulated=True,
                    error={"kind": "crash", "message": "sig 9",
                           "attempts": 1},
                ),
            ),
        )
        parsed = ResultPush.from_dict(push.to_dict())
        assert parsed == push
        assert parsed.outcomes[0].stats.ipc == 0.5
        assert parsed.outcomes[1].error["kind"] == "crash"

    def test_cell_outcome_requires_exactly_one_of_stats_error(self):
        with pytest.raises(TypeError, match="exactly one"):
            CellOutcome.from_dict({"spec_hash": "aa"})
        with pytest.raises(TypeError, match="exactly one"):
            CellOutcome.from_dict({
                "spec_hash": "aa",
                "stats": make_stats(make_spec()).to_dict(),
                "error": {"kind": "error", "message": "x"},
            })

    def test_error_body_optional_fields_skipped_when_unset(self):
        body = ErrorBody(kind="queue_full", message="full",
                         retry_after_s=2.0, pending=10, limit=10)
        wire = body.to_dict()
        assert "expected_version" not in wire["error"]
        assert wire["error"]["retry_after_s"] == 2.0
        assert ErrorBody.from_dict(wire) == body

"""Additional kernel edge-case tests: engine/event interactions."""

import pytest

from repro.sim.engine import ClockedComponent, Engine
from repro.sim.rng import make_rng


def test_events_chain_across_cycles():
    engine = Engine()
    fired = []

    def chain(n):
        fired.append((engine.cycle, n))
        if n > 0:
            engine.schedule(2, lambda: chain(n - 1))

    engine.schedule(0, lambda: chain(3))
    engine.run(10)
    assert fired == [(0, 3), (2, 2), (4, 1), (6, 0)]


def test_component_exception_propagates():
    class Broken(ClockedComponent):
        def evaluate(self, cycle):
            raise RuntimeError("boom")

    engine = Engine()
    engine.register(Broken())
    with pytest.raises(RuntimeError, match="boom"):
        engine.step()


def test_many_events_same_cycle_ordered():
    engine = Engine()
    seen = []
    for i in range(50):
        engine.schedule(1, lambda i=i: seen.append(i))
    engine.run(2)
    assert seen == list(range(50))


def test_rng_independent_of_other_streams():
    # Drawing from one stream never perturbs another.
    a = make_rng(7, "x")
    b = make_rng(7, "y")
    first_b = b.integers(0, 1 << 30)
    a.integers(0, 1 << 30, size=100)
    fresh_b = make_rng(7, "y").integers(0, 1 << 30)
    assert first_b == fresh_b


def test_run_returns_executed_count():
    engine = Engine()
    assert engine.run(7) == 7
    assert engine.cycle == 7

"""Unit tests for the multi-tenant JobStore scheduler.

Cells are stubbed with injected runners (the executor threads call them
directly), so these tests pin the scheduling semantics — in-flight
dedup, per-tenant fairness, backpressure, structured failure kinds —
without simulating anything.  The HTTP layer is covered by
``tests/integration/test_serve.py``.
"""

import asyncio
import threading

import pytest

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import ExperimentScale
from repro.experiments.orchestrator import ResultCache
from repro.experiments.spec import SimSpec
from repro.serve.scheduler import JobStore, QueueFullError

TINY = ExperimentScale(name="tiny", refs_per_cpu=50)


def make_spec(benchmark="art", **overrides) -> SimSpec:
    return SimSpec.make(
        Scheme.CMP_DNUCA_3D, benchmark, scale=TINY, **overrides
    )


def fake_stats(spec: SimSpec, latency: float = 42.0) -> RunStats:
    return RunStats(
        scheme=spec.scheme,
        avg_l2_hit_latency=latency,
        avg_l2_miss_latency=300.0,
        l2_hits=10,
        l2_misses=2,
        migrations=1,
        ipc=0.5,
        per_cpu_ipc=[0.5] * 8,
        l1_miss_rate=0.1,
        flit_hops=100.0,
        bus_flits=10.0,
        invalidations=0,
        instructions=1000.0,
        cycles=2000.0,
    )


class CountingRunner:
    """Thread-safe runner stub with an optional release gate."""

    def __init__(self, gated: bool = False, fail_for: str = ""):
        self.calls: list[SimSpec] = []
        self.order: list[str] = []
        self._lock = threading.Lock()
        self._gate = threading.Event()
        self.fail_for = fail_for
        if not gated:
            self._gate.set()

    def release(self):
        self._gate.set()

    def __call__(self, spec: SimSpec) -> RunStats:
        with self._lock:
            self.calls.append(spec)
            self.order.append(spec.benchmark)
        assert self._gate.wait(timeout=30.0), "gate never released"
        if self.fail_for and spec.benchmark == self.fail_for:
            raise RuntimeError(f"boom on {spec.benchmark}")
        return fake_stats(spec)


def run(coro):
    return asyncio.run(coro)


async def started_store(**kwargs) -> JobStore:
    defaults = dict(workers=1, use_cache=False)
    defaults.update(kwargs)
    store = JobStore(**defaults)
    await store.start()
    return store


class TestLifecycle:
    def test_submit_before_start_rejected(self):
        async def scenario():
            store = JobStore(runner=fake_stats)
            with pytest.raises(RuntimeError, match="not running"):
                await store.submit([make_spec()])

        run(scenario())

    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError, match="process.*inline"):
            JobStore(executor="threads")

    def test_job_completes_with_counters(self):
        async def scenario():
            runner = CountingRunner()
            store = await started_store(runner=runner)
            try:
                job = await store.submit(
                    [make_spec(), make_spec(benchmark="swim")], tenant="a"
                )
                snapshot = await job.wait()
            finally:
                await store.close()
            return snapshot, runner

        snapshot, runner = run(scenario())
        assert snapshot["state"] == "done"
        assert snapshot["cells"] == 2
        assert snapshot["simulated"] == 2
        assert (snapshot["failed"], snapshot["deduped"]) == (0, 0)
        assert len(runner.calls) == 2

    def test_empty_grid_completes_immediately(self):
        async def scenario():
            store = await started_store(runner=fake_stats)
            try:
                job = await store.submit([], tenant="a")
                assert job.is_done
                return store.totals["jobs_done"]
            finally:
                await store.close()

        assert run(scenario()) == 1


class TestCacheIntegration:
    def test_cache_hits_resolve_at_submit(self, tmp_path):
        spec = make_spec()
        ResultCache(str(tmp_path)).put(spec, fake_stats(spec))

        async def scenario():
            runner = CountingRunner()
            store = await started_store(
                runner=runner, use_cache=True, cache_dir=str(tmp_path)
            )
            try:
                job = await store.submit([spec], tenant="a")
                assert job.is_done  # resolved synchronously at submit
                return job.snapshot(), runner
            finally:
                await store.close()

        snapshot, runner = run(scenario())
        assert snapshot["cached"] == 1
        assert runner.calls == []
        assert snapshot["cells_detail"][0]["origin"] == "cached"

    def test_simulated_cells_are_persisted(self, tmp_path):
        spec = make_spec()

        async def scenario():
            store = await started_store(
                runner=fake_stats, use_cache=True, cache_dir=str(tmp_path)
            )
            try:
                job = await store.submit([spec], tenant="a")
                await job.wait()
            finally:
                await store.close()

        run(scenario())
        hit = ResultCache(str(tmp_path)).get(spec)
        assert hit is not None
        assert hit.to_dict() == fake_stats(spec).to_dict()


class TestInFlightDedup:
    def test_two_tenants_identical_grid_simulates_once(self):
        """The satellite contract: one simulated cell, two delivered results."""
        grid = [make_spec(), make_spec(benchmark="swim")]

        async def scenario():
            runner = CountingRunner(gated=True)
            store = await started_store(runner=runner, workers=2)
            try:
                job_a = await store.submit(grid, tenant="tenant-a")
                job_b = await store.submit(grid, tenant="tenant-b")
                runner.release()
                snap_a, snap_b = await asyncio.gather(
                    job_a.wait(), job_b.wait()
                )
                totals = dict(store.totals)
            finally:
                await store.close()
            return snap_a, snap_b, totals, runner

        snap_a, snap_b, totals, runner = run(scenario())
        # Exactly one execution per distinct spec...
        assert len(runner.calls) == 2
        assert totals["cells_simulated"] == 2
        assert totals["cells_deduped"] == 2
        # ...and both tenants got every result.
        for snapshot in (snap_a, snap_b):
            assert snapshot["state"] == "done"
            assert snapshot["done"] == 2
            assert snapshot["failed"] == 0
        assert snap_a["simulated"] + snap_b["simulated"] == 2
        assert snap_a["deduped"] + snap_b["deduped"] == 2

    def test_duplicate_specs_within_one_job(self):
        async def scenario():
            runner = CountingRunner()
            store = await started_store(runner=runner)
            try:
                job = await store.submit(
                    [make_spec(), make_spec()], tenant="a"
                )
                snapshot = await job.wait()
            finally:
                await store.close()
            return snapshot, runner

        snapshot, runner = run(scenario())
        assert len(runner.calls) == 1
        assert snapshot["done"] == 2
        assert snapshot["simulated"] == 1
        assert snapshot["deduped"] == 1

    def test_deduped_failure_reaches_all_subscribers(self):
        async def scenario():
            runner = CountingRunner(gated=True, fail_for="art")
            store = await started_store(runner=runner)
            try:
                job_a = await store.submit([make_spec()], tenant="a")
                job_b = await store.submit([make_spec()], tenant="b")
                runner.release()
                await asyncio.gather(job_a.wait(), job_b.wait())
                return job_a.results_dict(), job_b.results_dict()
            finally:
                await store.close()

        results_a, results_b = run(scenario())
        for body in (results_a, results_b):
            assert body["failed"] == 1
            assert body["failures"][0]["error"]["kind"] == "error"
            assert "boom" in body["failures"][0]["error"]["message"]


class TestBackpressure:
    def test_queue_full_raises_with_retry_after(self):
        async def scenario():
            runner = CountingRunner(gated=True)
            store = await started_store(runner=runner, max_pending=1)
            try:
                await store.submit([make_spec()], tenant="a")
                with pytest.raises(QueueFullError) as excinfo:
                    await store.submit(
                        [make_spec(benchmark="swim")], tenant="b"
                    )
                rejected = store.totals["submissions_rejected"]
                # Dedup submissions are always admitted: no new capacity.
                job = await store.submit([make_spec()], tenant="c")
                runner.release()
                await job.wait()
                # Queue drained: the spec that was rejected now fits.
                retry = await store.submit(
                    [make_spec(benchmark="swim")], tenant="b"
                )
                await retry.wait()
            finally:
                await store.close()
            return excinfo.value, rejected

        error, rejected = run(scenario())
        assert error.retry_after_s >= 1.0
        assert error.limit == 1
        assert rejected == 1

    def test_rejected_submission_leaves_no_state(self):
        async def scenario():
            runner = CountingRunner(gated=True)
            store = await started_store(runner=runner, max_pending=1)
            try:
                await store.submit([make_spec()], tenant="a")
                jobs_before = store.totals["jobs_submitted"]
                with pytest.raises(QueueFullError):
                    await store.submit(
                        [make_spec(benchmark="swim"),
                         make_spec(benchmark="mgrid")],
                        tenant="b",
                    )
                runner.release()
                return (
                    store.totals["jobs_submitted"] - jobs_before,
                    store.pending_cells,
                    len(runner.calls),
                )
            finally:
                await store.close()

        new_jobs, pending, started = run(scenario())
        assert new_jobs == 0
        assert pending == 1  # only tenant a's cell


class TestFairQueuing:
    def test_round_robin_across_tenants(self):
        """A small tenant's cell runs before a big tenant's backlog."""

        async def scenario():
            runner = CountingRunner(gated=True)
            store = await started_store(runner=runner, workers=1)
            try:
                big = await store.submit(
                    [make_spec(), make_spec(benchmark="swim"),
                     make_spec(benchmark="mgrid")],
                    tenant="big",
                )
                small = await store.submit(
                    [make_spec(benchmark="applu")], tenant="small"
                )
                runner.release()
                await asyncio.gather(big.wait(), small.wait())
            finally:
                await store.close()
            return runner.order

        order = run(scenario())
        # big's first cell starts immediately (the worker was idle); the
        # rotation then grants small's cell before big's backlog.
        assert order[0] == "art"
        assert order.index("applu") < order.index("swim")
        assert order.index("applu") < order.index("mgrid")


class TestFailureKinds:
    def test_structured_kind_propagates(self):
        class Stalled(RuntimeError):
            failure_kind = "deadlock"

        def deadlocking(spec):
            raise Stalled("no forward progress")

        async def scenario():
            store = await started_store(runner=deadlocking)
            try:
                job = await store.submit([make_spec()], tenant="a")
                snapshot = await job.wait()
                return snapshot, job.results_dict(), dict(store.totals)
            finally:
                await store.close()

        snapshot, results, totals = run(scenario())
        assert snapshot["failure_kinds"] == {"deadlock": 1}
        assert results["failures"][0]["error"]["kind"] == "deadlock"
        assert totals["failure_kinds"] == {"deadlock": 1}
        assert totals["cells_failed"] == 1


class TestEvents:
    def test_stream_replays_then_follows(self):
        async def scenario():
            runner = CountingRunner(gated=True)
            store = await started_store(runner=runner)
            try:
                job = await store.submit([make_spec()], tenant="a")

                async def collect():
                    return [event async for event in job.events()]

                collector = asyncio.create_task(collect())
                await asyncio.sleep(0.05)
                runner.release()
                await job.wait()
                return await asyncio.wait_for(collector, timeout=10.0)
            finally:
                await store.close()

        events = run(scenario())
        kinds = [event["event"] for event in events]
        assert kinds[0] == "job"
        assert kinds[-1] == "done"
        states = [
            event["state"] for event in events if event["event"] == "cell"
        ]
        assert states == ["running", "done"]
        done_cell = [
            event for event in events
            if event["event"] == "cell" and event["state"] == "done"
        ][0]
        assert done_cell["origin"] == "simulated"
        assert "stats" in done_cell

    def test_stream_after_completion_replays_everything(self):
        async def scenario():
            store = await started_store(runner=fake_stats)
            try:
                job = await store.submit([make_spec()], tenant="a")
                await job.wait()
                return [event async for event in job.events()]
            finally:
                await store.close()

        events = run(scenario())
        assert events[0]["event"] == "job"
        assert events[-1]["event"] == "done"


def outcome_for(spec: SimSpec, error: dict = None) -> dict:
    """A remote-worker outcome dict as push_results consumes it."""
    base = {"spec_hash": spec.spec_hash(), "simulated": True}
    if error is not None:
        return {**base, "stats": None, "error": error}
    return {**base, "stats": fake_stats(spec), "error": None}


async def head_only_store(**kwargs) -> JobStore:
    """A store with no local execution: cells wait for remote leases."""
    defaults = dict(workers=0, use_cache=False, lease_ttl_s=30.0)
    defaults.update(kwargs)
    store = JobStore(**defaults)
    await store.start()
    return store


class TestLeases:
    def test_grant_pops_queue_and_marks_running(self):
        async def scenario():
            store = await head_only_store()
            try:
                grid = [make_spec(), make_spec(benchmark="swim")]
                job = await store.submit(grid, tenant="a")
                lease = store.grant_lease("w1", max_cells=8)
                assert lease is not None
                assert len(lease.entries) == 2
                assert store.grant_lease("w1") is None  # queue drained
                states = [
                    (cell.state, cell.worker) for cell in job.cells
                ]
                return states, dict(store.totals), store.stats_dict()
            finally:
                await store.close()

        states, totals, stats = run(scenario())
        assert states == [("running", "w1"), ("running", "w1")]
        assert totals["leases_granted"] == 1
        assert stats["leases_open"] == 1

    def test_push_results_completes_job_and_replicates(self, tmp_path):
        async def scenario():
            store = await head_only_store(
                use_cache=True, cache_dir=str(tmp_path)
            )
            try:
                spec = make_spec()
                job = await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                ack = store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(spec)], worker_id="w1",
                )
                assert await asyncio.wait_for(job.wait(), timeout=5.0)
                return ack, job.snapshot(), dict(store.totals)
            finally:
                await store.close()

        ack, snapshot, totals = run(scenario())
        assert ack == {"accepted": 1, "stale": 0, "lease_open": False}
        assert snapshot["state"] == "done"
        assert snapshot["simulated"] == 1
        assert totals["cells_remote"] == 1
        # Artifact replication: the pushed result is now in the head's
        # cache and serves future submissions without simulation.
        hit = ResultCache(str(tmp_path)).get(make_spec())
        assert hit is not None

    def test_reaped_lease_requeues_cells_exactly_once(self):
        """The satellite contract: one reap -> one requeue per cell."""

        async def scenario():
            store = await head_only_store(worker_retries=1)
            try:
                grid = [make_spec(), make_spec(benchmark="swim")]
                job = await store.submit(grid, tenant="a")
                lease = store.grant_lease("w1", max_cells=8)
                deadline = lease.deadline

                requeued = store.reap_expired(now=deadline + 1.0)
                assert requeued == 2
                # A second sweep past the same deadline must be a no-op:
                # the lease is gone, the cells are queued, not leased.
                assert store.reap_expired(now=deadline + 2.0) == 0

                states = [cell.state for cell in job.cells]
                assert states == ["queued", "queued"]
                assert all(cell.worker is None for cell in job.cells)

                # The requeued cells are grantable again, with the
                # attempt counter advanced.
                retry = store.grant_lease("w2", max_cells=8)
                assert len(retry.entries) == 2
                attempts = [
                    entry.worker_attempts
                    for entry in retry.entries.values()
                ]
                return dict(store.totals), attempts
            finally:
                await store.close()

        totals, attempts = run(scenario())
        assert totals["cells_requeued"] == 2
        assert totals["leases_reaped"] == 1
        assert attempts == [2, 2]

    def test_worker_lost_after_retry_exhaustion(self):
        async def scenario():
            store = await head_only_store(worker_retries=1)
            try:
                job = await store.submit([make_spec()], tenant="a")
                for worker in ("w1", "w2"):
                    lease = store.grant_lease(worker)
                    assert lease is not None
                    store.reap_expired(now=lease.deadline + 1.0)
                snapshot = await asyncio.wait_for(job.wait(), timeout=5.0)
                return snapshot, job.results_dict(), dict(store.totals)
            finally:
                await store.close()

        snapshot, results, totals = run(scenario())
        assert snapshot["failed"] == 1
        error = results["failures"][0]["error"]
        assert error["kind"] == "worker_lost"
        assert error["attempts"] == 2
        assert "w2" in error["message"]
        assert snapshot["failure_kinds"] == {"worker_lost": 1}
        assert totals["failure_kinds"] == {"worker_lost": 1}
        assert totals["cells_requeued"] == 1  # only the first reap requeued

    def test_late_push_from_reaped_lease_still_resolves(self):
        """A worker that outlives its lease does not waste its work."""

        async def scenario():
            store = await head_only_store(worker_retries=5)
            try:
                spec = make_spec()
                job = await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                store.reap_expired(now=lease.deadline + 1.0)  # requeued

                ack = store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(spec)], worker_id="w1",
                )
                snapshot = await asyncio.wait_for(job.wait(), timeout=5.0)
                # The requeued copy must be gone: nothing left to grant.
                assert store.grant_lease("w2") is None
                return ack, snapshot
            finally:
                await store.close()

        ack, snapshot = run(scenario())
        assert ack["accepted"] == 1
        assert ack["lease_open"] is False  # reaped leases stay closed
        assert snapshot["state"] == "done"
        assert snapshot["failed"] == 0

    def test_duplicate_push_is_stale(self):
        async def scenario():
            store = await head_only_store()
            try:
                spec = make_spec()
                await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                first = store.push_results(
                    lease.lease_id, lease.token, [outcome_for(spec)]
                )
                second = store.push_results(
                    lease.lease_id, lease.token, [outcome_for(spec)]
                )
                return first, second, dict(store.totals)
            finally:
                await store.close()

        first, second, totals = run(scenario())
        assert first["accepted"] == 1
        assert second == {"accepted": 0, "stale": 1, "lease_open": False}
        assert totals["results_stale"] == 1

    def test_heartbeat_extends_and_validates_token(self):
        from repro.serve.scheduler import UnknownLeaseError

        async def scenario():
            store = await head_only_store()
            try:
                await store.submit([make_spec()], tenant="a")
                lease = store.grant_lease("w1")
                before = lease.deadline
                await asyncio.sleep(0.01)
                extended = store.heartbeat(lease.lease_id, lease.token)
                assert extended.deadline > before
                with pytest.raises(UnknownLeaseError):
                    store.heartbeat(lease.lease_id, "forged-token")
                with pytest.raises(UnknownLeaseError):
                    store.heartbeat("l-nope", lease.token)
            finally:
                await store.close()

        run(scenario())

    def test_remote_failure_outcome_is_structured(self):
        async def scenario():
            store = await head_only_store()
            try:
                spec = make_spec()
                job = await store.submit([spec], tenant="a")
                lease = store.grant_lease("w1")
                store.push_results(
                    lease.lease_id, lease.token,
                    [outcome_for(spec, error={
                        "kind": "timeout",
                        "message": "cell exceeded 1.0s",
                        "attempts": 2,
                    })],
                )
                snapshot = await asyncio.wait_for(job.wait(), timeout=5.0)
                return snapshot, job.results_dict()
            finally:
                await store.close()

        snapshot, results = run(scenario())
        assert snapshot["failure_kinds"] == {"timeout": 1}
        assert results["failures"][0]["error"]["attempts"] == 2

    def test_head_only_store_validates_and_idles(self):
        with pytest.raises(ValueError, match=">= 0"):
            JobStore(workers=-1)
        with pytest.raises(ValueError, match="lease_ttl_s"):
            JobStore(lease_ttl_s=0)

        async def scenario():
            store = await head_only_store()
            try:
                job = await store.submit([make_spec()], tenant="a")
                await asyncio.sleep(0.05)  # no local workers may run it
                return [cell.state for cell in job.cells], store.workers
            finally:
                await store.close()

        states, workers = run(scenario())
        assert workers == 0
        assert states == ["queued"]

    def test_reaper_task_requeues_in_background(self):
        """The asyncio reaper converts expiry to requeue without help."""

        async def scenario():
            store = await head_only_store(lease_ttl_s=0.1)
            try:
                await store.submit([make_spec()], tenant="a")
                lease = store.grant_lease("w1")
                assert lease is not None
                for __ in range(100):
                    if store.totals["leases_reaped"]:
                        break
                    await asyncio.sleep(0.05)
                return dict(store.totals)
            finally:
                await store.close()

        totals = run(scenario())
        assert totals["leases_reaped"] == 1
        assert totals["cells_requeued"] == 1

"""Unit tests for the `repro.api` submission facade."""

import asyncio

import pytest

from repro import api
from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import ExperimentScale
from repro.experiments.orchestrator import SweepSummary
from repro.experiments.spec import SimSpec

TINY = ExperimentScale(name="tiny", refs_per_cpu=50)


def make_spec(benchmark="art", **overrides) -> SimSpec:
    return SimSpec.make(
        Scheme.CMP_DNUCA_3D, benchmark, scale=TINY, **overrides
    )


def fake_stats(spec: SimSpec, latency: float = 42.0) -> RunStats:
    return RunStats(
        scheme=spec.scheme,
        avg_l2_hit_latency=latency,
        avg_l2_miss_latency=300.0,
        l2_hits=10,
        l2_misses=2,
        migrations=1,
        ipc=0.5,
        per_cpu_ipc=[0.5] * 8,
        l1_miss_rate=0.1,
        flit_hops=100.0,
        bus_flits=10.0,
        invalidations=0,
        instructions=1000.0,
        cycles=2000.0,
    )


class TestRun:
    def test_returns_typed_cell_result(self):
        result = api.run(make_spec())
        assert result.spec == make_spec()
        assert result.cached is False
        assert result.stats.ipc > 0
        encoded = result.to_dict()
        assert encoded["cached"] is False
        assert encoded["spec"] == make_spec().to_dict()

    def test_kwargs_build_a_spec(self):
        result = api.run(
            scheme=Scheme.CMP_DNUCA_3D, benchmark="art", scale=TINY
        )
        assert result.spec == make_spec()

    def test_spec_plus_kwargs_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            api.run(make_spec(), benchmark="swim")

    def test_cache_round_trip(self, tmp_path):
        cold = api.run(make_spec(), use_cache=True, cache_dir=str(tmp_path))
        warm = api.run(make_spec(), use_cache=True, cache_dir=str(tmp_path))
        assert cold.cached is False
        assert warm.cached is True
        assert warm.stats.to_dict() == cold.stats.to_dict()

    def test_system_config_bypasses_cache(self, tmp_path):
        from repro.experiments.spec import build_system_config

        spec = make_spec()
        result = api.run(
            spec,
            use_cache=True,
            cache_dir=str(tmp_path),
            system_config=build_system_config(spec),
        )
        assert result.cached is False
        assert list(tmp_path.iterdir()) == []  # nothing persisted

    def test_results_identical_to_run_spec(self):
        from repro.experiments.spec import run_spec

        spec = make_spec()
        assert api.run(spec).stats.to_dict() == run_spec(spec).to_dict()


class TestSweep:
    def test_forwards_to_orchestrator(self, tmp_path):
        specs = [make_spec(), make_spec(benchmark="swim")]
        summary = api.sweep(
            specs, cache_dir=str(tmp_path), runner=fake_stats
        )
        assert isinstance(summary, SweepSummary)
        assert (summary.simulated, summary.failed) == (2, 0)
        warm = api.sweep(specs, cache_dir=str(tmp_path), runner=fake_stats)
        assert (warm.simulated, warm.cached) == (0, 2)

    def test_registry_goes_through_facade(self, monkeypatch):
        """run_experiment must submit its cells via api.sweep."""
        calls = []

        def recording(specs, **kwargs):
            calls.append(list(specs))
            return SweepSummary()

        monkeypatch.setattr(api, "sweep", recording)
        from repro.experiments.registry import run_experiment

        text, summary = run_experiment("table1")
        assert calls == [[]]  # table1 is analytic: empty grid, still routed
        assert "Table 1" in text

    def test_cli_sweep_goes_through_facade(self, monkeypatch, capsys):
        calls = []

        def recording(specs, **kwargs):
            calls.append(list(specs))
            summary = SweepSummary()
            for spec in specs:
                summary.results[spec] = fake_stats(spec)
                summary.simulated += 1
            return summary

        monkeypatch.setattr(api, "sweep", recording)
        from repro.cli import main

        code = main([
            "sweep", "--schemes", "CMP-DNUCA-3D", "--benchmarks", "art",
            "--refs", "50", "--no-cache", "--quiet",
        ])
        assert code == 0
        assert len(calls) == 1 and len(calls[0]) == 1
        assert "Sweep results" in capsys.readouterr().out


class TestSubmit:
    def test_submit_through_explicit_store(self):
        from repro.serve.scheduler import JobStore

        async def scenario():
            store = JobStore(workers=1, use_cache=False, runner=fake_stats)
            await store.start()
            try:
                job = await api.submit(
                    [make_spec()], tenant="t", store=store
                )
                snapshot = await job.wait()
            finally:
                await store.close()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot["state"] == "done"
        assert snapshot["simulated"] == 1
        assert snapshot["failed"] == 0

    def test_default_store_created_lazily(self):
        async def scenario():
            api._DEFAULT_STORE = None
            try:
                store = await api.default_store()
                assert store.is_running
                again = await api.default_store()
                assert again is store
                await store.close()
            finally:
                api._DEFAULT_STORE = None

        asyncio.run(scenario())

"""Unit tests for the typed NoC fabric selector."""

import pytest

from repro.noc.fabric import FABRIC_NAMES, FabricKind
from repro.noc.network import Network, NetworkConfig


class TestFabricKind:
    def test_parse_strings(self):
        assert FabricKind.parse("optimized") is FabricKind.OPTIMIZED
        assert FabricKind.parse("reference") is FabricKind.REFERENCE

    def test_parse_enum_passthrough(self):
        assert FabricKind.parse(FabricKind.REFERENCE) is FabricKind.REFERENCE

    def test_parse_invalid_names_value_and_choices(self):
        with pytest.raises(ValueError) as excinfo:
            FabricKind.parse("turbo")
        message = str(excinfo.value)
        assert "'turbo'" in message
        for name in FABRIC_NAMES:
            assert name in message

    def test_names_cover_every_kind(self):
        assert set(FABRIC_NAMES) == {kind.value for kind in FabricKind}

    def test_network_accepts_string_and_enum(self):
        config = NetworkConfig(
            width=2, height=2, layers=1, pillar_locations=()
        )
        by_string = Network(config, fabric="reference")
        by_enum = Network(config, fabric=FabricKind.REFERENCE)
        assert by_string.fabric is FabricKind.REFERENCE
        assert by_string.fabric is by_enum.fabric

    def test_network_rejects_unknown_fabric(self):
        config = NetworkConfig(
            width=2, height=2, layers=1, pillar_locations=()
        )
        with pytest.raises(ValueError, match="unknown fabric"):
            Network(config, fabric="quantum")

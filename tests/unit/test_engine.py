"""Unit tests for the cycle-driven simulation engine."""

import pytest

from repro.sim.engine import ClockedComponent, Engine


class Recorder(ClockedComponent):
    """Records the cycles at which each phase ran."""

    def __init__(self):
        self.evaluated = []
        self.advanced = []

    def evaluate(self, cycle):
        self.evaluated.append(cycle)

    def advance(self, cycle):
        self.advanced.append(cycle)


def test_step_advances_cycle():
    engine = Engine()
    assert engine.cycle == 0
    engine.step()
    assert engine.cycle == 1


def test_components_called_each_cycle():
    engine = Engine()
    recorder = Recorder()
    engine.register(recorder)
    engine.run(3)
    assert recorder.evaluated == [0, 1, 2]
    assert recorder.advanced == [0, 1, 2]


def test_two_phase_order_within_cycle():
    engine = Engine()
    order = []

    class A(ClockedComponent):
        def evaluate(self, cycle):
            order.append("eval-a")

        def advance(self, cycle):
            order.append("adv-a")

    class B(ClockedComponent):
        def evaluate(self, cycle):
            order.append("eval-b")

        def advance(self, cycle):
            order.append("adv-b")

    engine.register(A())
    engine.register(B())
    engine.step()
    # All evaluations precede all advances.
    assert order == ["eval-a", "eval-b", "adv-a", "adv-b"]


def test_register_rejects_non_component():
    engine = Engine()
    with pytest.raises(TypeError):
        engine.register(object())


def test_unregister_stops_updates():
    engine = Engine()
    recorder = Recorder()
    engine.register(recorder)
    engine.run(1)
    engine.unregister(recorder)
    engine.run(1)
    assert recorder.evaluated == [0]


def test_event_fires_at_scheduled_cycle():
    engine = Engine()
    fired = []
    engine.schedule(3, lambda: fired.append(engine.cycle))
    engine.run(5)
    assert fired == [3]


def test_event_zero_delay_fires_on_current_cycle():
    engine = Engine()
    fired = []
    engine.schedule(0, lambda: fired.append(engine.cycle))
    engine.step()
    assert fired == [0]


def test_event_cancellation():
    engine = Engine()
    fired = []
    event = engine.schedule(2, lambda: fired.append(1))
    event.cancel()
    engine.run(5)
    assert fired == []


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_events_fire_in_schedule_order_same_cycle():
    engine = Engine()
    fired = []
    engine.schedule(1, lambda: fired.append("first"))
    engine.schedule(1, lambda: fired.append("second"))
    engine.run(2)
    assert fired == ["first", "second"]


def test_events_fire_before_component_evaluate():
    engine = Engine()
    order = []

    class Watcher(ClockedComponent):
        def evaluate(self, cycle):
            order.append(f"eval@{cycle}")

    engine.register(Watcher())
    engine.schedule(1, lambda: order.append("event@1"))
    engine.run(2)
    assert order.index("event@1") < order.index("eval@1")


def test_run_until_predicate():
    engine = Engine()
    count = []

    class Counter(ClockedComponent):
        def advance(self, cycle):
            count.append(cycle)

    engine.register(Counter())
    executed = engine.run_until(lambda: len(count) >= 5)
    assert executed == 5


def test_run_until_deadlock_detection():
    engine = Engine()
    with pytest.raises(RuntimeError, match="deadlock"):
        engine.run_until(lambda: False, max_cycles=10)


def test_stop_interrupts_run():
    engine = Engine()

    class Stopper(ClockedComponent):
        def __init__(self, eng):
            self.engine = eng

        def advance(self, cycle):
            if cycle == 2:
                self.engine.stop()

    engine.register(Stopper(engine))
    executed = engine.run(100)
    assert executed == 3


def test_peek_next_event_cycle_skips_cancelled():
    engine = Engine()
    event = engine.schedule(2, lambda: None)
    engine.schedule(5, lambda: None)
    assert engine.peek_next_event_cycle() == 2
    event.cancel()
    assert engine.peek_next_event_cycle() == 5


def test_event_scheduled_during_advance_fires_next_cycle():
    engine = Engine()
    fired = []

    class Scheduler(ClockedComponent):
        def __init__(self, eng):
            self.engine = eng
            self.done = False

        def advance(self, cycle):
            if not self.done:
                self.done = True
                self.engine.schedule(1, lambda: fired.append(engine.cycle))

    engine.register(Scheduler(engine))
    engine.run(3)
    assert fired == [1]


# -- membership changes during a cycle (regression: list mutated mid-loop) --


class Unregisterer(ClockedComponent):
    """Unregisters a victim component (and optionally itself) mid-cycle."""

    def __init__(self, engine, victims, phase="evaluate"):
        self.engine = engine
        self.victims = victims
        self.phase = phase
        self.done = False

    def _fire(self):
        if not self.done:
            self.done = True
            for victim in self.victims:
                self.engine.unregister(victim)

    def evaluate(self, cycle):
        if self.phase == "evaluate":
            self._fire()

    def advance(self, cycle):
        if self.phase == "advance":
            self._fire()


@pytest.mark.parametrize("tracking", [False, True])
@pytest.mark.parametrize("phase", ["evaluate", "advance"])
def test_unregister_other_during_step(tracking, phase):
    engine = Engine(activity_tracking=tracking)
    remover = Unregisterer(engine, [], phase=phase)
    victims = [Recorder(), Recorder()]
    engine.register(remover)
    for victim in victims:
        engine.register(victim)
    remover.victims = victims
    engine.run(3)
    for victim in victims:
        # Unregistered during evaluate: skipped even for this cycle's
        # advance.  Unregistered during advance: evaluate already ran.
        assert victim.advanced == []
        assert victim.evaluated == ([0] if phase == "advance" else [])


@pytest.mark.parametrize("tracking", [False, True])
def test_unregister_self_during_step(tracking):
    engine = Engine(activity_tracking=tracking)
    remover = Unregisterer(engine, [], phase="advance")
    remover.victims = [remover]
    engine.register(remover)
    survivor = Recorder()
    engine.register(survivor)
    engine.run(2)
    # The self-removal must not disturb iteration over the remaining
    # components of the same cycle.
    assert survivor.evaluated == [0, 1]
    assert survivor.advanced == [0, 1]


def test_register_twice_rejected():
    engine = Engine()
    recorder = Recorder()
    engine.register(recorder)
    with pytest.raises(ValueError, match="already registered"):
        engine.register(recorder)
    with pytest.raises(ValueError, match="already registered"):
        Engine("other").register(recorder)


def test_register_during_step_ticks_next_cycle():
    engine = Engine()
    late = Recorder()

    class Adder(ClockedComponent):
        def __init__(self):
            self.done = False

        def advance(self, cycle):
            if not self.done:
                self.done = True
                engine.register(late)

    engine.register(Adder())
    engine.run(3)
    assert late.evaluated == [1, 2]


# -- activity tracking ------------------------------------------------------


class IdleAfterBudget(ClockedComponent):
    """Reports idle once it has been ticked ``budget`` times."""

    def __init__(self, budget=1):
        self.budget = budget
        self.evaluated = []

    def evaluate(self, cycle):
        self.evaluated.append(cycle)

    def is_idle(self):
        return len(self.evaluated) >= self.budget


def test_idle_component_retired_and_rewoken():
    engine = Engine(activity_tracking=True)
    component = IdleAfterBudget(budget=2)
    engine.register(component)
    engine.run(5)
    # Ticked on cycles 0 and 1, then retired; cycles 2-4 fast-forwarded.
    assert component.evaluated == [0, 1]
    assert engine.active_count == 0
    component.budget = 3
    component.wake()
    engine.run(2)
    assert component.evaluated == [0, 1, 5]


def test_naive_kernel_ignores_is_idle():
    engine = Engine(activity_tracking=False)
    component = IdleAfterBudget(budget=1)
    engine.register(component)
    engine.run(4)
    assert component.evaluated == [0, 1, 2, 3]
    assert engine.fast_forwarded_cycles == 0


def test_fast_forward_stops_at_next_event():
    engine = Engine(activity_tracking=True)
    fired = []
    engine.schedule(100, lambda: fired.append(engine.cycle))
    executed = engine.run(300)
    # Nothing is active: the clock jumps straight to the event, steps
    # through it, then jumps to the horizon.  Totals match the naive kernel.
    assert executed == 300
    assert engine.cycle == 300
    assert fired == [100]
    assert engine.fast_forwarded_cycles == 299


def test_wake_requires_registration():
    engine = Engine()
    stray = Recorder()
    with pytest.raises(ValueError, match="not registered"):
        engine.wake(stray)
    # The component-side helper is a safe no-op when unregistered.
    stray.wake()


def test_run_until_fast_forwards_to_event():
    engine = Engine(activity_tracking=True)
    done = []
    engine.schedule(1000, lambda: done.append(True))
    executed = engine.run_until(lambda: bool(done), max_cycles=5000)
    assert done and executed == 1001
    assert engine.fast_forwarded_cycles >= 999


def test_flush_idle_stats_called_at_end_of_run():
    flushed = []

    class Flusher(ClockedComponent):
        def is_idle(self):
            return True

        def flush_idle_stats(self, cycle):
            flushed.append(cycle)

    engine = Engine(activity_tracking=True)
    engine.register(Flusher())
    engine.run(50)
    assert flushed == [50]


# -- post queue (hot-path credit returns) -----------------------------------


def test_post_runs_at_top_of_next_step():
    engine = Engine()
    order = []

    class Poster(ClockedComponent):
        def __init__(self):
            self.done = False

        def evaluate(self, cycle):
            order.append(f"eval@{cycle}")

        def advance(self, cycle):
            if not self.done:
                self.done = True
                engine.post(order.append, "posted")

    engine.register(Poster())
    engine.run(2)
    # Posted during advance(0); applied before evaluate(1), like a
    # schedule(1, ...) event — never within the posting cycle.
    assert order == ["eval@0", "posted", "eval@1"]


def test_post_fires_before_events_of_same_step():
    engine = Engine()
    order = []
    engine.schedule(1, lambda: order.append("event"))
    engine.post(order.append, "posted")
    engine.run(2)
    assert order == ["posted", "event"]


def test_post_during_post_drains_next_step():
    engine = Engine()
    seen = []

    def reposter(value):
        seen.append((value, engine.cycle))
        if value == "first":
            engine.post(reposter, "second")

    engine.post(reposter, "first")
    engine.run(3)
    assert seen == [("first", 0), ("second", 1)]


def test_pending_post_blocks_fast_forward():
    engine = Engine(activity_tracking=True)
    fired = []
    engine.post(lambda __: fired.append(engine.cycle), None)
    engine.run(10)
    # The post pins cycle 0 (no skip), then the remaining window is idle.
    assert fired == [0]
    assert engine.cycle == 10
    assert engine.fast_forwarded_cycles == 9


# -- O(1) unregister --------------------------------------------------------


def test_unregister_never_registered_raises():
    engine = Engine()
    stray = Recorder()
    with pytest.raises(ValueError, match="not registered"):
        engine.unregister(stray)


def test_unregister_from_other_engine_raises():
    first = Engine("first")
    second = Engine("second")
    recorder = Recorder()
    first.register(recorder)
    with pytest.raises(ValueError, match="not registered with engine 'second'"):
        second.unregister(recorder)
    # Still registered with (and tickable by) the original engine.
    first.run(1)
    assert recorder.evaluated == [0]


def test_unregister_preserves_naive_tick_order():
    engine = Engine(activity_tracking=False)
    order = []

    class Tagged(ClockedComponent):
        def __init__(self, tag):
            self.tag = tag

        def evaluate(self, cycle):
            order.append(self.tag)

    components = [Tagged(tag) for tag in "abcd"]
    for component in components:
        engine.register(component)
    engine.unregister(components[1])  # remove "b" from the middle
    engine.step()
    assert order == ["a", "c", "d"]


def test_reregister_after_unregister():
    engine = Engine()
    recorder = Recorder()
    engine.register(recorder)
    engine.unregister(recorder)
    engine.register(recorder)
    engine.run(1)
    assert recorder.evaluated == [0]

"""Unit tests for the cycle-driven simulation engine."""

import pytest

from repro.sim.engine import ClockedComponent, Engine


class Recorder(ClockedComponent):
    """Records the cycles at which each phase ran."""

    def __init__(self):
        self.evaluated = []
        self.advanced = []

    def evaluate(self, cycle):
        self.evaluated.append(cycle)

    def advance(self, cycle):
        self.advanced.append(cycle)


def test_step_advances_cycle():
    engine = Engine()
    assert engine.cycle == 0
    engine.step()
    assert engine.cycle == 1


def test_components_called_each_cycle():
    engine = Engine()
    recorder = Recorder()
    engine.register(recorder)
    engine.run(3)
    assert recorder.evaluated == [0, 1, 2]
    assert recorder.advanced == [0, 1, 2]


def test_two_phase_order_within_cycle():
    engine = Engine()
    order = []

    class A(ClockedComponent):
        def evaluate(self, cycle):
            order.append("eval-a")

        def advance(self, cycle):
            order.append("adv-a")

    class B(ClockedComponent):
        def evaluate(self, cycle):
            order.append("eval-b")

        def advance(self, cycle):
            order.append("adv-b")

    engine.register(A())
    engine.register(B())
    engine.step()
    # All evaluations precede all advances.
    assert order == ["eval-a", "eval-b", "adv-a", "adv-b"]


def test_register_rejects_non_component():
    engine = Engine()
    with pytest.raises(TypeError):
        engine.register(object())


def test_unregister_stops_updates():
    engine = Engine()
    recorder = Recorder()
    engine.register(recorder)
    engine.run(1)
    engine.unregister(recorder)
    engine.run(1)
    assert recorder.evaluated == [0]


def test_event_fires_at_scheduled_cycle():
    engine = Engine()
    fired = []
    engine.schedule(3, lambda: fired.append(engine.cycle))
    engine.run(5)
    assert fired == [3]


def test_event_zero_delay_fires_on_current_cycle():
    engine = Engine()
    fired = []
    engine.schedule(0, lambda: fired.append(engine.cycle))
    engine.step()
    assert fired == [0]


def test_event_cancellation():
    engine = Engine()
    fired = []
    event = engine.schedule(2, lambda: fired.append(1))
    event.cancel()
    engine.run(5)
    assert fired == []


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_events_fire_in_schedule_order_same_cycle():
    engine = Engine()
    fired = []
    engine.schedule(1, lambda: fired.append("first"))
    engine.schedule(1, lambda: fired.append("second"))
    engine.run(2)
    assert fired == ["first", "second"]


def test_events_fire_before_component_evaluate():
    engine = Engine()
    order = []

    class Watcher(ClockedComponent):
        def evaluate(self, cycle):
            order.append(f"eval@{cycle}")

    engine.register(Watcher())
    engine.schedule(1, lambda: order.append("event@1"))
    engine.run(2)
    assert order.index("event@1") < order.index("eval@1")


def test_run_until_predicate():
    engine = Engine()
    count = []

    class Counter(ClockedComponent):
        def advance(self, cycle):
            count.append(cycle)

    engine.register(Counter())
    executed = engine.run_until(lambda: len(count) >= 5)
    assert executed == 5


def test_run_until_deadlock_detection():
    engine = Engine()
    with pytest.raises(RuntimeError, match="deadlock"):
        engine.run_until(lambda: False, max_cycles=10)


def test_stop_interrupts_run():
    engine = Engine()

    class Stopper(ClockedComponent):
        def __init__(self, eng):
            self.engine = eng

        def advance(self, cycle):
            if cycle == 2:
                self.engine.stop()

    engine.register(Stopper(engine))
    executed = engine.run(100)
    assert executed == 3


def test_peek_next_event_cycle_skips_cancelled():
    engine = Engine()
    event = engine.schedule(2, lambda: None)
    engine.schedule(5, lambda: None)
    assert engine.peek_next_event_cycle() == 2
    event.cancel()
    assert engine.peek_next_event_cycle() == 5


def test_event_scheduled_during_advance_fires_next_cycle():
    engine = Engine()
    fired = []

    class Scheduler(ClockedComponent):
        def __init__(self, eng):
            self.engine = eng
            self.done = False

        def advance(self, cycle):
            if not self.done:
                self.done = True
                self.engine.schedule(1, lambda: fired.append(engine.cycle))

    engine.register(Scheduler(engine))
    engine.run(3)
    assert fired == [1]

"""Unit tests for the NUCA L2: search, placement, migration, eviction."""

import pytest

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.cache.nuca import NucaL2, AccessType
from repro.cache.migration import MigrationConfig
from repro.cache.search import SearchPolicy


@pytest.fixture()
def topo3d():
    return build_topology(ChipConfig())


@pytest.fixture()
def topo2d():
    return build_topology(ChipConfig(num_layers=1, num_pillars=0))


def address_for_cluster(nuca, cluster_index, index=0):
    """Compose an address whose home cluster is ``cluster_index``."""
    tag = cluster_index  # low tag bits pick the cluster
    return nuca.addr_map.compose(tag, index)


class TestSearchPolicy:
    def test_step1_includes_local(self, topo3d):
        policy = SearchPolicy(topo3d)
        plan = policy.plan(0)
        assert plan.local_cluster in plan.step1

    def test_steps_partition_all_clusters(self, topo3d):
        plan = SearchPolicy(topo3d).plan(0)
        assert sorted(plan.step1 + plan.step2) == list(range(16))

    def test_3d_step1_covers_more_than_2d(self, topo3d, topo2d):
        plan3d = SearchPolicy(topo3d).plan(0)
        plan2d = SearchPolicy(topo2d).plan(0)
        assert len(plan3d.step1) > len(plan2d.step1)

    def test_plans_cached(self, topo3d):
        policy = SearchPolicy(topo3d)
        assert policy.plan(0) is policy.plan(0)

    def test_clusters_probed(self, topo3d):
        policy = SearchPolicy(topo3d)
        plan = policy.plan(0)
        assert policy.clusters_probed(0, 1) == len(plan.step1)
        assert policy.clusters_probed(0, 2) == 16


class TestNucaBasics:
    def test_miss_places_at_home_cluster(self, topo3d):
        nuca = NucaL2(topo3d)
        address = address_for_cluster(nuca, cluster_index=5)
        outcome = nuca.access(0, address)
        assert not outcome.hit
        assert outcome.cluster == 5
        assert nuca.location_of(address) == 5

    def test_second_access_hits(self, topo3d):
        nuca = NucaL2(topo3d)
        address = address_for_cluster(nuca, 3)
        nuca.access(0, address)
        outcome = nuca.access(0, address)
        assert outcome.hit

    def test_hit_rate(self, topo3d):
        nuca = NucaL2(topo3d)
        address = address_for_cluster(nuca, 1)
        nuca.access(0, address)
        nuca.access(0, address)
        assert nuca.hit_rate == pytest.approx(0.5)

    def test_write_marks_dirty(self, topo3d):
        nuca = NucaL2(topo3d)
        address = address_for_cluster(nuca, 2)
        nuca.access(0, address, AccessType.WRITE)
        store = nuca.clusters[2]
        decoded = nuca.addr_map.decode(address)
        __, entry = store.lookup(decoded.index, decoded.tag)
        assert entry.dirty

    def test_eviction_reported(self, topo3d):
        nuca = NucaL2(topo3d)
        # Fill one set (16 ways) plus one more in the same home cluster.
        outcomes = []
        for way in range(17):
            tag = 5 + way * 16  # same home cluster (5), distinct tags
            outcomes.append(
                nuca.access(0, nuca.addr_map.compose(tag, 0))
            )
        evictions = [o for o in outcomes if o.evicted_line is not None]
        assert len(evictions) == 1
        assert nuca.lines_resident == 16

    def test_search_step_classification(self, topo3d):
        nuca = NucaL2(topo3d)
        plan = nuca.search.plan(0)
        remote = plan.step2[0]
        address = address_for_cluster(nuca, remote)
        nuca.access(0, address)
        outcome = nuca.access(0, address)
        assert outcome.search_step == 2


class TestMigration:
    def _nuca(self, topo, threshold=1):
        return NucaL2(
            topo,
            MigrationConfig(enabled=True, trigger_threshold=threshold),
        )

    def test_repeated_access_triggers_migration(self, topo3d):
        nuca = self._nuca(topo3d)
        plan = nuca.search.plan(0)
        remote = plan.step2[0]
        address = address_for_cluster(nuca, remote)
        nuca.access(0, address, cycle=0.0)
        outcome = nuca.access(0, address, cycle=10.0)
        assert outcome.migration is not None
        src, dst = outcome.migration
        assert src == remote and dst != remote

    def test_lazy_migration_keeps_old_location_visible(self, topo3d):
        nuca = self._nuca(topo3d)
        remote = nuca.search.plan(0).step2[0]
        address = address_for_cluster(nuca, remote)
        nuca.access(0, address, cycle=0.0)
        outcome = nuca.access(0, address, cycle=10.0)
        assert outcome.migration is not None
        # Before the transfer lands, the line is still found at the old
        # cluster (no false misses).
        assert nuca.location_of(address) == remote
        probe = nuca.access(0, address, cycle=10.5)
        assert probe.hit and probe.cluster == remote

    def test_migration_completes_after_transfer(self, topo3d):
        nuca = self._nuca(topo3d)
        remote = nuca.search.plan(0).step2[0]
        address = address_for_cluster(nuca, remote)
        nuca.access(0, address, cycle=0.0)
        outcome = nuca.access(0, address, cycle=10.0)
        __, target = outcome.migration
        late = nuca.access(0, address, cycle=10_000.0)
        assert late.hit and late.cluster == target
        assert nuca.location_of(address) == target

    def test_alternating_accessors_reset_credit(self, topo3d):
        nuca = self._nuca(topo3d, threshold=2)
        remote = nuca.search.plan(0).step2[0]
        address = address_for_cluster(nuca, remote)
        nuca.access(0, address, cycle=0.0)
        for cycle, cpu in ((1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4)):
            outcome = nuca.access(cpu, address, cycle=cycle)
            assert outcome.migration is None

    def test_migration_disabled(self, topo3d):
        nuca = NucaL2(topo3d, MigrationConfig(enabled=False))
        remote = nuca.search.plan(0).step2[0]
        address = address_for_cluster(nuca, remote)
        for cycle in range(10):
            outcome = nuca.access(0, address, cycle=float(cycle))
        assert outcome.migration is None
        assert nuca.migrations == 0

    def test_migration_swap_preserves_victim(self, topo3d):
        nuca = self._nuca(topo3d)
        remote = nuca.search.plan(0).step2[0]
        address = address_for_cluster(nuca, remote)
        nuca.access(0, address, cycle=0.0)
        outcome = nuca.access(0, address, cycle=1.0)
        __, target = outcome.migration
        # Fill the target set so the migrating line must swap.
        for way in range(16):
            tag = target + (way + 100) * 16
            nuca.access(1, nuca.addr_map.compose(tag, 0), cycle=2.0)
        before = nuca.lines_resident
        nuca.access(0, address, cycle=10_000.0)  # settles the move
        assert nuca.lines_resident == before
        assert nuca.location_of(address) == target

    def test_settle_all(self, topo3d):
        nuca = self._nuca(topo3d)
        remote = nuca.search.plan(0).step2[0]
        address = address_for_cluster(nuca, remote)
        nuca.access(0, address, cycle=0.0)
        nuca.access(0, address, cycle=1.0)
        settled = nuca.settle_all(cycle=10_000.0)
        assert settled == 1
        assert nuca.location_of(address) != remote

    def test_location_consistency_under_churn(self, topo3d):
        nuca = self._nuca(topo3d)
        addresses = [address_for_cluster(nuca, c, index=c) for c in range(16)]
        for step in range(50):
            cpu = step % 8
            address = addresses[step % len(addresses)]
            nuca.access(cpu, address, cycle=float(step * 3))
        for address in addresses:
            cluster = nuca.location_of(address)
            decoded = nuca.addr_map.decode(address)
            assert nuca.clusters[cluster].lookup(
                decoded.index, decoded.tag
            ) is not None


class TestMigrationPolicyTargets:
    def test_intra_layer_moves_closer(self, topo2d):
        nuca = NucaL2(topo2d)
        policy = nuca.migration
        cpu_cluster = topo2d.cpu_cluster(0)
        # Pick a far cluster on the same layer.
        far = max(
            topo2d.clusters,
            key=lambda c: abs(c.tile_x - cpu_cluster.tile_x)
            + abs(c.tile_y - cpu_cluster.tile_y),
        )
        target = policy.target_cluster(far.index, 0)
        assert target is not None
        target_cluster = topo2d.clusters[target]
        before = abs(far.tile_x - cpu_cluster.tile_x) + abs(
            far.tile_y - cpu_cluster.tile_y
        )
        after = abs(target_cluster.tile_x - cpu_cluster.tile_x) + abs(
            target_cluster.tile_y - cpu_cluster.tile_y
        )
        assert after < before

    def test_local_cluster_is_terminal(self, topo2d):
        policy = NucaL2(topo2d).migration
        local = topo2d.cpu_cluster(0)
        assert policy.target_cluster(local.index, 0) is None

    def test_skips_foreign_cpu_clusters(self, topo2d):
        policy = NucaL2(topo2d).migration
        for cluster in topo2d.clusters:
            target = policy.target_cluster(cluster.index, 0)
            if target is None:
                continue
            target_cluster = topo2d.clusters[target]
            assert all(c == 0 for c in target_cluster.cpus)

    def test_inter_layer_never_crosses_layers(self, topo3d):
        policy = NucaL2(topo3d).migration
        cpu_coord = topo3d.cpu_positions[0]
        other_layer = 1 - cpu_coord.z
        for cluster in topo3d.clusters:
            if cluster.layer != other_layer:
                continue
            target = policy.target_cluster(cluster.index, 0)
            if target is not None:
                assert topo3d.clusters[target].layer == other_layer

    def test_bankset_chains_restrict_axis(self, topo2d):
        nuca = NucaL2(
            topo2d, MigrationConfig(enabled=True, bankset_chains=True)
        )
        policy = nuca.migration
        cpu_cluster = topo2d.cpu_cluster(0)
        for cluster in topo2d.clusters:
            target = policy.target_cluster(cluster.index, 0)
            if target is None:
                continue
            assert topo2d.clusters[target].tile_y == cluster.tile_y

"""SimSpec identity, serialization, and seeding invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import QUICK, ExperimentScale
from repro.experiments.spec import SPEC_VERSION, SimSpec


def make_spec(**overrides) -> SimSpec:
    fields = dict(scheme=Scheme.CMP_DNUCA_3D, benchmark="art", scale=QUICK)
    fields.update(overrides)
    return SimSpec(**fields)


class TestRoundTrip:
    def test_to_from_dict_identity(self):
        spec = make_spec(layers=4, pillars=2, cache_mb=64, seed=7)
        assert SimSpec.from_dict(spec.to_dict()) == spec

    def test_version_mismatch_rejected(self):
        data = make_spec().to_dict()
        data["version"] = SPEC_VERSION + 1
        with pytest.raises(ValueError):
            SimSpec.from_dict(data)

    def test_make_fills_ambient_scale_and_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        spec = SimSpec.make(Scheme.CMP_DNUCA_2D, "swim")
        assert spec.scale == QUICK
        assert spec.seed == QUICK.seed


class TestHashing:
    def test_hash_is_stable_across_instances(self):
        assert make_spec().spec_hash() == make_spec().spec_hash()

    def test_every_field_changes_the_hash(self):
        base = make_spec()
        variants = [
            make_spec(scheme=Scheme.CMP_DNUCA_2D),
            make_spec(benchmark="swim"),
            make_spec(scale=ExperimentScale(name="t", refs_per_cpu=10)),
            make_spec(layers=4),
            make_spec(pillars=4),
            make_spec(cache_mb=32),
            make_spec(seed=1),
            make_spec(num_cpus=4),
            make_spec(fixed_floorplan=True),
        ]
        hashes = {spec.spec_hash() for spec in variants}
        assert base.spec_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_specs_usable_as_dict_keys(self):
        results = {make_spec(): 1, make_spec(benchmark="swim"): 2}
        assert results[make_spec()] == 1

    def test_mode_and_trace_defaults_leave_hash_unchanged(self):
        # ``mode``/``trace`` are omitted from to_dict() at their defaults,
        # so introducing them did not invalidate any cached artifact.
        data = make_spec().to_dict()
        assert "mode" not in data
        assert "trace" not in data

    def test_mode_and_trace_change_the_hash(self):
        from repro.sim.trace import TraceSpec

        base = make_spec()
        cycle = make_spec(mode="cycle")
        traced = make_spec(trace=TraceSpec())
        assert len({
            base.spec_hash(), cycle.spec_hash(), traced.spec_hash()
        }) == 3

    def test_traced_spec_round_trips(self):
        from repro.sim.trace import TraceSpec

        spec = make_spec(
            mode="cycle",
            trace=TraceSpec(
                format="jsonl", limit=123, component_filter="router.*"
            ),
        )
        assert SimSpec.from_dict(spec.to_dict()) == spec

    def test_sparse_threshold_default_leaves_hash_unchanged(self):
        data = make_spec().to_dict()
        assert "sparse_threshold" not in data
        assert make_spec().spec_hash() == make_spec(
            sparse_threshold=None
        ).spec_hash()

    def test_sparse_threshold_changes_hash_and_round_trips(self):
        base = make_spec(mode="cycle", fabric="vector")
        tuned = make_spec(mode="cycle", fabric="vector", sparse_threshold=8)
        assert tuned.spec_hash() != base.spec_hash()
        assert SimSpec.from_dict(tuned.to_dict()) == tuned
        assert tuned.to_dict()["sparse_threshold"] == 8


class TestAutoFabric:
    def test_auto_resolves_to_vector_for_cycle_mode(self):
        pytest.importorskip("numpy")
        spec = make_spec(mode="cycle", fabric="auto")
        assert spec.fabric == "vector"

    def test_auto_resolves_to_optimized_for_model_mode(self):
        spec = make_spec(fabric="auto")
        assert spec.fabric == "optimized"

    def test_auto_is_never_serialized(self):
        # Hash stability: the sentinel resolves at construction, so two
        # specs that resolve to the same concrete fabric are the *same*
        # cell — "auto" never reaches to_dict() or the cache key.
        pytest.importorskip("numpy")
        auto = make_spec(mode="cycle", fabric="auto")
        concrete = make_spec(mode="cycle", fabric="vector")
        assert auto == concrete
        assert auto.spec_hash() == concrete.spec_hash()
        assert "auto" not in auto.to_dict().values()


class TestSeeding:
    def test_cell_seed_pure_function_of_spec(self):
        assert make_spec().cell_seed() == make_spec().cell_seed()

    def test_schemes_share_the_workload(self):
        """Paired comparison: topology knobs must not perturb traces."""
        base = make_spec()
        for variant in (
            make_spec(scheme=Scheme.CMP_SNUCA_3D),
            make_spec(layers=4),
            make_spec(pillars=2),
            make_spec(cache_mb=64),
            make_spec(fixed_floorplan=True),
        ):
            assert variant.workload_hash() == base.workload_hash()
            assert variant.cell_seed() == base.cell_seed()

    def test_workload_identity_changes_the_seed(self):
        base = make_spec()
        for variant in (
            make_spec(benchmark="swim"),
            make_spec(seed=1),
            make_spec(num_cpus=4),
            make_spec(scale=ExperimentScale(name="t", refs_per_cpu=10)),
        ):
            assert variant.cell_seed() != base.cell_seed()


scales = st.builds(
    ExperimentScale,
    name=st.sampled_from(["quick", "full", "tiny"]),
    refs_per_cpu=st.integers(1, 10**6),
    warmup_fraction=st.floats(0.0, 1.0, allow_nan=False),
    seed=st.integers(0, 2**31),
)
specs = st.builds(
    SimSpec,
    scheme=st.sampled_from(list(Scheme)),
    benchmark=st.sampled_from(["art", "swim", "mgrid"]),
    scale=scales,
    layers=st.sampled_from([1, 2, 4]),
    pillars=st.sampled_from([2, 4, 8]),
    cache_mb=st.sampled_from([16, 32, 64]),
    seed=st.integers(0, 2**31),
    num_cpus=st.sampled_from([4, 8, 16]),
    fixed_floorplan=st.booleans(),
)


@settings(max_examples=50, deadline=None)
@given(spec=specs)
def test_property_spec_round_trip(spec):
    """Any spec survives to_dict/from_dict with its hash intact."""
    clone = SimSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.spec_hash() == spec.spec_hash()
    assert clone.cell_seed() == spec.cell_seed()


finite = st.floats(allow_nan=False, allow_infinity=False)


@settings(max_examples=50, deadline=None)
@given(
    scheme=st.sampled_from(list(Scheme)),
    hit_latency=finite,
    miss_latency=finite,
    hits=st.integers(0, 10**9),
    misses=st.integers(0, 10**9),
    migrations=st.integers(0, 10**6),
    ipc=finite,
    per_cpu_ipc=st.lists(finite, max_size=8),
    l1_miss_rate=finite,
    flit_hops=finite,
    bus_flits=finite,
    invalidations=st.integers(0, 10**9),
    instructions=finite,
    cycles=finite,
)
def test_property_run_stats_round_trip(
    scheme, hit_latency, miss_latency, hits, misses, migrations, ipc,
    per_cpu_ipc, l1_miss_rate, flit_hops, bus_flits, invalidations,
    instructions, cycles,
):
    """RunStats round-trips bit-exactly, including through JSON floats."""
    import json

    stats = RunStats(
        scheme=scheme,
        avg_l2_hit_latency=hit_latency,
        avg_l2_miss_latency=miss_latency,
        l2_hits=hits,
        l2_misses=misses,
        migrations=migrations,
        ipc=ipc,
        per_cpu_ipc=per_cpu_ipc,
        l1_miss_rate=l1_miss_rate,
        flit_hops=flit_hops,
        bus_flits=bus_flits,
        invalidations=invalidations,
        instructions=instructions,
        cycles=cycles,
    )
    direct = RunStats.from_dict(stats.to_dict())
    assert direct == stats
    through_json = RunStats.from_dict(
        json.loads(json.dumps(stats.to_dict()))
    )
    assert through_json == stats

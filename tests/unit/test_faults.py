"""Unit tests for the fault-injection subsystem.

Covers the declarative spec (round-trip, deterministic resolution, CLI
parsing), the arbiter's slot reclamation, the live fault state, the
liveness watchdog, and the NUCA bank-fault degradation mechanics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.cache.nuca import NucaL2
from repro.dtdma.arbiter import DynamicTDMAArbiter
from repro.faults.spec import (
    DEFAULT_WATCHDOG_WINDOW,
    FaultEvent,
    FaultSpec,
    mesh_link_targets,
    parse_fault_arg,
)
from repro.faults.state import FaultState
from repro.faults.watchdog import DeadlockError, LivenessWatchdog
from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import Coord, Port, fault_aware_route
from repro.sim.engine import SimulationStallError


# -- FaultEvent / FaultSpec ---------------------------------------------------


class TestFaultEvent:
    def test_validates_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("gremlin", (0, 0))

    def test_validates_target_arity(self):
        with pytest.raises(ValueError, match="must have 4 elements"):
            FaultEvent("link", (0, 0))
        with pytest.raises(ValueError, match="must have 2 elements"):
            FaultEvent("pillar", (0, 0, 0))

    def test_validates_port_name(self):
        with pytest.raises(ValueError, match="bad port"):
            FaultEvent("link", (0, 0, 0, "sideways"))

    def test_transient_needs_positive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent("pillar", (3, 3), duration=0)

    def test_heal_cycle(self):
        assert FaultEvent("pillar", (3, 3)).heal_cycle is None
        assert FaultEvent("pillar", (3, 3), onset=100, duration=50).heal_cycle == 150

    def test_round_trip_omits_defaults(self):
        event = FaultEvent("bank", (4, 7))
        data = event.to_dict()
        assert "onset" not in data and "duration" not in data
        assert FaultEvent.from_dict(data) == event


# Strategy for arbitrary-but-valid fault events.
_ports = st.sampled_from(["north", "south", "east", "west"])
_xy = st.tuples(st.integers(0, 15), st.integers(0, 7))
_events = st.one_of(
    st.builds(
        FaultEvent, st.just("pillar"), _xy,
        onset=st.integers(0, 5000),
        duration=st.one_of(st.none(), st.integers(1, 1000)),
    ),
    st.builds(
        FaultEvent, st.just("link"),
        st.tuples(st.integers(0, 15), st.integers(0, 7),
                  st.integers(0, 1), _ports),
        onset=st.integers(0, 5000),
        duration=st.one_of(st.none(), st.integers(1, 1000)),
    ),
    st.builds(
        FaultEvent, st.just("router_port"),
        st.tuples(st.integers(0, 15), st.integers(0, 7),
                  st.integers(0, 1), _ports),
        onset=st.integers(0, 5000),
    ),
    st.builds(FaultEvent, st.just("bank"),
              st.tuples(st.integers(0, 15), st.integers(0, 15))),
)


class TestFaultSpec:
    @settings(max_examples=50, deadline=None)
    @given(
        events=st.lists(_events, max_size=4),
        dead_pillars=st.integers(0, 3),
        dead_links=st.integers(0, 3),
        dead_banks=st.integers(0, 3),
        onset=st.integers(0, 10_000),
        watchdog=st.sampled_from([0, 500, DEFAULT_WATCHDOG_WINDOW]),
    )
    def test_round_trip(self, events, dead_pillars, dead_links, dead_banks,
                        onset, watchdog):
        spec = FaultSpec(
            events=tuple(events),
            dead_pillars=dead_pillars,
            dead_links=dead_links,
            dead_banks=dead_banks,
            onset=onset,
            watchdog_window=watchdog,
        )
        data = spec.to_dict()
        assert FaultSpec.from_dict(data) == spec
        # Serialized form is canonical: defaults never appear.
        if spec.is_zero and onset == 0 and watchdog == DEFAULT_WATCHDOG_WINDOW:
            assert data == {}

    def test_zero_spec_serializes_empty(self):
        assert FaultSpec().to_dict() == {}
        assert FaultSpec().is_zero

    def test_resolution_is_deterministic(self):
        spec = FaultSpec(dead_pillars=2, dead_links=3, dead_banks=2, onset=50)
        pillars = tuple((x, y) for x in range(4) for y in range(4))
        links = mesh_link_targets(8, 8, 2)
        banks = tuple((c, b) for c in range(16) for b in range(16))
        first = spec.resolve(123, pillars=pillars, links=links, banks=banks)
        second = spec.resolve(123, pillars=pillars, links=links, banks=banks)
        assert first == second
        assert len(first) == 7
        assert all(event.onset == 50 for event in first)
        # A different seed draws different targets.
        other = spec.resolve(124, pillars=pillars, links=links, banks=banks)
        assert other != first

    def test_resolution_excludes_explicit_targets(self):
        explicit = FaultEvent("pillar", (0, 0))
        spec = FaultSpec(events=(explicit,), dead_pillars=1)
        resolved = spec.resolve(1, pillars=((0, 0), (1, 1)))
        kinds = [(e.kind, e.target) for e in resolved]
        assert kinds.count(("pillar", (0, 0))) == 1
        assert ("pillar", (1, 1)) in kinds

    def test_overdraw_raises(self):
        with pytest.raises(ValueError, match="cannot draw"):
            FaultSpec(dead_pillars=3).resolve(1, pillars=((0, 0),))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(dead_pillars=-1)


class TestParseFaultArg:
    def test_basic_kinds(self):
        assert parse_fault_arg("pillar:3,3") == FaultEvent("pillar", (3, 3))
        assert parse_fault_arg("bank:4,7") == FaultEvent("bank", (4, 7))
        assert parse_fault_arg("link:2,1,0,east") == FaultEvent(
            "link", (2, 1, 0, "east")
        )

    def test_onset_and_duration(self):
        event = parse_fault_arg("router_port:1,1,0,north@500+2000")
        assert event == FaultEvent(
            "router_port", (1, 1, 0, "north"), onset=500, duration=2000
        )

    def test_bad_format_raises(self):
        with pytest.raises(ValueError, match="expected kind:target"):
            parse_fault_arg("pillar")
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_arg("wire:1,2")


# -- arbiter slot reclamation -------------------------------------------------


class TestArbiterRemoveClient:
    def test_remove_shrinks_frame(self):
        arbiter = DynamicTDMAArbiter(["a", "b", "c"])
        arbiter.remove_client("b")
        assert arbiter.clients == ["a", "c"]
        grants = [arbiter.grant({"a", "c"}) for __ in range(4)]
        assert grants == ["a", "c", "a", "c"]

    def test_removed_client_rejected_from_active_set(self):
        arbiter = DynamicTDMAArbiter(["a", "b"])
        arbiter.remove_client("a")
        with pytest.raises(ValueError, match="unregistered"):
            arbiter.grant({"a", "b"})

    def test_priority_passes_to_circular_successor(self):
        arbiter = DynamicTDMAArbiter(["a", "b", "c"])
        assert arbiter.grant({"a", "b", "c"}) == "a"
        # "a" holds priority; removing it must hand priority to "b".
        arbiter.remove_client("a")
        assert arbiter.grant({"b", "c"}) == "b"
        assert arbiter.grant({"b", "c"}) == "c"

    def test_remove_unknown_raises(self):
        arbiter = DynamicTDMAArbiter(["a"])
        with pytest.raises(ValueError, match="unknown client"):
            arbiter.remove_client("z")

    def test_remove_all_clients_allowed(self):
        arbiter = DynamicTDMAArbiter(["a", "b"])
        arbiter.remove_client("a")
        arbiter.remove_client("b")
        assert arbiter.grant(set()) is None

    def test_readd_after_remove(self):
        arbiter = DynamicTDMAArbiter(["a", "b"])
        arbiter.remove_client("a")
        arbiter.add_client("a")
        seen = {arbiter.grant({"a", "b"}) for __ in range(4)}
        assert seen == {"a", "b"}

    def test_utilization_counters_consistent_across_removal(self):
        arbiter = DynamicTDMAArbiter(["a", "b"])
        arbiter.grant({"a"})
        arbiter.grant(set())
        granted, idle = arbiter.utilization_samples
        arbiter.remove_client("a")
        assert arbiter.utilization_samples == (granted, idle)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_round_robin_fair_after_any_removal(self, data):
        clients = list(range(6))
        arbiter = DynamicTDMAArbiter(clients)
        # Grant a few times, remove a random client, then check fairness.
        for __ in range(data.draw(st.integers(0, 6))):
            arbiter.grant(set(clients))
        victim = data.draw(st.sampled_from(clients))
        arbiter.remove_client(victim)
        survivors = [c for c in clients if c != victim]
        grants = [arbiter.grant(set(survivors)) for __ in range(2 * len(survivors))]
        assert all(grants.count(c) == 2 for c in survivors)


# -- FaultState ---------------------------------------------------------------


class TestFaultState:
    def test_mutations_are_idempotent(self):
        state = FaultState()
        state.fail_pillar((3, 3))
        state.fail_pillar((3, 3))
        assert state.epoch == 1
        state.heal_pillar((3, 3))
        state.heal_pillar((3, 3))
        assert state.epoch == 2
        assert not state.dead_pillars

    def test_listeners_notified(self):
        state = FaultState()
        seen = []
        state.add_listener(lambda kind, target, phase: seen.append((kind, phase)))
        state.fail_link(Coord(1, 2, 0), Port.EAST)
        state.heal_link(Coord(1, 2, 0), Port.EAST)
        assert seen == [("link", "inject"), ("link", "heal")]

    def test_packet_loss_counted_once(self):
        state = FaultState()

        class FakePacket:
            lost = False

        packet = FakePacket()
        drained = []
        state.on_packet_lost = drained.append
        state.packet_lost(packet)
        state.packet_lost(packet)
        assert packet.lost
        assert len(drained) == 1
        assert state.summary()["packets_lost"] == 1

    def test_mesh_faulty_only_for_link_faults(self):
        state = FaultState()
        state.fail_pillar((3, 3))
        assert not state.mesh_faulty
        state.fail_link(Coord(0, 0, 0), Port.EAST)
        assert state.mesh_faulty


# -- fault-aware routing ------------------------------------------------------


class TestFaultAwareRoute:
    def test_matches_dimension_order_when_clear(self):
        route = fault_aware_route(
            Coord(0, 0, 0), Coord(3, 2, 0), None, frozenset()
        )
        assert route == Port.EAST

    def test_misroutes_around_dead_productive_link(self):
        dead = frozenset({(Coord(0, 0, 0), Port.EAST)})
        route = fault_aware_route(Coord(0, 0, 0), Coord(3, 2, 0), None, dead)
        assert route == Port.NORTH  # the other productive dimension

    def test_unreachable_when_both_productive_ports_dead(self):
        dead = frozenset({
            (Coord(0, 0, 0), Port.EAST),
            (Coord(0, 0, 0), Port.NORTH),
        })
        assert fault_aware_route(Coord(0, 0, 0), Coord(3, 2, 0), None, dead) is None

    def test_single_dimension_dest_has_no_detour(self):
        # Same row: the only productive port is EAST; if dead -> None.
        dead = frozenset({(Coord(0, 0, 0), Port.EAST)})
        assert fault_aware_route(Coord(0, 0, 0), Coord(3, 0, 0), None, dead) is None


# -- liveness watchdog --------------------------------------------------------


def _network(width=4, height=4, layers=2, pillars=((1, 1), (2, 2))):
    return Network(NetworkConfig(
        width=width, height=height, layers=layers, pillar_locations=pillars
    ))


class TestLivenessWatchdog:
    def test_quiet_network_never_fires(self):
        network = _network()
        watchdog = LivenessWatchdog(network, window=50)
        for __ in range(300):
            network.engine.step()
        assert watchdog.checks >= 5

    def test_moving_traffic_does_not_fire(self):
        network = _network()
        LivenessWatchdog(network, window=20)
        network.send(Coord(0, 0, 0), Coord(3, 3, 1))
        network.engine.run_until(lambda: network.in_flight == 0,
                                 max_cycles=10_000)

    def test_detects_seeded_stall(self):
        network = _network()
        state = FaultState()
        network.attach_fault_state(state)
        watchdog = LivenessWatchdog(network, window=100)
        # Jam the only productive port for this flow: hard stall.
        state.jam_port(Coord(1, 0, 0), Port.EAST)
        network.send(Coord(0, 0, 0), Coord(3, 0, 0))
        with pytest.raises(DeadlockError) as excinfo:
            for __ in range(1000):
                network.engine.step()
        error = excinfo.value
        assert error.failure_kind == "deadlock"
        assert isinstance(error, SimulationStallError)
        assert any("router(" in name for name in error.stalled_components)
        assert error.in_flight == 1
        assert watchdog.checks >= 1

    def test_fast_forwarded_windows_count_as_progress(self):
        """Idle fast-forward across a watched window is not a deadlock.

        In-flight accounting held *above* the fabric — a cycle-mode
        requester waiting out an idle gap between transaction legs —
        leaves ``network.in_flight > 0`` while every component is
        genuinely quiescent.  The engine fast-forwards such windows, and
        the watchdog must read the skipped cycles as progress instead of
        raising.  (A real deadlock never fast-forwards: a component
        holding buffered flits does not report idle.)
        """
        network = _network()
        vector = Network(
            NetworkConfig(
                width=4, height=4, layers=2,
                pillar_locations=((1, 1), (2, 2)),
            ),
            fabric="vector",
        )
        for net in (network, vector):
            watchdog = LivenessWatchdog(net, window=20)
            net._in_flight = 1  # accounting held above a quiescent fabric
            net.engine.run(500)
            assert watchdog.checks >= 5
            assert net.engine.fast_forwarded_cycles > 0

    def test_watched_bursty_run_still_fast_forwards(self):
        """The watchdog chunks — but never blocks — idle fast-forward."""
        network = _network()
        LivenessWatchdog(network, window=25)
        network.send(Coord(0, 0, 0), Coord(3, 3, 1))
        network.engine.run(300)
        assert network.in_flight == 0
        assert network.engine.fast_forwarded_cycles > 0

    def test_cancel_stops_checking(self):
        network = _network()
        watchdog = LivenessWatchdog(network, window=10)
        watchdog.cancel()
        for __ in range(100):
            network.engine.step()
        assert watchdog.checks == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="positive"):
            LivenessWatchdog(_network(), window=0)


# -- NUCA bank faults ---------------------------------------------------------


@pytest.fixture()
def nuca():
    return NucaL2(build_topology(ChipConfig()))


def _attach(nuca):
    state = FaultState(stats=nuca.stats)
    nuca.attach_fault_state(state)
    return state


class TestBankFaults:
    def test_dead_bank_remaps_to_alive_neighbor(self, nuca):
        state = _attach(nuca)
        state.fail_bank((0, 0))
        decoded = None
        for address in range(0, 1 << 24, 64):
            candidate = nuca.addr_map.decode(address)
            if candidate.home_cluster == 0 and candidate.bank == 0:
                decoded = candidate
                break
        cluster = nuca.topology.clusters[0]
        assert nuca.bank_node(0, decoded) == cluster.bank_nodes[1]
        assert nuca.stats.scope("faults").counter("bank_remapped").value == 1

    def test_capacity_degrades_proportionally(self, nuca):
        state = _attach(nuca)
        banks = len(nuca.topology.clusters[0].bank_nodes)
        for bank in range(banks // 2):
            state.fail_bank((0, bank))
        nuca.apply_bank_faults()
        store = nuca.clusters[0]
        assert store.effective_ways == store.ways // 2
        # Other clusters keep full capacity.
        assert nuca.clusters[1].effective_ways == nuca.clusters[1].ways

    def test_shrink_evicts_displaced_lines(self, nuca):
        state = _attach(nuca)
        # Fill one set of cluster 0 completely.
        store = nuca.clusters[0]
        addresses = []
        for address in range(0, 1 << 26, 64):
            decoded = nuca.addr_map.decode(address)
            if decoded.home_cluster == 0 and decoded.index == 0:
                addresses.append(address)
                if len(addresses) == store.ways:
                    break
        for address in addresses:
            nuca.access(0, address)
        assert store.free_ways(0) == 0
        banks = len(nuca.topology.clusters[0].bank_nodes)
        for bank in range(banks // 2):
            state.fail_bank((0, bank))
        lost = nuca.apply_bank_faults()
        assert lost == store.ways - store.effective_ways
        assert nuca.stats.scope("faults").counter("bank_lines_lost").value == lost
        # Displaced lines are gone from the location map: re-access misses.
        hits_before = nuca.stats.scope("l2").counter("hits").value
        nuca.access(0, addresses[-1])
        assert nuca.stats.scope("l2").counter("hits").value == hits_before

    def test_degraded_insert_respects_effective_ways(self, nuca):
        state = _attach(nuca)
        banks = len(nuca.topology.clusters[0].bank_nodes)
        for bank in range(banks // 2):
            state.fail_bank((0, bank))
        nuca.apply_bank_faults()
        store = nuca.clusters[0]
        filled = 0
        for address in range(0, 1 << 26, 64):
            decoded = nuca.addr_map.decode(address)
            if decoded.home_cluster == 0 and decoded.index == 0:
                nuca.access(0, address)
                filled += 1
                if filled == store.ways:
                    break
        occupied = sum(
            1 for entry in store._sets[0] if entry is not None
        )
        assert occupied == store.effective_ways

    def test_heal_restores_capacity(self, nuca):
        state = _attach(nuca)
        state.fail_bank((0, 0))
        nuca.apply_bank_faults()
        assert nuca.clusters[0].effective_ways < nuca.clusters[0].ways
        state.heal_bank((0, 0))
        nuca.apply_bank_faults()
        assert nuca.clusters[0].effective_ways == nuca.clusters[0].ways

    def test_all_banks_dead_rejected(self, nuca):
        state = _attach(nuca)
        banks = len(nuca.topology.clusters[0].bank_nodes)
        for bank in range(banks):
            state.fail_bank((0, bank))
        with pytest.raises(ValueError, match="unservable"):
            nuca.apply_bank_faults()

"""Property-based tests for the cycle-accurate network fabric."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import Coord, route_hop_count, best_pillar

PILLARS = ((1, 1), (2, 2))


def make_network():
    return Network(
        NetworkConfig(width=4, height=4, layers=2, pillar_locations=PILLARS)
    )


coords = st.tuples(
    st.integers(0, 3), st.integers(0, 3), st.integers(0, 1)
).map(lambda t: Coord(*t))


@settings(max_examples=25, deadline=None)
@given(pairs=st.lists(st.tuples(coords, coords), min_size=1, max_size=8))
def test_every_packet_is_delivered(pairs):
    """Any batch of packets is fully delivered and the fabric drains."""
    network = make_network()
    packets = []
    for src, dest in pairs:
        if src != dest:
            packets.append(network.send(src, dest))
    network.quiesce(max_cycles=50_000)
    assert network.in_flight == 0
    for packet in packets:
        assert packet.ejected_cycle is not None


@settings(max_examples=25, deadline=None)
@given(src=coords, dest=coords, flits=st.integers(1, 8))
def test_latency_at_least_zero_load(src, dest, flits):
    """A lone packet's latency equals hops*link + serialization + inject."""
    if src == dest:
        return
    network = make_network()
    cfg = network.config
    packet = network.send(src, dest, size_flits=flits)
    network.quiesce(max_cycles=50_000)
    pillar = packet.pillar_xy
    hops = route_hop_count(src, dest, pillar)
    if pillar is not None:
        hops -= 1  # the bus hop is charged separately
    floor = cfg.link_latency * hops + (flits - 1) + 1
    assert packet.latency >= floor
    # A lone packet also has no contention: small bounded overhead.
    assert packet.latency <= floor + 6


@settings(max_examples=15, deadline=None)
@given(
    seeds=st.integers(0, 2**16),
    count=st.integers(2, 12),
)
def test_under_load_latency_never_below_zero_load(seeds, count):
    import random

    rng = random.Random(seeds)
    network = make_network()
    cfg = network.config
    packets = []
    nodes = list(network.coords())
    for __ in range(count):
        src, dest = rng.sample(nodes, 2)
        packets.append(network.send(src, dest))
    network.quiesce(max_cycles=100_000)
    for packet in packets:
        hops = route_hop_count(packet.src, packet.dest, packet.pillar_xy)
        if packet.pillar_xy is not None:
            hops -= 1
        floor = cfg.link_latency * hops + (packet.size_flits - 1) + 1
        assert packet.latency >= floor


@settings(max_examples=50, deadline=None)
@given(src=coords, dest=coords)
def test_best_pillar_minimizes_detour(src, dest):
    pillars = list(PILLARS)
    chosen = best_pillar(src, dest, pillars)
    chosen_cost = (
        abs(src.x - chosen[0]) + abs(src.y - chosen[1])
        + abs(dest.x - chosen[0]) + abs(dest.y - chosen[1])
    )
    for px, py in pillars:
        other = (
            abs(src.x - px) + abs(src.y - py)
            + abs(dest.x - px) + abs(dest.y - py)
        )
        assert chosen_cost <= other


# -- vector fabric vs object fabric on random small meshes ----------------

mesh_dims = st.tuples(
    st.integers(2, 4),   # width
    st.integers(2, 4),   # height
    st.integers(1, 2),   # layers
)


@settings(max_examples=20, deadline=None)
@given(
    dims=mesh_dims,
    seed=st.integers(0, 2**16),
    count=st.integers(1, 15),
)
def test_vector_delivers_same_count_as_optimized(dims, seed, count):
    """Identical sends on a random mesh: both fabrics deliver everything.

    The vector fabric's arbitration order differs, so per-packet timing
    may diverge — but after a quiesce the delivered count must match the
    object fabric exactly and nothing may remain in flight.
    """
    import random

    pytest.importorskip("numpy")
    width, height, layers = dims
    pillar = (width // 2, height // 2)
    delivered = {}
    for fabric in ("optimized", "vector"):
        rng = random.Random(seed)
        network = Network(
            NetworkConfig(
                width=width, height=height, layers=layers,
                pillar_locations=(pillar,),
            ),
            fabric=fabric,
        )
        nodes = list(network.coords())
        sent = 0
        for __ in range(count):
            src, dest = rng.sample(nodes, 2)
            network.send(src, dest)
            sent += 1
        network.quiesce(max_cycles=200_000)
        assert network.in_flight == 0
        assert network.delivered_fraction() == 1.0
        received = (
            network.stats.scope("nic").counter("packets_received").value
        )
        delivered[fabric] = (sent, received)
    assert delivered["vector"] == delivered["optimized"]
    sent, received = delivered["vector"]
    assert received == sent

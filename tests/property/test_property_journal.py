"""Property-based tests: journal replay is idempotent.

For any journaled workload (random jobs, lease grants, pushes, failures,
and releases), recovery must be a pure function of the journal plus the
artifact cache:

* recovering twice yields exactly the same JobStore state and totals as
  recovering once;
* duplicating any suffix of records changes nothing (append retries and
  crash-replays are harmless);
* a torn tail changes nothing but the dropped bytes;
* compacting and then recovering yields the same state as recovering
  the uncompacted journal.

"State" is a deep fingerprint: every cell's (state, origin, failure
kind, worker), the queued backlog, open leases with their tokens and
retry budgets, and the cumulative ``/stats`` totals.
"""

import asyncio
import os
import shutil
import tempfile
import warnings

from hypothesis import given, settings, strategies as st

from repro.serve.journal import JOURNAL_NAME, Journal
from repro.serve.scheduler import JobStore
from tests.unit.test_serve_scheduler import make_spec, outcome_for

BENCHMARKS = ("art", "swim", "mgrid", "applu", "apsi", "galgel")


def run(coro):
    return asyncio.run(coro)


#: Counters that describe the *recovery pass itself* rather than the
#: workload; compaction legitimately changes them (fewer records to
#: replay), so the compaction property compares totals without them.
RECOVERY_COUNTERS = (
    "jobs_recovered", "cells_requeued_on_recovery", "leases_restored"
)


def fingerprint(store: JobStore, open_state_only: bool = False) -> tuple:
    jobs = {}
    for job_id, job in store._jobs.items():
        if open_state_only and job.is_done:
            continue  # compaction forgets done jobs (cache serves them)
        jobs[job_id] = (
            job.tenant,
            job.is_done,
            tuple(
                (
                    cell.spec_hash,
                    cell.state,
                    cell.origin,
                    (cell.error or {}).get("kind"),
                    cell.worker,
                )
                for cell in job.cells
            ),
        )
    leases = {
        lease_id: (lease.token, lease.worker_id,
                   tuple(sorted(lease.entries)))
        for lease_id, lease in store._leases.items()
    }
    queued = tuple(sorted(
        entry.spec_hash
        for queue in store._queues.values()
        for entry in queue
    ))
    attempts = {
        spec_hash: entry.worker_attempts
        for spec_hash, entry in store._inflight.items()
    }
    totals = {
        key: (dict(value) if isinstance(value, dict) else value)
        for key, value in store.totals.items()
        if not (open_state_only and key in RECOVERY_COUNTERS)
    }
    return jobs, leases, queued, attempts, totals


async def build_workload(cache_dir: str, plan: dict) -> None:
    """Drive a real store through the drawn plan, then drop it."""
    store = JobStore(
        workers=0, use_cache=True, cache_dir=cache_dir, lease_ttl_s=60.0
    )
    await store.start()
    try:
        for benchmarks in plan["jobs"]:
            await store.submit(
                [make_spec(benchmark=name) for name in benchmarks],
                tenant=plan["tenant"],
            )
        for action, max_cells in plan["grants"]:
            lease = store.grant_lease("w1", max_cells=max_cells)
            if lease is None:
                continue
            if action == "push_ok":
                outcomes = [
                    outcome_for(entry.spec)
                    for entry in lease.entries.values()
                ]
                store.push_results(
                    lease.lease_id, lease.token, outcomes, worker_id="w1"
                )
            elif action == "push_fail":
                outcomes = [
                    outcome_for(entry.spec, error={
                        "kind": "worker_crash",
                        "message": "chaos",
                        "attempts": 1,
                    })
                    for entry in lease.entries.values()
                ]
                store.push_results(
                    lease.lease_id, lease.token, outcomes, worker_id="w1"
                )
            elif action == "release":
                store.release_cells(lease.lease_id, lease.token)
            # "abandon": leave the lease open (a wedged worker)
    finally:
        await store.close()


async def recover_fingerprint(
    cache_dir: str,
    recoveries: int = 1,
    compact_between: bool = False,
    open_state_only: bool = False,
) -> tuple:
    store = JobStore(
        workers=0, use_cache=True, cache_dir=cache_dir, lease_ttl_s=60.0
    )
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # torn tails
            for __ in range(recoveries):
                store.recover()
                if compact_between:
                    store.compact_journal()
        return fingerprint(store, open_state_only=open_state_only)
    finally:
        await store.close()


workload = st.fixed_dictionaries({
    "tenant": st.sampled_from(["a", "b"]),
    "jobs": st.lists(
        st.lists(
            st.sampled_from(BENCHMARKS), min_size=1, max_size=3, unique=True
        ),
        min_size=1,
        max_size=3,
    ),
    "grants": st.lists(
        st.tuples(
            st.sampled_from(["push_ok", "push_fail", "release", "abandon"]),
            st.integers(min_value=1, max_value=3),
        ),
        max_size=4,
    ),
})


@settings(max_examples=25, deadline=None)
@given(plan=workload, data=st.data())
def test_replay_is_idempotent(plan, data):
    with tempfile.TemporaryDirectory() as root:
        cache_dir = os.path.join(root, "cache")
        run(build_workload(cache_dir, plan))
        journal_file = os.path.join(cache_dir, JOURNAL_NAME)
        records = Journal(journal_file).load()

        baseline = run(recover_fingerprint(cache_dir))

        # 1. Recovering twice == recovering once.
        assert run(recover_fingerprint(cache_dir, recoveries=2)) == baseline

        # 2. Duplicated records change nothing.
        if records:
            start = data.draw(
                st.integers(0, len(records) - 1), label="dup_start"
            )
            dup_dir = os.path.join(root, "dup")
            shutil.copytree(cache_dir, dup_dir)
            Journal(os.path.join(dup_dir, JOURNAL_NAME)).append(
                *records[start:]
            )
            assert run(recover_fingerprint(dup_dir)) == baseline

        # 3. A torn tail is truncated, never applied.
        torn_dir = os.path.join(root, "torn")
        shutil.copytree(cache_dir, torn_dir)
        with open(os.path.join(torn_dir, JOURNAL_NAME), "ab") as handle:
            handle.write(b'{"rec": "resolve", "ok": true, "cel')
        assert run(recover_fingerprint(torn_dir)) == baseline

        # 4. Compaction preserves all open state and cumulative totals
        # (done jobs are deliberately forgotten — the cache serves them).
        compact_dir = os.path.join(root, "compact")
        shutil.copytree(cache_dir, compact_dir)
        open_baseline = run(
            recover_fingerprint(cache_dir, open_state_only=True)
        )
        assert run(
            recover_fingerprint(
                compact_dir,
                recoveries=2,
                compact_between=True,
                open_state_only=True,
            )
        ) == open_baseline

"""Property: the vector fabric's sparse scalar path equals the batched path.

The occupancy-adaptive advance picks between two implementations of the
same cycle — a scalar per-flit walk below ``sparse_threshold`` occupied
lanes, the batched numpy arbitration above it.  The switch must be
invisible: for any mesh and any traffic pattern, pinning the threshold
to "never" (0) and "always" (huge) must produce bit-identical runs.
Bursty ON/idle phases exercise the regime transitions (burst -> dense,
idle tail -> sparse -> empty) where staging or membership bugs would
surface as divergent deliveries or latencies.
"""

from __future__ import annotations

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.noc.network import Network, NetworkConfig

np = pytest.importorskip("numpy")

PILLARS = ((1, 1), (2, 2))

# (on_cycles, idle_cycles, injection rate during the ON phase)
phases = st.lists(
    st.tuples(
        st.integers(1, 25), st.integers(0, 25),
        st.sampled_from([0.02, 0.1, 0.4]),
    ),
    min_size=1,
    max_size=4,
)


def _run(width, height, layers, schedule, seed, threshold):
    config = NetworkConfig(
        width=width, height=height, layers=layers, pillar_locations=PILLARS
    )
    config.sparse_threshold = threshold
    network = Network(config, fabric="vector")
    rng = random.Random(seed)
    coords = list(network.coords())
    sent = 0
    for on_cycles, idle_cycles, rate in schedule:
        for __ in range(on_cycles):
            for src in coords:
                if rng.random() < rate:
                    dest = coords[rng.randrange(len(coords))]
                    if dest != src:
                        network.send(src, dest)
                        sent += 1
            network.engine.step()
        for __ in range(idle_cycles):
            network.engine.step()
    network.quiesce(max_cycles=500_000)
    vector = network.vector_fabric
    assert vector.check_invariants() == []
    assert np.array_equal(
        vector.occupied_lanes(), np.flatnonzero(vector._buf_cnt)
    )
    stats = network.stats.scope("nic")
    return (
        sent,
        network.completed_packets,
        network.engine.cycle,
        stats.counter("packets_received").value,
        stats.histogram("packet_latency").mean,
        network.delivered_fraction(),
    )


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(3, 5),
    height=st.integers(3, 4),
    layers=st.integers(1, 2),
    schedule=phases,
    seed=st.integers(0, 2**16),
)
def test_sparse_path_equals_batched_path(width, height, layers, schedule,
                                         seed):
    scalar = _run(width, height, layers, schedule, seed, threshold=10**9)
    batched = _run(width, height, layers, schedule, seed, threshold=0)
    assert scalar == batched

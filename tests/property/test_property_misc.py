"""Property-based tests: placement, thermal conservation, arbiter, stats."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.chip import ChipConfig
from repro.core.placement import PlacementPolicy, build_topology
from repro.dtdma.arbiter import DynamicTDMAArbiter
from repro.sim.stats import Histogram
from repro.sim.rng import make_rng
from repro.thermal.floorplan import build_floorplan
from repro.thermal.grid import ThermalGrid
from repro.thermal.power import ThermalParams


@settings(max_examples=20, deadline=None)
@given(
    layers=st.sampled_from([2, 4]),
    pillars=st.sampled_from([2, 4, 8]),
    policy=st.sampled_from(
        [PlacementPolicy.MAXIMAL_OFFSET, PlacementPolicy.ALGORITHM1,
         PlacementPolicy.STACKED]
    ),
    k=st.integers(1, 2),
)
def test_placement_always_legal(layers, pillars, policy, k):
    """Any supported (layers, pillars, policy) combination yields a legal
    placement: CPUs on-chip, no collisions, pillars intact."""
    config = ChipConfig(num_layers=layers, num_pillars=pillars)
    if policy == PlacementPolicy.MAXIMAL_OFFSET and pillars < config.num_cpus:
        return  # this policy requires one pillar per CPU
    if policy == PlacementPolicy.ALGORITHM1 and config.num_cpus % pillars:
        return
    if policy == PlacementPolicy.STACKED and pillars * layers < config.num_cpus:
        return  # not enough pillar columns to stack every CPU
    topology = build_topology(config, policy, k=k)
    width, height = config.mesh_dims
    seen = set()
    for coord in topology.cpu_positions.values():
        assert 0 <= coord.x < width and 0 <= coord.y < height
        assert 0 <= coord.z < layers
        assert coord not in seen
        seen.add(coord)
    assert len(topology.cpu_positions) == config.num_cpus


@settings(max_examples=10, deadline=None)
@given(
    layers=st.sampled_from([1, 2, 4]),
    policy_seed=st.integers(0, 3),
)
def test_thermal_energy_conservation(layers, policy_seed):
    """All dissipated power exits through the heat sink, whatever the
    configuration."""
    if layers == 1:
        config = ChipConfig(num_layers=1, num_pillars=0)
        policy = PlacementPolicy.CENTER_2D
    else:
        config = ChipConfig(num_layers=layers, num_pillars=8)
        policy = (
            PlacementPolicy.MAXIMAL_OFFSET
            if policy_seed % 2 == 0
            else PlacementPolicy.STACKED
        )
    topology = build_topology(config, policy)
    params = ThermalParams()
    floorplan = build_floorplan(topology)
    grid = ThermalGrid(floorplan, params)
    field = grid.solve()
    sink_heat = params.g_sink * (field[0] - params.ambient_c).sum()
    assert np.isclose(sink_heat, floorplan.total_power, rtol=1e-6)
    assert (field >= params.ambient_c - 1e-9).all()


@settings(max_examples=30, deadline=None)
@given(
    active_sets=st.lists(
        st.sets(st.integers(0, 7), max_size=8), min_size=1, max_size=60
    )
)
def test_arbiter_fair_and_work_conserving(active_sets):
    """The dTDMA arbiter always grants an active client, and over any
    window no active-throughout client is starved by more than the frame
    structure allows."""
    arbiter = DynamicTDMAArbiter(list(range(8)))
    grants = []
    for active in active_sets:
        grant = arbiter.grant(active)
        if active:
            assert grant in active
        else:
            assert grant is None
        grants.append(grant)
    always_active = set.intersection(*map(set, active_sets)) if active_sets else set()
    if always_active and len(active_sets) >= 16:
        for client in always_active:
            assert grants.count(client) >= len(active_sets) // 16


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
def test_histogram_mean_exact(values):
    hist = Histogram("h")
    hist.extend(values)
    assert hist.count == len(values)
    assert hist.mean == np.mean(values) or np.isclose(
        hist.mean, np.mean(values)
    )
    assert hist.min_value == min(values)
    assert hist.max_value == max(values)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_rng_streams_deterministic_and_distinct(seed):
    a1 = make_rng(seed, "alpha").integers(0, 1 << 30, 8)
    a2 = make_rng(seed, "alpha").integers(0, 1 << 30, 8)
    b = make_rng(seed, "beta").integers(0, 1 << 30, 8)
    assert (a1 == a2).all()
    assert not (a1 == b).all()

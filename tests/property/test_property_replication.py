"""Property-based invariants for the replication extension."""

from hypothesis import given, settings, strategies as st

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.cache.nuca import AccessType
from repro.cache.replication import ReplicatingNucaL2

addresses = st.integers(0, 1 << 20).map(lambda a: a * 64)
accesses = st.lists(
    st.tuples(
        st.integers(0, 7),
        addresses,
        st.sampled_from([AccessType.READ, AccessType.WRITE]),
    ),
    min_size=1,
    max_size=250,
)


def fresh():
    return ReplicatingNucaL2(build_topology(ChipConfig()))


@settings(max_examples=15, deadline=None)
@given(sequence=accesses)
def test_replica_map_consistent_with_stores(sequence):
    """Every mapped replica is resident in its cluster; primaries stay in
    the location map; replicas never appear in it."""
    nuca = fresh()
    for step, (cpu, address, op) in enumerate(sequence):
        nuca.access(cpu, address, op, cycle=float(step * 9))
    for line, clusters in nuca._replicas.items():
        decoded = nuca.addr_map.decode(line << nuca.addr_map.offset_bits)
        for cluster_index in clusters:
            found = nuca.clusters[cluster_index].lookup(
                decoded.index, decoded.tag
            )
            assert found is not None
            assert found[1].is_replica
    # Primary invariant unchanged by replication.
    for line, cluster_index in nuca._location.items():
        decoded = nuca.addr_map.decode(line << nuca.addr_map.offset_bits)
        found = nuca.clusters[cluster_index].lookup(
            decoded.index, decoded.tag
        )
        assert found is not None
        assert not found[1].is_replica


@settings(max_examples=15, deadline=None)
@given(sequence=accesses)
def test_write_leaves_no_replicas_of_written_line(sequence):
    nuca = fresh()
    cycle = 0.0
    for cpu, address, op in sequence:
        nuca.access(cpu, address, op, cycle=cycle)
        if op == AccessType.WRITE:
            assert nuca.replicas_of(address) == frozenset()
        cycle += 9.0


@settings(max_examples=15, deadline=None)
@given(sequence=accesses)
def test_reads_always_hit_after_first_touch(sequence):
    """Replication must never introduce false misses."""
    nuca = fresh()
    cycle = 0.0
    for cpu, address, op in sequence:
        nuca.access(cpu, address, op, cycle=cycle)
        outcome = nuca.access(cpu, address, AccessType.READ, cycle + 1.0)
        assert outcome.hit
        cycle += 9.0

"""Property-based tests for NUCA cache invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.cache.nuca import NucaL2, AccessType
from repro.cache.migration import MigrationConfig
from repro.cache.addressing import AddressMap
from repro.cache.replacement import TreePLRU


def fresh_nuca(threshold=1):
    topology = build_topology(ChipConfig())
    return NucaL2(
        topology, MigrationConfig(enabled=True, trigger_threshold=threshold)
    )


# Addresses biased into a small region so sets conflict and migrations,
# swaps and evictions all get exercised.
addresses = st.integers(0, 1 << 22).map(lambda a: a * 8)
accesses = st.lists(
    st.tuples(
        st.integers(0, 7),                      # cpu
        addresses,
        st.sampled_from(list(AccessType)),
    ),
    min_size=1,
    max_size=300,
)


@settings(max_examples=20, deadline=None)
@given(sequence=accesses)
def test_location_map_matches_cluster_stores(sequence):
    """After any access sequence, the location map and the per-cluster
    stores agree exactly (no lost or duplicated lines)."""
    nuca = fresh_nuca()
    for step, (cpu, address, op) in enumerate(sequence):
        nuca.access(cpu, address, op, cycle=float(step * 7))
    # Every mapped line is present in exactly the mapped cluster.
    for line, cluster_index in nuca._location.items():
        decoded = nuca.addr_map.decode(line << nuca.addr_map.offset_bits)
        assert nuca.clusters[cluster_index].lookup(
            decoded.index, decoded.tag
        ) is not None
    # Every stored line is mapped.
    stored = sum(
        1 for store in nuca.clusters for __ in store.entries()
    )
    assert stored == len(nuca._location)


@settings(max_examples=20, deadline=None)
@given(sequence=accesses)
def test_accesses_partition_into_hits_and_misses(sequence):
    nuca = fresh_nuca()
    for step, (cpu, address, op) in enumerate(sequence):
        nuca.access(cpu, address, op, cycle=float(step * 7))
    hits = nuca.stats.counter("l2.hits").value
    misses = nuca.stats.counter("l2.misses").value
    assert hits + misses == len(sequence)
    step1 = nuca.stats.counter("l2.hits_step1").value
    step2 = nuca.stats.counter("l2.hits_step2").value
    assert step1 + step2 == hits


@settings(max_examples=20, deadline=None)
@given(sequence=accesses)
def test_settle_all_clears_transit(sequence):
    nuca = fresh_nuca()
    for step, (cpu, address, op) in enumerate(sequence):
        nuca.access(cpu, address, op, cycle=float(step * 7))
    nuca.settle_all(cycle=1e12)
    for store in nuca.clusters:
        for __, __, entry in store.entries():
            assert not entry.in_transit


@settings(max_examples=20, deadline=None)
@given(sequence=accesses)
def test_repeat_access_always_hits(sequence):
    """Accessing the same address again immediately is always a hit."""
    nuca = fresh_nuca()
    cycle = 0.0
    for cpu, address, op in sequence:
        nuca.access(cpu, address, op, cycle=cycle)
        outcome = nuca.access(cpu, address, AccessType.READ, cycle + 1)
        assert outcome.hit
        cycle += 13.0


@settings(max_examples=40, deadline=None)
@given(address=st.integers(0, 1 << 48))
def test_decode_compose_roundtrip(address):
    amap = AddressMap(ChipConfig())
    decoded = amap.decode(address)
    line_aligned = address >> 6 << 6
    assert amap.compose(decoded.tag, decoded.index) == line_aligned
    assert 0 <= decoded.home_cluster < 16
    assert 0 <= decoded.bank < 16
    assert 0 <= decoded.index < 1024


@settings(max_examples=30, deadline=None)
@given(
    touches=st.lists(st.integers(0, 15), min_size=1, max_size=64),
)
def test_plru_victim_never_most_recent(touches):
    tree = TreePLRU(16)
    for way in touches:
        tree.touch(way)
    assert tree.victim() != touches[-1]

"""End-to-end tests for the sweep service over real HTTP.

Each fixture boots a :class:`SweepServer` + :class:`JobStore` on an
event loop in a background thread, bound to an ephemeral port; tests
talk to it with the synchronous :class:`ServeClient`, exactly as the
CLI does.  Small grids run the real simulator (inline executor, tiny
scale); scheduling-behaviour tests inject stub runners.
"""

import asyncio
import threading

import pytest

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import ExperimentScale
from repro.experiments.spec import SimSpec
from repro.serve.client import (
    ProtocolMismatch,
    ServeClient,
    ServeConnectionError,
    ServeError,
    ServerBusy,
    UnknownResourceError,
)
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.scheduler import JobStore
from repro.serve.server import SweepServer

TINY = ExperimentScale(name="tiny", refs_per_cpu=50)


def make_spec(benchmark="art", **overrides) -> SimSpec:
    return SimSpec.make(
        Scheme.CMP_DNUCA_3D, benchmark, scale=TINY, **overrides
    )


def fake_stats(spec: SimSpec, latency: float = 42.0) -> RunStats:
    return RunStats(
        scheme=spec.scheme,
        avg_l2_hit_latency=latency,
        avg_l2_miss_latency=300.0,
        l2_hits=10,
        l2_misses=2,
        migrations=1,
        ipc=0.5,
        per_cpu_ipc=[0.5] * 8,
        l1_miss_rate=0.1,
        flit_hops=100.0,
        bus_flits=10.0,
        invalidations=0,
        instructions=1000.0,
        cycles=2000.0,
    )


class LiveServer:
    """SweepServer on its own event-loop thread, torn down after the test."""

    def __init__(self, **store_kwargs):
        self.store_kwargs = store_kwargs
        self.port = 0
        self.store = None
        self._ready = threading.Event()
        self._failure = None
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._thread_main, daemon=True)

    def start(self) -> "LiveServer":
        self._thread.start()
        assert self._ready.wait(timeout=30.0), "server never came up"
        if self._failure is not None:
            raise self._failure
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive(), "server thread failed to stop"

    def client(self, tenant: str = "default") -> ServeClient:
        return ServeClient(port=self.port, tenant=tenant, timeout_s=60.0)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except Exception as exc:  # surface boot failures to the test thread
            self._failure = exc
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.store = JobStore(**self.store_kwargs)
        await self.store.start()
        server = SweepServer(self.store, port=0)
        self.port = await server.start()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()
            await self.store.close()


@pytest.fixture
def live_server(tmp_path):
    """Real-simulation server: inline executor, caching into tmp_path."""
    server = LiveServer(
        workers=2,
        executor="inline",
        use_cache=True,
        cache_dir=str(tmp_path / "cache"),
    ).start()
    yield server
    server.stop()


@pytest.fixture
def stub_server_factory():
    """Build servers with injected runners; all torn down at test end."""
    servers = []

    def build(**store_kwargs):
        store_kwargs.setdefault("use_cache", False)
        server = LiveServer(**store_kwargs).start()
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.stop()


class TestSurface:
    def test_health_and_stats(self, live_server):
        client = live_server.client()
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["executor"] == "inline"
        stats = client.stats()
        assert stats["jobs_submitted"] == 0

    def test_unknown_routes_and_methods(self, live_server):
        client = live_server.client()
        with pytest.raises(UnknownResourceError) as excinfo:
            client.job("j-nope")
        assert excinfo.value.status == 404
        assert excinfo.value.kind == "unknown_job"

        status, _, body = client._request("GET", "/no/such/route")
        assert status == 404
        status, _, body = client._request("GET", "/jobs")
        assert status == 405

    def test_invalid_submission_is_400(self, live_server):
        client = live_server.client()
        status, _, body = client._request("POST", "/jobs", {
            "protocol_version": PROTOCOL_VERSION, "specs": "nope",
        })
        assert status == 400
        assert body["error"]["kind"] == "bad_request"
        status, _, body = client._request("POST", "/jobs", {
            "protocol_version": PROTOCOL_VERSION,
            "specs": [{"benchmark": "art"}],
        })
        assert status == 400

    def test_protocol_skew_is_structured_400(self, live_server):
        """A peer from another protocol revision fails loudly, not quietly."""
        client = live_server.client()
        for bad in ({"specs": []},  # version missing entirely
                    {"protocol_version": PROTOCOL_VERSION + 1, "specs": []}):
            status, _, body = client._request("POST", "/jobs", bad)
            assert status == 400
            assert body["error"]["kind"] == "protocol_mismatch"
            assert body["error"]["expected_version"] == PROTOCOL_VERSION
        with pytest.raises(ProtocolMismatch):
            # The typed client surfaces the same skew as its own error.
            raise_payload = {"protocol_version": 99, "specs": []}
            status, headers, body = client._request(
                "POST", "/jobs", raise_payload
            )
            from repro.serve.client import raise_for_status
            raise_for_status(status, headers, body)
        assert client.health()["protocol_version"] == PROTOCOL_VERSION


class TestRealSweep:
    def test_submit_wait_resubmit_cached(self, live_server):
        client = live_server.client(tenant="cold")
        grid = [make_spec(), make_spec(benchmark="swim")]

        summary = client.sweep(grid)
        assert summary.failed == 0
        assert summary.simulated == 2
        assert len(summary.results) == 2
        for spec in grid:
            assert summary.results[spec].ipc > 0

        warm = live_server.client(tenant="warm").sweep(grid)
        assert warm.simulated == 0
        assert warm.cached == 2
        assert (
            warm.results[grid[0]].to_dict()
            == summary.results[grid[0]].to_dict()
        )

        totals = client.stats()
        assert totals["cells_simulated"] == 2
        assert totals["cells_cached"] == 2

    def test_event_stream_over_http(self, live_server):
        client = live_server.client()
        snapshot = client.submit([make_spec()])
        events = list(client.iter_events(snapshot.job_id))
        assert events[0]["event"] == "job"
        assert events[-1]["event"] == "done"
        done_cells = [
            event for event in events
            if event["event"] == "cell" and event["state"] == "done"
        ]
        assert len(done_cells) == 1
        assert done_cells[0]["origin"] == "simulated"

    def test_artifact_endpoint(self, live_server):
        client = live_server.client()
        spec = make_spec()
        client.wait(client.submit([spec]).job_id)
        artifact = client.artifact(spec.spec_hash())
        assert artifact["spec"] == spec.to_dict()
        assert artifact["stats"]["scheme"] == spec.scheme.value

        with pytest.raises(ServeError) as excinfo:
            client.artifact("0" * 16)
        assert excinfo.value.status == 404


class GatedRunner:
    def __init__(self):
        self.calls = []
        self._lock = threading.Lock()
        self.gate = threading.Event()

    def __call__(self, spec):
        with self._lock:
            self.calls.append(spec)
        assert self.gate.wait(timeout=30.0)
        return fake_stats(spec)


class TestMultiTenant:
    def test_identical_grids_simulate_once(self, stub_server_factory):
        """Satellite contract, over the wire: two tenants, one simulation."""
        runner = GatedRunner()
        server = stub_server_factory(workers=2, runner=runner)
        grid = [make_spec(), make_spec(benchmark="swim")]

        job_a = server.client("tenant-a").submit(grid)
        job_b = server.client("tenant-b").submit(grid)
        runner.gate.set()

        results_a = server.client("tenant-a").wait(job_a.job_id)
        results_b = server.client("tenant-b").wait(job_b.job_id)
        assert len(runner.calls) == 2  # one execution per distinct spec
        for body in (results_a, results_b):
            assert body.snapshot.failed == 0
            assert len(body.results) == 2  # both tenants fully served
        totals = server.client().stats()
        assert totals["cells_simulated"] == 2
        assert totals["cells_deduped"] == 2

    def test_backpressure_429_with_retry_after(self, stub_server_factory):
        runner = GatedRunner()
        server = stub_server_factory(workers=1, max_pending=1, runner=runner)

        first = server.client("a").submit([make_spec()])
        with pytest.raises(ServerBusy) as excinfo:
            server.client("b").submit([make_spec(benchmark="swim")])
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s >= 1.0
        assert excinfo.value.kind == "queue_full"
        assert isinstance(excinfo.value, ServeError)

        runner.gate.set()
        server.client("a").wait(first.job_id)
        # Capacity freed: the same submission is accepted now.
        retry = server.client("b").submit([make_spec(benchmark="swim")])
        body = server.client("b").wait(retry.job_id)
        assert body.snapshot.failed == 0
        assert server.client().stats()["submissions_rejected"] == 1

    def test_structured_failure_bodies(self, stub_server_factory):
        class Wedged(RuntimeError):
            failure_kind = "stall"

        def stalling(spec):
            raise Wedged("starved for 10000 cycles")

        server = stub_server_factory(workers=1, runner=stalling)
        client = server.client()
        body = client.wait(client.submit([make_spec()]).job_id)
        assert body.snapshot.failed == 1
        error = body.failures[0].error
        assert error["kind"] == "stall"
        assert "starved" in error["message"]
        snapshot = client.job(body.snapshot.job_id)
        assert snapshot.failure_kinds == {"stall": 1}


class TestCliAgainstServer:
    def test_sweep_command_uses_server(self, live_server, capsys):
        from repro.cli import main

        url = f"http://127.0.0.1:{live_server.port}"
        code = main([
            "sweep", "--server", url, "--schemes", "CMP-DNUCA-3D",
            "--benchmarks", "art", "--refs", "50", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep results" in out
        totals = live_server.client().stats()
        assert totals["jobs_submitted"] == 1
        assert totals["cells_simulated"] == 1


class TestClientRetries:
    def test_idempotent_get_survives_transient_reset(
        self, stub_server_factory
    ):
        """A GET that dies mid-exchange is replayed, invisibly."""
        server = stub_server_factory(workers=1, runner=fake_stats)
        client = server.client()
        orig = client._request_once
        calls = {"n": 0}

        def flaky(method, path, payload=None):
            calls["n"] += 1
            if calls["n"] == 1:
                exc = ServeConnectionError("reset mid-exchange")
                exc.__cause__ = ConnectionResetError("peer reset")
                raise exc
            return orig(method, path, payload)

        client._request_once = flaky
        stats = client.stats()
        assert stats["jobs_submitted"] == 0
        assert calls["n"] == 2  # one failure, one replay

    def test_non_idempotent_post_is_not_replayed(self, stub_server_factory):
        """A submit must never be blindly replayed — it is not idempotent."""
        server = stub_server_factory(workers=1, runner=fake_stats)
        client = server.client()
        calls = {"n": 0}

        def always_reset(method, path, payload=None):
            calls["n"] += 1
            exc = ServeConnectionError("reset mid-exchange")
            exc.__cause__ = ConnectionResetError("peer reset")
            raise exc

        client._request_once = always_reset
        with pytest.raises(ServeConnectionError):
            client.submit([make_spec()])
        assert calls["n"] == 1

    def test_outage_grace_rides_out_a_refused_head(self, stub_server_factory):
        """With outage_grace_s, even refused connections (head restarting,
        not just a dropped socket) are retried until the head answers."""
        server = stub_server_factory(workers=1, runner=fake_stats)
        client = ServeClient(
            port=server.port, tenant="default",
            timeout_s=60.0, outage_grace_s=10.0,
        )
        orig = client._request_once
        calls = {"n": 0}

        def refused_twice(method, path, payload=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                exc = ServeConnectionError("head unreachable")
                exc.__cause__ = ConnectionRefusedError("refused")
                raise exc
            return orig(method, path, payload)

        client._request_once = refused_twice
        assert client.stats()["jobs_submitted"] == 0
        assert calls["n"] == 3

    def test_iter_events_resumes_mid_stream_without_duplicates(
        self, stub_server_factory
    ):
        """A dropped event stream reconnects and skips what it yielded."""
        server = stub_server_factory(workers=1, runner=fake_stats)
        reference = server.client()
        job_id = reference.submit(
            [make_spec(), make_spec(benchmark="swim")]
        ).job_id
        reference.wait(job_id)
        baseline = list(reference.iter_events(job_id))
        assert len(baseline) >= 4  # job + cells + done

        client = server.client()
        orig = client._iter_events_once
        state = {"streams": 0}

        def interrupted(job_id_, skip=0):
            state["streams"] += 1
            inner = orig(job_id_, skip=skip)
            if state["streams"] == 1:
                yield next(inner)  # one event, then the stream dies
                exc = ServeConnectionError("event stream interrupted")
                exc.__cause__ = ConnectionResetError("peer reset")
                raise exc
            yield from inner

        client._iter_events_once = interrupted
        events = list(client.iter_events(job_id))
        assert state["streams"] == 2  # reconnected exactly once
        assert events == baseline  # nothing lost, nothing duplicated
        assert sum(1 for e in events if e["event"] == "done") == 1

"""Differential test: activity-tracked kernel vs naive kernel.

The activity-tracked kernel (idle retirement + fast-forward) must be a pure
performance optimisation: for the same mesh, seed, and traffic it has to
produce *bit-identical* final cycle counts and statistics snapshots to the
naive kernel that ticks every component every cycle.
"""

from __future__ import annotations

from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import Coord
from repro.noc.traffic import UniformRandomTraffic
from repro.sim.engine import Engine

CONFIG = dict(width=4, height=4, layers=2, pillar_locations=((1, 1), (3, 2)))


def _build(activity_tracking: bool, rate: float, seed: int = 9):
    engine = Engine("diff", activity_tracking=activity_tracking)
    network = Network(NetworkConfig(**CONFIG), engine=engine)
    generator = UniformRandomTraffic(network, rate, seed=seed)
    return engine, network, generator


def _run_and_drain(activity_tracking: bool, rate: float, cycles: int):
    engine, network, generator = _build(activity_tracking, rate)
    engine.run(cycles)
    generator.injection_rate = 0.0
    network.quiesce()
    return engine, network, generator


def test_low_rate_parity_after_drain():
    """Same cycles, same stats, strictly less work at a drainable load."""
    naive_eng, naive_net, naive_gen = _run_and_drain(False, 0.02, 400)
    tracked_eng, tracked_net, tracked_gen = _run_and_drain(True, 0.02, 400)

    assert naive_gen.packets_sent == tracked_gen.packets_sent
    assert naive_net.in_flight == 0 and tracked_net.in_flight == 0
    assert naive_eng.cycle == tracked_eng.cycle
    assert naive_net.stats.snapshot() == tracked_net.stats.snapshot()
    # The optimisation must actually optimise: fewer component ticks.
    assert tracked_eng.ticks < naive_eng.ticks


def test_saturated_parity_fixed_horizon():
    """Bit-identical state under saturation, compared at a fixed horizon.

    At saturating injection the mesh+pillar fabric wedges during drain
    (a pre-existing VC/credit interaction present in the seed fabric, not
    a kernel artefact), so this case injects for a fixed window and
    compares without quiescing to empty.
    """
    results = []
    for tracking in (False, True):
        engine, network, generator = _build(tracking, 0.25, 300)
        engine.run(300)
        results.append((engine, network, generator))
    (naive_eng, naive_net, naive_gen), (tracked_eng, tracked_net, tracked_gen) = results

    assert naive_gen.packets_sent == tracked_gen.packets_sent
    assert naive_eng.cycle == tracked_eng.cycle
    assert naive_net.in_flight == tracked_net.in_flight
    assert naive_net.stats.snapshot() == tracked_net.stats.snapshot()


def test_single_packet_fast_forwards_idle_window():
    """One packet in an otherwise dead mesh: the clock jumps, state doesn't."""
    results = []
    for tracking in (False, True):
        engine, network, __ = _build(tracking, 0.0)
        network.send(Coord(0, 0, 0), Coord(3, 3, 1))
        engine.run(2_000)
        results.append((engine, network))
    (naive_eng, naive_net), (tracked_eng, tracked_net) = results

    assert naive_net.in_flight == 0 and tracked_net.in_flight == 0
    assert naive_eng.cycle == tracked_eng.cycle == 2_000
    assert naive_net.stats.snapshot() == tracked_net.stats.snapshot()
    # The naive kernel ticked the whole mesh for all 2000 cycles; the
    # tracked kernel skipped the long tail after delivery.
    assert tracked_eng.fast_forwarded_cycles > 1_000
    assert naive_eng.fast_forwarded_cycles == 0
    assert tracked_eng.ticks < naive_eng.ticks / 10

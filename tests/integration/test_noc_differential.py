"""Differential test: optimized NoC hot path vs the frozen reference fabric.

Builds the paper-scale 16x8x2 pillar mesh twice — once with the
allocation-free fabric (cached route tables, shared link pipeline, posted
credits, flit pooling, blocked-evaluate cache) and once with the frozen
pre-optimisation implementation in ``repro.noc.reference`` — drives both
with the identical injection sequence, and asserts bit-identical results:
packet counts, cycle counts, in-flight totals, and the complete statistics
snapshot (every per-router counter and the latency histograms).

Three operating points cover the regimes that exercise different code
paths: near-idle (fast-forward windows, empty evaluates), medium load
(mixed blocking), and saturation (pervasive blocking, VC contention, full
credit round-trips).
"""

from __future__ import annotations

import random

import pytest

from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import Coord

# Pillar placement from the paper's 4-pillar configuration (Section 5.4).
PILLARS = ((3, 3), (11, 3), (7, 5), (14, 6))
CYCLES = 300
SEED = 42


def _drive(fabric: str, rate: float, cycles: int = CYCLES, seed: int = SEED):
    """Run uniform random traffic; return every observable of the run."""
    config = NetworkConfig(
        width=16, height=8, layers=2, pillar_locations=PILLARS
    )
    network = Network(config, fabric=fabric)
    rng = random.Random(seed)
    coords = list(network.coords())
    sent = 0
    for __ in range(cycles):
        for src in coords:
            if rng.random() < rate:
                dest = coords[rng.randrange(len(coords))]
                if dest != src:
                    network.send(src, dest)
                    sent += 1
        network.engine.step()
    network.engine.flush_idle_stats()
    return network, {
        "packets_sent": sent,
        "final_cycle": network.engine.cycle,
        "in_flight": network.in_flight,
        "stats": network.stats.snapshot(),
    }


@pytest.mark.parametrize("rate", [0.002, 0.05, 0.2])
def test_fabrics_bit_identical(rate):
    __, reference = _drive("reference", rate)
    __, optimized = _drive("optimized", rate)
    assert optimized["packets_sent"] == reference["packets_sent"]
    assert optimized["final_cycle"] == reference["final_cycle"]
    assert optimized["in_flight"] == reference["in_flight"]
    ref_stats = reference["stats"]
    opt_stats = optimized["stats"]
    assert set(opt_stats) == set(ref_stats)
    mismatched = {
        key: (ref_stats[key], opt_stats[key])
        for key in ref_stats
        if opt_stats[key] != ref_stats[key]
    }
    assert not mismatched, f"diverging statistics: {mismatched}"


def test_fabrics_bit_identical_after_drain():
    """Low-rate run followed by a quiesce: drained state must also match."""
    results = {}
    for fabric in ("reference", "optimized"):
        network, observed = _drive(fabric, 0.01, cycles=200)
        network.quiesce()
        observed["drained_cycle"] = network.engine.cycle
        observed["in_flight"] = network.in_flight
        observed["stats"] = network.stats.snapshot()
        results[fabric] = observed
    assert results["optimized"] == results["reference"]
    assert results["optimized"]["in_flight"] == 0


def test_packet_ids_restart_per_network():
    """Back-to-back simulations produce identical packet id sequences."""
    first_ids = []
    second_ids = []
    for collected in (first_ids, second_ids):
        config = NetworkConfig(
            width=16, height=8, layers=2, pillar_locations=PILLARS
        )
        network = Network(config)
        packet = network.send(Coord(0, 0, 0), Coord(5, 3, 1))
        collected.append(packet.packet_id)
        packet = network.send(Coord(2, 2, 1), Coord(9, 6, 0))
        collected.append(packet.packet_id)
        network.quiesce()
    assert first_ids == second_ids == [0, 1]


# -- vector fabric: distribution-level differential -----------------------
#
# The SoA batch fabric arbitrates all routers in one global two-stage
# pass instead of per-router round-robin, so tie-breaks under contention
# legitimately differ from the object fabrics and bit-identity is not the
# contract.  The contract is distribution-level: identical injection
# accounting, exact packet conservation, and delivered counts / latency
# means within a few percent at every operating point.

np = pytest.importorskip("numpy")


def _observables(result):
    stats = result[0].stats
    hist = stats.scope("nic").histogram("packet_latency")
    return {
        "sent": result[1]["packets_sent"],
        "received": stats.scope("nic").counter("packets_received").value,
        "in_flight": result[1]["in_flight"],
        "latency_mean": hist.mean if hist.count else 0.0,
    }


@pytest.mark.parametrize("rate", [0.002, 0.05, 0.2])
def test_vector_fabric_distribution_matches(rate):
    vec = _observables(_drive("vector", rate))
    opt = _observables(_drive("optimized", rate))
    # Same injection sequence, exact conservation on both fabrics.
    assert vec["sent"] == opt["sent"]
    assert vec["received"] + vec["in_flight"] == vec["sent"]
    assert opt["received"] + opt["in_flight"] == opt["sent"]
    # Delivered counts within 10% (observed divergence is under 3%).
    assert vec["received"] == pytest.approx(opt["received"], rel=0.10, abs=5)
    # Latency means within 15% (observed divergence is under 6%).
    assert vec["latency_mean"] == pytest.approx(
        opt["latency_mean"], rel=0.15, abs=2.0
    )


def test_vector_fabric_drains_and_conserves():
    network, observed = _drive("vector", 0.05, cycles=200)
    network.quiesce(max_cycles=200_000)
    assert network.in_flight == 0
    assert network.delivered_fraction() == 1.0
    received = network.stats.scope("nic").counter("packets_received").value
    assert received == observed["packets_sent"]
    assert network.vector_fabric.check_invariants() == []

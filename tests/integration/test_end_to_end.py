"""End-to-end scheme comparisons: the paper's headline orderings.

These run small-but-real simulations (full search/migration/coherence on
the default chip) and assert the qualitative results of Section 5.2.
"""

import pytest

from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, SystemConfig
from repro.workloads.generator import SyntheticWorkload

REFS = 25_000
WARMUP = 8 * REFS * 6 // 10


@pytest.fixture(scope="module")
def swim_results():
    results = {}
    for scheme in Scheme:
        system = NetworkInMemory(SystemConfig(scheme=scheme))
        workload = SyntheticWorkload("swim", refs_per_cpu=REFS)
        results[scheme] = system.run_trace(
            workload.traces(), warmup_events=WARMUP
        )
    return results


def test_full_3d_scheme_has_lowest_hit_latency(swim_results):
    best = min(
        swim_results, key=lambda s: swim_results[s].avg_l2_hit_latency
    )
    assert best in (Scheme.CMP_DNUCA_3D, Scheme.CMP_DNUCA)
    assert (
        swim_results[Scheme.CMP_DNUCA_3D].avg_l2_hit_latency
        < swim_results[Scheme.CMP_DNUCA_2D].avg_l2_hit_latency
    )


def test_static_3d_beats_migrating_2d(swim_results):
    """The paper's headline: 3D without migration beats 2D with it."""
    assert (
        swim_results[Scheme.CMP_SNUCA_3D].avg_l2_hit_latency
        < swim_results[Scheme.CMP_DNUCA_2D].avg_l2_hit_latency
    )


def test_migration_helps_within_3d(swim_results):
    assert (
        swim_results[Scheme.CMP_DNUCA_3D].avg_l2_hit_latency
        < swim_results[Scheme.CMP_SNUCA_3D].avg_l2_hit_latency
    )


def test_3d_improves_ipc(swim_results):
    base = swim_results[Scheme.CMP_DNUCA_2D].ipc
    assert swim_results[Scheme.CMP_DNUCA_3D].ipc > base
    assert swim_results[Scheme.CMP_SNUCA_3D].ipc > base


def test_static_scheme_never_migrates(swim_results):
    assert swim_results[Scheme.CMP_SNUCA_3D].migrations == 0


def test_3d_migrates_less_than_2d(swim_results):
    assert (
        swim_results[Scheme.CMP_DNUCA_3D].migrations
        < swim_results[Scheme.CMP_DNUCA_2D].migrations
    )


def test_3d_uses_the_vertical_buses(swim_results):
    assert swim_results[Scheme.CMP_DNUCA_3D].bus_flits > 0
    assert swim_results[Scheme.CMP_DNUCA_2D].bus_flits == 0


def test_hit_rates_scheme_independent(swim_results):
    """Schemes change placement/latency, not what fits in the cache."""
    rates = [stats.l2_hit_rate for stats in swim_results.values()]
    assert max(rates) - min(rates) < 0.02


def test_fewer_pillars_cost_latency():
    results = {}
    for pillars in (8, 2):
        system = NetworkInMemory(
            SystemConfig(scheme=Scheme.CMP_DNUCA_3D, num_pillars=pillars)
        )
        workload = SyntheticWorkload("swim", refs_per_cpu=REFS)
        results[pillars] = system.run_trace(
            workload.traces(), warmup_events=WARMUP
        )
    assert (
        results[2].avg_l2_hit_latency > results[8].avg_l2_hit_latency
    )


def test_more_layers_save_latency():
    results = {}
    for layers in (2, 4):
        system = NetworkInMemory(
            SystemConfig(scheme=Scheme.CMP_SNUCA_3D, num_layers=layers)
        )
        workload = SyntheticWorkload("swim", refs_per_cpu=REFS)
        results[layers] = system.run_trace(
            workload.traces(), warmup_events=WARMUP
        )
    assert (
        results[4].avg_l2_hit_latency < results[2].avg_l2_hit_latency
    )


def test_larger_cache_raises_latency_slower_in_3d():
    growth = {}
    for scheme in (Scheme.CMP_DNUCA_2D, Scheme.CMP_DNUCA_3D):
        latencies = []
        for cache_mb in (16, 64):
            system = NetworkInMemory(
                SystemConfig(scheme=scheme, cache_mb=cache_mb)
            )
            workload = SyntheticWorkload("swim", refs_per_cpu=REFS)
            stats = system.run_trace(
                workload.traces(), warmup_events=WARMUP
            )
            latencies.append(stats.avg_l2_hit_latency)
        growth[scheme] = latencies[1] - latencies[0]
    assert growth[Scheme.CMP_DNUCA_2D] > 0
    assert growth[Scheme.CMP_DNUCA_3D] > 0
    assert growth[Scheme.CMP_DNUCA_3D] < growth[Scheme.CMP_DNUCA_2D]

"""Trace round-trip and zero-perturbation tests.

Two promises are checked on a 4x4x2 pillar mesh under uniform random
traffic:

* **Export fidelity** — a traced run exports Chrome-trace JSON that
  validates (monotonic timestamps per track, balanced ``B``/``E`` pairs,
  flow ids that match injected packet ids) and shows the expected
  router / pillar tracks; the JSONL exporter agrees on the event count.
* **Zero perturbation** — attaching a :class:`NullTracer` (or a
  :class:`RingTracer`) must not change simulation results: the full
  statistics snapshot is bit-identical to an untraced run, and the
  optimized fabric with a tracer still matches the frozen reference
  fabric (which carries no probe sites at all).
"""

from __future__ import annotations

import io
import json
import random

from repro.noc.network import Network, NetworkConfig
from repro.sim.trace import (
    NullTracer,
    RingTracer,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

PILLARS = ((1, 1), (2, 2))
CYCLES = 200
SEED = 11
RATE = 0.1


def _drive(fabric="optimized", tracer=None, rate=RATE):
    config = NetworkConfig(
        width=4, height=4, layers=2, pillar_locations=PILLARS
    )
    network = Network(config, fabric=fabric, tracer=tracer)
    rng = random.Random(SEED)
    coords = list(network.coords())
    packet_ids = []
    for __ in range(CYCLES):
        for src in coords:
            if rng.random() < rate:
                dest = coords[rng.randrange(len(coords))]
                if dest != src:
                    packet_ids.append(network.send(src, dest).packet_id)
        network.engine.step()
    network.engine.flush_idle_stats()
    return network, packet_ids


class TestChromeRoundTrip:
    def test_traced_mesh_exports_valid_chrome_json(self):
        tracer = RingTracer()
        network, packet_ids = _drive(tracer=tracer)
        assert tracer.recorded > 0
        assert tracer.dropped == 0

        buf = io.StringIO()
        written = write_chrome_trace(tracer, buf)
        assert written == tracer.recorded
        info = validate_chrome_trace(buf.getvalue())

        names = set(info["tracks"].values())
        # Every router lane exists (4x4x2 = 32), plus both pillars.
        assert sum(1 for n in names if n.startswith("router.")) == 32
        assert {"pillar.1.1", "pillar.2.2"} <= names
        # Flow ids are exactly (a subset of) the injected packet ids:
        # every flow came from a real packet, and every observed flow's
        # id round-trips.
        assert info["flow_ids"] <= set(packet_ids)
        assert len(info["flow_ids"]) > 0

    def test_jsonl_agrees_on_event_count(self):
        tracer = RingTracer()
        _drive(tracer=tracer)
        chrome_buf, jsonl_buf = io.StringIO(), io.StringIO()
        assert (
            write_chrome_trace(tracer, chrome_buf)
            == write_jsonl(tracer, jsonl_buf)
        )
        header = json.loads(jsonl_buf.getvalue().splitlines()[0])
        assert header["recorded"] == tracer.recorded

    def test_component_filter_restricts_tracks(self):
        tracer = RingTracer(component_filter="pillar.*")
        _drive(tracer=tracer)
        recorded_tracks = {event[2] for event in tracer.events()}
        names = tracer.tracks()
        assert recorded_tracks  # pillar traffic exists at this rate
        for tid in recorded_tracks:
            assert names[tid].startswith("pillar.")


class TestZeroPerturbation:
    def test_null_tracer_bit_identical_to_untraced(self):
        untraced, __ = _drive(tracer=None)
        nulled, __ = _drive(tracer=NullTracer())
        assert untraced.stats.snapshot() == nulled.stats.snapshot()
        assert untraced.engine.cycle == nulled.engine.cycle
        assert untraced.in_flight == nulled.in_flight

    def test_ring_tracer_bit_identical_to_untraced(self):
        # Recording events must observe, never perturb.
        untraced, __ = _drive(tracer=None)
        traced, __ = _drive(tracer=RingTracer())
        assert untraced.stats.snapshot() == traced.stats.snapshot()
        assert untraced.engine.cycle == traced.engine.cycle

    def test_traced_optimized_matches_probe_free_reference(self):
        # The frozen reference fabric has no probe sites: it IS the
        # no-tracer build.  The optimized fabric with a live tracer must
        # still match it bit for bit.
        reference, __ = _drive(fabric="reference")
        traced, __ = _drive(fabric="optimized", tracer=RingTracer())
        assert reference.stats.snapshot() == traced.stats.snapshot()
        assert reference.engine.cycle == traced.engine.cycle
        assert reference.in_flight == traced.in_flight

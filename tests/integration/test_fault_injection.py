"""Integration tests for fault injection and graceful degradation.

Three acceptance properties from the fault-model design:

1. **Zero-fault bit-identity** — installing a default (empty)
   :class:`FaultSpec` on the paper-scale 16x8x2 mesh leaves every
   observable of the run — packet counts, cycle counts, and the complete
   statistics snapshot — bit-identical to a fault-unaware run, on both
   the optimized and the frozen reference fabric.
2. **Graceful degradation** — a CMP-DNUCA-3D system with a dead pillar
   completes its workload by rerouting through the surviving pillars,
   reporting the damage through the ``faults.*`` statistics scope, and
   does so deterministically.
3. **Liveness** — a seeded routing deadlock (jammed router port) is
   detected by the watchdog, which names the stalled routers, and a
   sweep surfaces it as a structured ``CellFailure`` instead of hanging.
"""

from __future__ import annotations

import random

import pytest

from repro.core.schemes import Scheme
from repro.experiments.config import ExperimentScale
from repro.experiments.orchestrator import run_sweep
from repro.experiments.spec import SimSpec, run_spec
from repro.faults.injector import install_network_faults
from repro.faults.spec import FaultEvent, FaultSpec
from repro.faults.state import FaultState
from repro.faults.watchdog import DeadlockError
from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import Coord

# Pillar placement from the paper's 4-pillar configuration (Section 5.4).
PILLARS = ((3, 3), (11, 3), (7, 5), (14, 6))
CYCLES = 300
SEED = 42

TINY = ExperimentScale(name="tiny", refs_per_cpu=400)


def _drive(
    fabric: str,
    rate: float,
    faults: FaultSpec | None = None,
    cycles: int = CYCLES,
    seed: int = SEED,
):
    """Run uniform random traffic; return every observable of the run."""
    config = NetworkConfig(
        width=16, height=8, layers=2, pillar_locations=PILLARS
    )
    network = Network(config, fabric=fabric)
    if faults is not None:
        install_network_faults(network, faults, seed)
    rng = random.Random(seed)
    coords = list(network.coords())
    sent = 0
    for __ in range(cycles):
        for src in coords:
            if rng.random() < rate:
                dest = coords[rng.randrange(len(coords))]
                if dest != src:
                    network.send(src, dest)
                    sent += 1
        network.engine.step()
    network.engine.flush_idle_stats()
    return network, {
        "packets_sent": sent,
        "final_cycle": network.engine.cycle,
        "in_flight": network.in_flight,
        "stats": network.stats.snapshot(),
    }


# -- 1. zero-fault bit-identity ----------------------------------------------


@pytest.mark.parametrize("rate", [0.01, 0.1])
def test_zero_fault_spec_is_bit_identical(rate):
    """An empty FaultSpec (watchdog included) must not perturb the run."""
    __, bare = _drive("optimized", rate)
    __, zero_opt = _drive("optimized", rate, faults=FaultSpec())
    __, zero_ref = _drive("reference", rate, faults=FaultSpec())
    assert zero_opt == bare
    assert zero_ref == bare


def test_zero_fault_spec_identical_after_drain():
    network, observed = _drive("optimized", 0.02, faults=FaultSpec())
    network.quiesce()
    bare_network, __ = _drive("optimized", 0.02)
    bare_network.quiesce()
    assert network.engine.cycle == bare_network.engine.cycle
    assert network.in_flight == bare_network.in_flight == 0
    assert network.stats.snapshot() == bare_network.stats.snapshot()
    assert observed["packets_sent"] > 0


# -- 2. graceful degradation -------------------------------------------------


def test_dead_pillar_reroutes_at_network_level():
    """Killing one pillar mid-run: traffic drains via the survivors.

    Moderate load: the three surviving pillars must carry all vertical
    traffic, so near-saturation rates can wedge — which is watchdog
    territory (see the liveness tests), not graceful degradation.
    """
    spec = FaultSpec(events=(FaultEvent("pillar", (3, 3), onset=50),))
    network, observed = _drive("optimized", 0.02, faults=spec)
    network.quiesce()
    assert network.in_flight == 0
    snapshot = network.stats.snapshot()
    # The dead pillar is recorded, and vertical traffic still completed.
    assert snapshot["faults.injected"] == 1
    assert network.completed_packets > 0
    # The drain-then-die pillar plus rerouting keeps losses bounded to
    # packets already committed to the dying pillar.
    assert snapshot.get("faults.packets_lost", 0) <= observed["packets_sent"]


def test_dead_pillar_system_run_completes_with_degradation():
    """Acceptance: one-dead-pillar CMP-DNUCA-3D cycle run completes."""
    spec = SimSpec.make(
        Scheme.CMP_DNUCA_3D,
        "swim",
        scale=TINY,
        mode="cycle",
        faults=FaultSpec(dead_pillars=1),
    )
    stats = run_spec(spec)
    assert stats.faults_injected == 1
    assert stats.l2_accesses > 0
    # Degradation, not denial: the run finished with finite latency.
    assert stats.avg_l2_hit_latency > 0
    baseline = run_spec(spec.with_overrides(faults=None))
    assert baseline.faults_injected == 0
    assert stats.avg_l2_hit_latency >= baseline.avg_l2_hit_latency


def test_faulted_run_is_deterministic():
    """Same spec, same seed: fault resolution and results are identical."""
    spec = SimSpec.make(
        Scheme.CMP_DNUCA_3D,
        "swim",
        scale=TINY,
        mode="cycle",
        faults=FaultSpec(dead_pillars=1, dead_banks=2),
    )
    assert run_spec(spec).to_dict() == run_spec(spec).to_dict()


def test_model_mode_supports_permanent_pillar_and_bank_faults():
    spec = SimSpec.make(
        Scheme.CMP_DNUCA_3D,
        "swim",
        scale=TINY,
        faults=FaultSpec(dead_pillars=2, dead_banks=2),
    )
    stats = run_spec(spec)
    assert stats.faults_injected == 4
    baseline = run_spec(spec.with_overrides(faults=None))
    assert stats.avg_l2_hit_latency >= baseline.avg_l2_hit_latency


def test_model_mode_rejects_timed_and_mesh_faults():
    timed = SimSpec.make(
        Scheme.CMP_DNUCA_3D,
        "swim",
        scale=TINY,
        faults=FaultSpec(events=(FaultEvent("pillar", (3, 3), onset=100),)),
    )
    with pytest.raises(ValueError, match="onset-0"):
        run_spec(timed)
    mesh = SimSpec.make(
        Scheme.CMP_DNUCA_3D,
        "swim",
        scale=TINY,
        faults=FaultSpec(dead_links=1),
    )
    with pytest.raises(ValueError, match="cycle"):
        run_spec(mesh)


# -- 3. liveness -------------------------------------------------------------


def _deadlock_spec():
    """A spec whose cell deterministically deadlocks.

    East out of a router on the base layer that this workload's traffic
    demonstrably crosses is jammed (flits enter, none leave); XY traffic
    through it wedges, and the watchdog's small window keeps detection
    fast.
    """
    scale = ExperimentScale(
        name="smoke", refs_per_cpu=800, warmup_fraction=0.3, seed=7
    )
    return SimSpec.make(
        Scheme.CMP_DNUCA_3D,
        "swim",
        scale=scale,
        mode="cycle",
        faults=FaultSpec(
            events=(FaultEvent("router_port", (4, 3, 0, "east")),),
            watchdog_window=3_000,
        ),
    )


def test_watchdog_names_stalled_routers_on_seeded_deadlock():
    """Jam a mesh port on a 4x4x2 network: DeadlockError names the router."""
    config = NetworkConfig(
        width=4, height=4, layers=2, pillar_locations=((1, 1), (2, 2))
    )
    network = Network(config)
    spec = FaultSpec(
        events=(FaultEvent("router_port", (1, 0, 0, "east")),),
        watchdog_window=200,
    )
    install_network_faults(network, spec, SEED)
    network.send(Coord(0, 0, 0), Coord(3, 0, 0))
    with pytest.raises(DeadlockError) as excinfo:
        network.quiesce(max_cycles=50_000)
    error = excinfo.value
    assert error.failure_kind == "deadlock"
    assert error.in_flight >= 1
    assert any(name.startswith("router(") for name in error.stalled_components)
    assert "deadlock" in str(error)


def test_sweep_surfaces_deadlock_as_structured_failure():
    """Acceptance: the orchestrator reports kind='deadlock', never hangs."""
    spec = _deadlock_spec()
    summary = run_sweep([spec], use_cache=False)
    assert summary.failed == 1
    failure = summary.failures[0]
    assert failure.kind == "deadlock"
    assert "DeadlockError" in failure.message
    assert "router(" in failure.message


def test_parallel_sweep_surfaces_deadlock():
    spec = _deadlock_spec()
    healthy = spec.with_overrides(faults=None)
    summary = run_sweep([spec, healthy], jobs=2, use_cache=False)
    assert summary.failed == 1
    assert summary.simulated == 1
    assert summary.failures[0].kind == "deadlock"
    assert healthy in summary.results


# -- vector fabric: bank-only fault support ------------------------------
#
# The SoA batch fabric carries no per-router fault state, so network
# faults (pillar / link / router_port) must be rejected loudly — never
# silently ignored — while bank faults, which live entirely in the
# cache layer, install normally.


class TestVectorFabricFaultGating:
    def _network(self):
        pytest.importorskip("numpy")
        config = NetworkConfig(
            width=4, height=4, layers=2, pillar_locations=((1, 1),)
        )
        return Network(config, fabric="vector")

    def test_bank_only_spec_installs(self):
        network = self._network()
        changes = []
        harness = install_network_faults(
            network,
            FaultSpec(dead_banks=2, watchdog_window=0),
            SEED,
            banks=[(0, 0), (1, 1), (2, 2)],
            on_bank_change=lambda: changes.append(True),
        )
        assert harness.state is not None
        assert harness.injector is not None
        # The batched fabric itself stays fault-free: nothing attached.
        assert network._faults is None
        network.engine.run(5)
        assert len(changes) == 2
        assert len(harness.state.dead_banks) == 2

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(dead_pillars=1, watchdog_window=0),
            FaultSpec(dead_links=1, watchdog_window=0),
            FaultSpec(
                events=(FaultEvent("router_port", (1, 1, 0, "east")),),
                watchdog_window=0,
            ),
            # Mixed schedules are rejected too, even with banks present.
            FaultSpec(dead_pillars=1, dead_banks=1, watchdog_window=0),
        ],
    )
    def test_network_fault_kinds_raise(self, spec):
        network = self._network()
        with pytest.raises(ValueError, match="fabric='vector' cannot honor"):
            install_network_faults(
                network, spec, SEED,
                banks=[(0, 0), (1, 1)],
                on_bank_change=lambda: None,
            )

    def test_attach_fault_state_raises_directly(self):
        network = self._network()
        state = FaultState()
        with pytest.raises(ValueError, match="fabric='optimized'"):
            network.attach_fault_state(state)

"""The analytic latency model is calibrated against the flit simulator.

Zero-load agreement must be exact for in-layer paths and within the bus
hand-off tolerance for cross-layer paths; under moderate load the model's
queueing terms must track the cycle-accurate mean within a band.
"""

import pytest

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.core.latency_model import LatencyModel
from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import Coord
from repro.noc.traffic import UniformRandomTraffic


@pytest.fixture(scope="module")
def setup3d():
    topology = build_topology(ChipConfig())
    model = LatencyModel(topology)
    width, height = topology.config.mesh_dims
    network = Network(
        NetworkConfig(
            width=width,
            height=height,
            layers=2,
            pillar_locations=tuple(topology.pillar_xys),
        )
    )
    return model, network


IN_LAYER_CASES = [
    (Coord(0, 0, 0), Coord(15, 7, 0), 4),
    (Coord(3, 3, 0), Coord(4, 3, 0), 1),
    (Coord(0, 7, 1), Coord(12, 0, 1), 4),
    (Coord(5, 2, 0), Coord(5, 6, 0), 8),
]


@pytest.mark.parametrize("src,dest,flits", IN_LAYER_CASES)
def test_zero_load_exact_in_layer(setup3d, src, dest, flits):
    model, network = setup3d
    packet = network.send(src, dest, size_flits=flits)
    network.quiesce()
    assert model.zero_load_latency(src, dest, flits) == packet.latency


CROSS_LAYER_CASES = [
    (Coord(2, 2, 0), Coord(2, 2, 1), 1),
    (Coord(0, 0, 0), Coord(15, 7, 1), 4),
    (Coord(6, 2, 1), Coord(6, 3, 0), 4),
]


@pytest.mark.parametrize("src,dest,flits", CROSS_LAYER_CASES)
def test_zero_load_cross_layer_within_one_cycle(setup3d, src, dest, flits):
    model, network = setup3d
    packet = network.send(src, dest, size_flits=flits)
    network.quiesce()
    predicted = model.zero_load_latency(src, dest, flits)
    assert abs(predicted - packet.latency) <= 1


def test_model_tracks_load_direction():
    """Under uniform load, the cycle-accurate mean rises above zero-load;
    the model, fed the same offered traffic, must predict a rise of
    comparable size (within a factor band, not exactness)."""
    config = NetworkConfig(width=8, height=8, layers=1)
    network = Network(config)
    generator = UniformRandomTraffic(network, injection_rate=0.02, seed=3)
    generator.run(4_000)
    measured = network.mean_packet_latency()

    topology = build_topology(ChipConfig(num_layers=1, num_pillars=0))
    model = LatencyModel(topology)
    # Average path on an 8x8 mesh under uniform traffic.
    zero_load = model.zero_load_latency(Coord(0, 0, 0), Coord(4, 3, 0), 4)
    # The cycle-accurate run shows positive queueing delay...
    assert measured > zero_load * 0.9
    # ...and the model yields a monotone latency in utilization.
    lat_low = model.packet_latency(
        Coord(0, 0, 0), Coord(4, 3, 0), 4, cycle=0.0, record=False
    )
    for cycle in range(30_000):
        model.note_packet(Coord(0, 0, 0), Coord(7, 7, 0), 4, float(cycle))
    lat_high = model.packet_latency(
        Coord(0, 0, 0), Coord(4, 3, 0), 4, cycle=30_000.0, record=False
    )
    assert lat_high > lat_low

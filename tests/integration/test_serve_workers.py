"""End-to-end tests for distributed sweep workers over real HTTP.

A head (``workers=0`` — no local execution) is booted per test via the
:class:`LiveServer` helper; remote :class:`WorkerNode` instances lease
cells from it, execute injected runners, and push results back.  The
headline failover test runs one worker in a separate OS process, wedges
it mid-batch, and ``kill -9``\\ s it: the head's lease reaper must
requeue its cells and a healthy worker must still complete the grid
with ``failed == 0``.
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.experiments.orchestrator import ResultCache
from repro.serve.client import ServeClient, ServeConnectionError
from repro.serve.worker import WorkerNode
from tests.integration.test_serve import LiveServer, fake_stats, make_spec

GRID_BENCHMARKS = ("art", "swim", "mgrid", "applu")


def make_grid():
    return [make_spec(benchmark=name) for name in GRID_BENCHMARKS]


def wait_for(predicate, timeout_s=30.0, interval_s=0.02, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def head():
    """Head-only store: every cell must travel through a remote lease."""
    server = LiveServer(
        workers=0, use_cache=False, lease_ttl_s=0.5, worker_retries=3
    ).start()
    yield server
    server.stop()


class RecordingRunner:
    """Per-worker runner that records which specs it simulated."""

    def __init__(self, gate=None):
        self.specs = []
        self._lock = threading.Lock()
        self.gate = gate

    def __call__(self, spec):
        with self._lock:
            self.specs.append(spec)
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0)
        return fake_stats(spec)


class TestTwoWorkers:
    def test_grid_simulated_exactly_once_across_workers(self, head):
        """The acceptance contract: 4 cells, 2 workers, no duplicates."""
        gate = threading.Event()
        runners = [RecordingRunner(gate=gate), RecordingRunner(gate=gate)]
        nodes = [
            WorkerNode(
                f"http://127.0.0.1:{head.port}",
                worker_id=f"w{i}",
                jobs=2,
                lease_cells=2,
                poll_s=0.05,
                use_cache=False,
                runner=runners[i],
            )
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=node.run, daemon=True) for node in nodes
        ]

        client = head.client()
        snapshot = client.submit(make_grid())
        for thread in threads:
            thread.start()
        try:
            # Hold the gate until both workers own a lease, so the work
            # is genuinely split rather than drained by whoever is fast.
            wait_for(
                lambda: client.stats()["leases_granted"] >= 2,
                what="both workers to lease",
            )
            gate.set()
            results = client.wait(snapshot.job_id)
        finally:
            gate.set()
            for node in nodes:
                node.stop()
            for thread in threads:
                thread.join(timeout=10.0)

        assert results.snapshot.failed == 0
        assert len(results.results) == 4
        # Each distinct cell simulated exactly once, across both workers.
        simulated = [
            spec.spec_hash() for runner in runners for spec in runner.specs
        ]
        assert sorted(simulated) == sorted(
            spec.spec_hash() for spec in make_grid()
        )
        per_worker = {f"w{i}": len(runners[i].specs) for i in range(2)}
        assert sum(per_worker.values()) == 4
        assert all(count >= 1 for count in per_worker.values()), per_worker
        totals = client.stats()
        assert totals["cells_remote"] == 4
        assert totals["failure_kinds"] == {}
        # The delivered cells carry which worker ran them.
        detail = client.job(results.snapshot.job_id).cells_detail
        workers_seen = {row.get("worker") for row in detail}
        assert workers_seen <= {"w0", "w1"}

    def test_worker_remote_failure_surfaces_kind(self, head):
        def crashing(spec):
            raise RuntimeError("sim exploded")

        node = WorkerNode(
            f"http://127.0.0.1:{head.port}",
            worker_id="crashy",
            lease_cells=4,
            poll_s=0.05,
            use_cache=False,
            runner=crashing,
        )
        thread = threading.Thread(target=node.run, daemon=True)
        client = head.client()
        snapshot = client.submit([make_spec()])
        thread.start()
        try:
            results = client.wait(snapshot.job_id)
        finally:
            node.stop()
            thread.join(timeout=10.0)
        assert results.snapshot.failed == 1
        assert results.failures[0].error["kind"] == "error"
        assert "exploded" in results.failures[0].error["message"]


class TestCacheSync:
    def test_worker_warms_local_cache_from_head(self, tmp_path):
        """A worker fetches known artifacts instead of resimulating."""
        head_cache = tmp_path / "head-cache"
        server = LiveServer(
            workers=0,
            use_cache=True,
            cache_dir=str(head_cache),
            lease_ttl_s=5.0,
        ).start()
        try:
            spec = make_spec()
            ResultCache(str(head_cache)).put(spec, fake_stats(spec))

            must_not_run = RecordingRunner()
            node = WorkerNode(
                f"http://127.0.0.1:{server.port}",
                worker_id="warm",
                use_cache=True,
                cache_dir=str(tmp_path / "worker-cache"),
                runner=must_not_run,
            )
            outcome = node._resolve_cell(spec, spec.spec_hash())
            assert outcome.error is None
            assert outcome.simulated is False  # served, not simulated
            assert must_not_run.specs == []
            assert node.counters["cells_head_cache"] == 1
            # ...and the artifact is now local: the next hit is free.
            outcome2 = node._resolve_cell(spec, spec.spec_hash())
            assert node.counters["cells_local_cache"] == 1
            assert outcome2.stats.to_dict() == outcome.stats.to_dict()
        finally:
            server.stop()

    def test_pushed_results_replicate_to_head_cache(self, tmp_path):
        """A cell simulated on a worker becomes a head artifact."""
        head_cache = tmp_path / "head-cache"
        server = LiveServer(
            workers=0,
            use_cache=True,
            cache_dir=str(head_cache),
            lease_ttl_s=5.0,
        ).start()
        try:
            spec = make_spec()
            node = WorkerNode(
                f"http://127.0.0.1:{server.port}",
                worker_id="pusher",
                lease_cells=4,
                poll_s=0.05,
                use_cache=False,
                runner=RecordingRunner(),
            )
            client = server.client()
            snapshot = client.submit([spec])
            node.run(max_batches=1)
            results = client.wait(snapshot.job_id)
            assert results.snapshot.failed == 0
            # GET /cells/<hash> now serves it straight off the head.
            artifact = client.artifact(spec.spec_hash())
            assert artifact["spec"] == spec.to_dict()
            # A warm resubmission is a submit-time cache hit: no lease.
            warm = client.submit([spec])
            assert warm.cached == 1
            assert warm.state == "done"
        finally:
            server.stop()


def _wedged_worker_main(port: int) -> None:
    """Subprocess body: lease the whole grid, then hang forever."""

    def wedge(spec):
        time.sleep(3600.0)

    WorkerNode(
        f"http://127.0.0.1:{port}",
        worker_id="doomed",
        jobs=4,
        lease_cells=8,
        poll_s=0.05,
        use_cache=False,
        runner=wedge,
    ).run()


class TestWorkerFailover:
    def test_kill_dash_nine_mid_sweep_still_converges(self, head):
        """The headline failover contract.

        Worker A leases every cell and wedges; ``kill -9`` removes it
        without any goodbye to the head.  Its heartbeats stop, the lease
        expires, the reaper requeues the cells, and worker B completes
        the grid — ``failed == 0``, with the requeue recorded.
        """
        client = head.client()
        snapshot = client.submit(make_grid())

        ctx = multiprocessing.get_context("fork")
        doomed = ctx.Process(
            target=_wedged_worker_main, args=(head.port,), daemon=True
        )
        doomed.start()
        try:
            # Wait until A owns the whole grid ...
            wait_for(
                lambda: (
                    client.stats()["leases_granted"] >= 1
                    and client.stats()["pending_cells"] == 4
                ),
                what="doomed worker to lease the grid",
            )
            # ... then kill it the unfriendly way, mid-heartbeat.
            os.kill(doomed.pid, signal.SIGKILL)
            doomed.join(timeout=10.0)
            assert doomed.exitcode == -signal.SIGKILL

            rescue_runner = RecordingRunner()
            rescue = WorkerNode(
                f"http://127.0.0.1:{head.port}",
                worker_id="rescue",
                jobs=2,
                lease_cells=8,
                poll_s=0.05,
                use_cache=False,
                runner=rescue_runner,
            )
            thread = threading.Thread(target=rescue.run, daemon=True)
            thread.start()
            try:
                results = client.wait(snapshot.job_id)
            finally:
                rescue.stop()
                thread.join(timeout=10.0)
        finally:
            if doomed.is_alive():
                doomed.kill()
                doomed.join(timeout=10.0)

        assert results.snapshot.failed == 0
        assert len(results.results) == 4
        assert len(rescue_runner.specs) == 4  # B simulated the whole grid
        totals = client.stats()
        assert totals["leases_reaped"] >= 1
        assert totals["cells_requeued"] >= 4  # the worker_lost retry path
        assert totals["failure_kinds"].get("worker_lost") is None
        # The retried cells' delivered records point at the survivor.
        detail = client.job(results.snapshot.job_id).cells_detail
        assert {row.get("worker") for row in detail} == {"rescue"}

    def test_retry_exhaustion_fails_structured(self):
        """With no healthy worker, the budget runs out as worker_lost."""
        server = LiveServer(
            workers=0, use_cache=False, lease_ttl_s=0.2, worker_retries=1
        ).start()
        try:
            client = server.client()
            snapshot = client.submit([make_spec()])
            # Two grants, two expiries, no pushes: attempts exhausted.
            for round_ in range(2):
                wait_for(
                    lambda: not client.lease(
                        f"ghost-{round_}", max_cells=4
                    ).is_empty,
                    what=f"grant {round_} to a ghost worker",
                )
            results = client.wait(snapshot.job_id)
            assert results.snapshot.failed == 1
            error = results.failures[0].error
            assert error["kind"] == "worker_lost"
            assert error["attempts"] == 2
            assert client.stats()["failure_kinds"] == {"worker_lost": 1}
        finally:
            server.stop()


class _CrashingHeartbeatClient(ServeClient):
    """Heartbeats raise a bare (non-Serve) exception — the bug class the
    heartbeat loop must survive instead of dying silently."""

    def heartbeat(self, lease_id, token):
        raise RuntimeError("heartbeat thread bug")


class TestHeartbeatResilience:
    def test_heartbeat_crash_marks_lease_at_risk(self):
        """A crashing heartbeat thread must record the error, stop the
        batch from expanding, and release unstarted cells for an early
        re-lease — not die silently and leave the lease to rot."""
        # TTL 6s: the reaper cannot help here — any requeue within the
        # test window must come from the early-release path.
        server = LiveServer(
            workers=0, use_cache=False, lease_ttl_s=6.0, worker_retries=3
        ).start()
        try:
            gate = threading.Event()
            runner = RecordingRunner(gate=gate)
            node = WorkerNode(
                f"http://127.0.0.1:{server.port}",
                worker_id="flaky-beat",
                jobs=1,
                lease_cells=4,
                poll_s=0.05,
                use_cache=False,
                runner=runner,
                client=_CrashingHeartbeatClient(
                    port=server.port, tenant="worker", timeout_s=60.0
                ),
            )
            thread = threading.Thread(target=node.run, daemon=True)
            client = server.client()
            snapshot = client.submit(make_grid())
            thread.start()
            try:
                # The first beat fires while cell 1 is gated mid-run.
                wait_for(
                    lambda: node.counters["heartbeat_errors"] >= 1,
                    what="the heartbeat crash to be recorded",
                )
                gate.set()
                results = client.wait(snapshot.job_id)
            finally:
                gate.set()
                node.stop()
                thread.join(timeout=10.0)

            assert results.snapshot.failed == 0
            assert len(results.results) == 4
            assert node.counters["heartbeat_errors"] >= 1
            # The at-risk batch gave its unstarted cells back early ...
            assert node.counters["cells_released"] >= 1
            totals = client.stats()
            assert totals["cells_released"] >= 1
            assert totals["leases_reaped"] == 0
            # ... and nothing was executed twice after the re-lease.
            simulated = [spec.spec_hash() for spec in runner.specs]
            assert sorted(simulated) == sorted(
                spec.spec_hash() for spec in make_grid()
            )
        finally:
            server.stop()


class TestGracefulDrain:
    def test_drain_pushes_inflight_and_releases_rest(self, tmp_path):
        """drain(): in-flight cells finish and push; unstarted cells go
        back via POST /leases/<id>/release, not by waiting out the TTL."""
        server = LiveServer(
            workers=0, use_cache=False, lease_ttl_s=30.0, worker_retries=3
        ).start()
        try:
            gate = threading.Event()
            node = WorkerNode(
                f"http://127.0.0.1:{server.port}",
                worker_id="draining",
                jobs=1,
                lease_cells=4,
                poll_s=0.05,
                use_cache=False,
                runner=RecordingRunner(gate=gate),
            )
            thread = threading.Thread(target=node.run, daemon=True)
            client = server.client()
            snapshot = client.submit(make_grid())
            thread.start()
            try:
                wait_for(
                    lambda: client.stats()["leases_granted"] >= 1,
                    what="the worker to lease the grid",
                )
                node.drain()
                gate.set()
                thread.join(timeout=10.0)
                assert not thread.is_alive()
            finally:
                gate.set()
                node.stop()
                thread.join(timeout=10.0)

            # Every leased cell was either pushed or released — none
            # left to the 30s lease TTL.
            done = node.counters["cells_done"]
            released = node.counters["cells_released"]
            assert done >= 1
            assert released >= 1
            assert done + released == 4
            totals = client.stats()
            assert totals["cells_released"] == released
            assert totals["leases_reaped"] == 0
            assert totals["pending_cells"] == released  # requeued now

            # A rescue worker finishes the requeued cells immediately.
            rescue = WorkerNode(
                f"http://127.0.0.1:{server.port}",
                worker_id="rescue",
                jobs=2,
                lease_cells=8,
                poll_s=0.05,
                use_cache=False,
                runner=RecordingRunner(),
            )
            rescue_thread = threading.Thread(target=rescue.run, daemon=True)
            rescue_thread.start()
            try:
                results = client.wait(snapshot.job_id)
            finally:
                rescue.stop()
                rescue_thread.join(timeout=10.0)
            assert results.snapshot.failed == 0
            assert len(results.results) == 4
            assert client.stats()["leases_reaped"] == 0
        finally:
            server.stop()

    def test_drain_on_idle_exits_on_its_own(self, head):
        """drain_on_idle: the worker exits after the head runs dry."""
        runner = RecordingRunner()
        node = WorkerNode(
            f"http://127.0.0.1:{head.port}",
            worker_id="lazy",
            jobs=2,
            lease_cells=8,
            poll_s=0.05,
            drain_on_idle=0.2,
            use_cache=False,
            runner=runner,
        )
        client = head.client()
        snapshot = client.submit(make_grid())
        thread = threading.Thread(target=node.run, daemon=True)
        thread.start()
        thread.join(timeout=15.0)
        assert not thread.is_alive()  # exited without stop()/drain()
        results = client.wait(snapshot.job_id)
        assert results.snapshot.failed == 0
        assert node.counters["cells_done"] == 4


def _sigterm_worker_main(port: int) -> None:
    """Subprocess body: slow cells, default SIGTERM handler = drain."""
    from repro.serve.worker import run_worker

    def slow(spec):
        time.sleep(0.6)
        return fake_stats(spec)

    run_worker(
        f"http://127.0.0.1:{port}",
        worker_id="terminated",
        jobs=1,
        lease_cells=8,
        poll_s=0.05,
        use_cache=False,
        head_outage_grace=5.0,
        runner=slow,
    )


class TestSigtermDrain:
    def test_sigterm_finishes_inflight_and_releases(self):
        """kill -TERM mid-batch: the process finishes the running cell,
        pushes it, releases the unstarted rest, and exits 0."""
        server = LiveServer(
            workers=0, use_cache=False, lease_ttl_s=30.0, worker_retries=3
        ).start()
        try:
            client = server.client()
            snapshot = client.submit(make_grid())

            ctx = multiprocessing.get_context("fork")
            proc = ctx.Process(
                target=_sigterm_worker_main, args=(server.port,), daemon=True
            )
            proc.start()
            try:
                wait_for(
                    lambda: client.stats()["leases_granted"] >= 1,
                    what="the doomed worker to lease the grid",
                )
                os.kill(proc.pid, signal.SIGTERM)
                proc.join(timeout=15.0)
                assert proc.exitcode == 0  # graceful drain, not a crash
            finally:
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=10.0)

            totals = client.stats()
            assert totals["cells_delivered"] >= 1  # in-flight cell pushed
            assert totals["cells_released"] >= 1  # the rest given back
            assert totals["leases_reaped"] == 0  # released, not expired
            assert (
                totals["cells_delivered"] + totals["pending_cells"] == 4
            )

            rescue = WorkerNode(
                f"http://127.0.0.1:{server.port}",
                worker_id="rescue",
                jobs=2,
                lease_cells=8,
                poll_s=0.05,
                use_cache=False,
                runner=RecordingRunner(),
            )
            thread = threading.Thread(target=rescue.run, daemon=True)
            thread.start()
            try:
                results = client.wait(snapshot.job_id)
            finally:
                rescue.stop()
                thread.join(timeout=10.0)
            assert results.snapshot.failed == 0
            assert len(results.results) == 4
        finally:
            server.stop()


class TestWorkerCli:
    def test_worker_role_requires_head(self, capsys):
        from repro.cli import main

        assert main(["serve", "--role", "worker"]) == 64
        assert "--head" in capsys.readouterr().err

    def test_unreachable_head_is_exit_69(self):
        client = ServeClient(port=1)  # nothing listens on port 1
        with pytest.raises(ServeConnectionError) as excinfo:
            client.health()
        assert excinfo.value.exit_code == 69

"""Chaos suite: seeded serve-layer fault schedules must not lose work.

Every test drives a real head + real workers while
:mod:`repro.serve.chaos` injects deterministic faults — dropped and
duplicated RPCs, lost replies, heartbeat blackouts, and a head killed
mid-sweep and restarted on the same cache dir.  The invariants are
always the same:

* the sweep converges (``state == done``, ``failed == 0``);
* **zero lost cells** — every submitted spec has a result;
* **zero double-counted cells** — the head folds each distinct spec at
  most once (``cells_simulated`` equals the distinct-spec count; every
  duplicate push lands in ``results_stale``).

Schedules are plain dataclasses carrying a seed, so a failing run
reproduces by copying the schedule from the parametrize line.
"""

import threading
import time

import pytest

from repro.serve.chaos import ChaosClient, ChaosSchedule, RestartableHead
from repro.serve.worker import WorkerNode
from tests.integration.test_serve_workers import (
    GRID_BENCHMARKS,
    RecordingRunner,
    make_grid,
    wait_for,
)


@pytest.fixture
def chaos_head(tmp_path):
    head = RestartableHead(
        tmp_path / "cache", lease_ttl_s=1.5, worker_retries=10
    ).start()
    yield head
    head.stop()


def run_workers_until_done(head, schedule, n_workers=2, grace=20.0):
    """Boot chaos workers, submit the grid, wait for convergence."""
    runners = [RecordingRunner() for __ in range(n_workers)]
    nodes = [
        WorkerNode(
            head.url,
            worker_id=f"cw{i}",
            jobs=2,
            lease_cells=2,
            poll_s=0.05,
            use_cache=False,
            head_outage_grace=grace,
            runner=runners[i],
            client=ChaosClient(
                ChaosSchedule(seed=schedule.seed + i, **{
                    field: getattr(schedule, field)
                    for field in (
                        "drop_rpc_p", "drop_reply_p", "duplicate_rpc_p",
                        "delay_p", "delay_s", "heartbeat_blackout",
                    )
                }),
                port=head.port,
                tenant="worker",
                timeout_s=30.0,
            ),
        )
        for i in range(n_workers)
    ]
    threads = [
        threading.Thread(target=node.run, daemon=True) for node in nodes
    ]

    client = head.client()
    snapshot = client.submit(make_grid())
    for thread in threads:
        thread.start()
    try:
        results = client.wait(snapshot.job_id)
    finally:
        for node in nodes:
            node.stop()
        for thread in threads:
            thread.join(timeout=15.0)
    return results, runners, client.stats()


SCHEDULES = [
    ChaosSchedule(seed=101, drop_rpc_p=0.15, delay_p=0.25, delay_s=0.01),
    ChaosSchedule(seed=202, drop_reply_p=0.15, duplicate_rpc_p=0.15),
    ChaosSchedule(
        seed=303, drop_rpc_p=0.1, drop_reply_p=0.1,
        duplicate_rpc_p=0.1, delay_p=0.1, delay_s=0.01,
    ),
]


class TestSeededRpcChaos:
    @pytest.mark.parametrize(
        "schedule", SCHEDULES, ids=lambda s: f"seed{s.seed}"
    )
    def test_sweep_converges_without_loss_or_double_count(
        self, chaos_head, schedule
    ):
        results, runners, stats = run_workers_until_done(
            chaos_head, schedule
        )
        assert results.snapshot.state == "done"
        assert results.snapshot.failed == 0
        # Zero lost cells: every submitted benchmark has a result.
        got = sorted(item.spec.benchmark for item in results.results)
        assert got == sorted(GRID_BENCHMARKS)
        # Zero double-counted cells: one fold per distinct spec; any
        # re-pushed duplicates were classified stale, not folded.
        assert stats["cells_simulated"] == len(GRID_BENCHMARKS)
        assert stats["cells_delivered"] == len(GRID_BENCHMARKS)

    def test_heartbeat_blackout_relies_on_reaper(self, chaos_head):
        """Dropping every early heartbeat forces reap + re-lease, and
        the sweep still converges with exactly-once folds."""
        schedule = ChaosSchedule(seed=404, heartbeat_blackout=(0, 8))
        results, runners, stats = run_workers_until_done(
            chaos_head, schedule
        )
        assert results.snapshot.state == "done"
        assert results.snapshot.failed == 0
        assert stats["cells_simulated"] == len(GRID_BENCHMARKS)
        # The blackout really fired: leases were reaped or the batch
        # was marked lost — either way the head requeued and recovered.
        assert stats["results_stale"] >= 0  # duplicate pushes are benign


class TestScheduleDeterminism:
    def test_same_seed_same_fault_plan(self):
        schedule = ChaosSchedule(
            seed=7, drop_rpc_p=0.3, drop_reply_p=0.2,
            duplicate_rpc_p=0.2, delay_p=0.3,
        )
        paths = ["/leases", "/leases/l1/heartbeat", "/leases/l1/results"] * 5
        plans_a = [ChaosClient(schedule)._plan(p) for p in paths]
        plans_b = [ChaosClient(schedule)._plan(p) for p in paths]
        assert plans_a == plans_b
        assert any(
            any(plan[k] for k in ("drop", "drop_reply", "duplicate", "delay"))
            for plan in plans_a
        )


class TestHeadKillRestart:
    def test_kill_mid_sweep_resumes_without_reexecution(self, tmp_path):
        """The tentpole acceptance: kill the head at a cell boundary,
        restart it on the same cache dir, and the sweep finishes with
        every cell executed exactly once and nothing double-counted."""
        head = RestartableHead(
            tmp_path / "cache", lease_ttl_s=30.0, worker_retries=5
        )
        head.kill_after_folds = 2  # crash right after the 2nd fold
        head.start()
        runners = [RecordingRunner(), RecordingRunner()]
        nodes = [
            WorkerNode(
                head.url,
                worker_id=f"kw{i}",
                jobs=1,
                lease_cells=2,
                poll_s=0.05,
                use_cache=False,
                head_outage_grace=30.0,
                runner=runners[i],
            )
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=node.run, daemon=True) for node in nodes
        ]
        try:
            client = head.client(outage_grace_s=30.0)
            snapshot = client.submit(make_grid())
            for thread in threads:
                thread.start()
            head.wait_down(timeout_s=30.0)  # the armed crash fired
            time.sleep(0.2)  # let workers hit the dead head and buffer
            head.restart()
            results = client.wait(snapshot.job_id)
            wait_for(
                lambda: head.client().stats()["leases_open"] == 0,
                timeout_s=10.0,
                what="workers to finish their leases",
            )
            stats = head.client().stats()
        finally:
            for node in nodes:
                node.stop()
            for thread in threads:
                thread.join(timeout=15.0)
            head.stop()

        assert head.restarts == 1
        assert results.snapshot.state == "done"
        assert results.snapshot.failed == 0
        got = sorted(item.spec.benchmark for item in results.results)
        assert got == sorted(GRID_BENCHMARKS)
        # Exactly-once execution across the crash: journaled results
        # were re-served, buffered pushes were accepted on the restored
        # leases, and nothing was simulated twice.
        executed = [
            spec.spec_hash() for runner in runners for spec in runner.specs
        ]
        assert sorted(executed) == sorted(
            spec.spec_hash() for spec in make_grid()
        )
        assert stats["jobs_recovered"] >= 1
        assert stats["cells_simulated"] == len(GRID_BENCHMARKS)

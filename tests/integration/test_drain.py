"""Drain regression for the medium-load pathology (paper-scale mesh).

At 0.05 packets/node/cycle the 16x8x2 pillar mesh is *above* its
inter-layer saturation point: four dTDMA pillars move at most 4
flits/cycle between layers, while uniform random traffic asks half of
all packets to change layers — a sustainable cross-layer rate of only
about 0.0078 packets/node/cycle (4 pillar flits/cycle divided by
256 nodes * 1/2 cross-layer * 4-flit packets).  A backlog at 0.05 is therefore expected and not a
bug.  The historical *pathology* was that the backlog never drained
even after injection stopped: pre-vertical and post-vertical packets
shared one VC pool, so pillar RX queues could fill every downstream VC
and deadlock the fabric against its own credit loop.

The fix partitions VC classes (``NetworkConfig.vc_split``): cross-layer
packets may only occupy the low VC window before their pillar hop,
leaving the high window free for intra-layer delivery.  This test locks
in the fixed behaviour on every fabric: stop injecting, and the backlog
must reach zero with ``delivered_fraction`` == 1.0.
"""

from __future__ import annotations

import pytest

from repro.noc.network import Network, NetworkConfig
from repro.noc.traffic import UniformRandomTraffic

PILLARS = ((3, 3), (11, 3), (7, 5), (14, 6))
RATE = 0.05
CYCLES = 400
SEED = 7
DRAIN_BUDGET = 5_000


def _build(fabric):
    config = NetworkConfig(
        width=16, height=8, layers=2, pillar_locations=PILLARS
    )
    network = Network(config, fabric=fabric)
    traffic = UniformRandomTraffic(network, RATE, seed=SEED)
    return network, traffic


@pytest.mark.parametrize("fabric", ["optimized", "vector"])
def test_medium_load_backlog_drains(fabric):
    if fabric == "vector":
        pytest.importorskip("numpy")
    network, traffic = _build(fabric)
    network.engine.run(CYCLES)

    backlog = network.in_flight
    assert backlog > 0, "0.05 must be above the inter-layer saturation point"
    assert network.delivered_fraction() < 1.0

    traffic.injection_rate = 0.0
    drained_at = None
    for cycle in range(DRAIN_BUDGET):
        network.engine.step()
        if network.in_flight == 0:
            drained_at = cycle
            break
    assert drained_at is not None, (
        f"{backlog} packets still wedged after {DRAIN_BUDGET} drain cycles"
    )

    assert network.delivered_fraction() == 1.0
    ages = network.in_flight_ages()
    assert ages["count"] == 0
    received = network.stats.scope("nic").counter("packets_received").value
    assert received == traffic.packets_sent


def test_vc_split_partitions_classes_only_in_3d():
    """The deadlock fix is active exactly when there are multiple layers."""
    flat = NetworkConfig(width=4, height=4, layers=1)
    assert flat.vc_split == 0
    stacked = NetworkConfig(
        width=4, height=4, layers=2, pillar_locations=((1, 1),)
    )
    assert stacked.vc_split == stacked.num_vcs // 2

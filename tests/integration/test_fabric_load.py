"""Fabric behaviour under load: saturation, fairness, pillar contention."""

import pytest

from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import Coord
from repro.noc.traffic import HotspotTraffic, UniformRandomTraffic


def test_latency_monotone_in_injection_rate():
    """Mean latency rises with offered load on the cycle-accurate mesh."""
    means = []
    for rate in (0.005, 0.03):
        network = Network(NetworkConfig(width=6, height=6, layers=1))
        generator = UniformRandomTraffic(network, rate, seed=13)
        generator.run(1_500)
        means.append(network.mean_packet_latency())
    assert means[1] > means[0]


def test_pillar_hotspot_raises_latency():
    """Aiming traffic at one pillar column congests it (Section 3.3)."""
    means = []
    for fraction in (0.0, 0.85):
        network = Network(
            NetworkConfig(width=6, height=6, layers=2,
                          pillar_locations=((2, 2), (4, 4)))
        )
        generator = HotspotTraffic(
            network, 0.007,
            hotspots=[Coord(2, 2, 0), Coord(2, 2, 1)],
            hotspot_fraction=fraction, seed=5,
        )
        generator.run(1_500)
        means.append(network.mean_packet_latency())
    assert means[1] > means[0]


def test_no_packet_lost_under_heavy_load():
    network = Network(NetworkConfig(width=5, height=5, layers=1))
    generator = UniformRandomTraffic(network, 0.05, seed=2)
    generator.run(800)
    received = network.stats.counter("nic.packets_received").value
    assert received == generator.packets_sent
    assert network.in_flight == 0


def test_bus_utilization_grows_with_cross_layer_load():
    utils = []
    for rate in (0.002, 0.01):
        network = Network(
            NetworkConfig(width=4, height=4, layers=2,
                          pillar_locations=((1, 1), (2, 2)))
        )
        generator = UniformRandomTraffic(network, rate, seed=8)
        generator.run(1_200)
        total = sum(p.utilization for p in network.pillars.values())
        utils.append(total)
    assert utils[1] > utils[0]


def test_router_blocked_cycles_recorded_under_contention():
    network = Network(NetworkConfig(width=4, height=4, layers=1))
    generator = UniformRandomTraffic(network, 0.08, seed=4)
    generator.run(600)
    blocked = sum(
        network.stats.counter(f"router{coord}.cycles_blocked").value
        for coord in network.routers
    )
    assert blocked > 0

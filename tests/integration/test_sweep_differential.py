"""Differential tests: parallel and cached sweeps vs the serial reference.

The acceptance bar for the orchestrator: fanning cells out across worker
processes — or replaying them from the on-disk cache — must produce
``RunStats`` bit-identical to running the same specs serially in one
process.
"""

import pytest

from repro.core.schemes import Scheme
from repro.experiments.config import ExperimentScale
from repro.experiments.orchestrator import run_sweep
from repro.experiments.spec import SimSpec, run_spec

TINY = ExperimentScale(name="tiny", refs_per_cpu=1_500)

GRID = [
    SimSpec.make(scheme, benchmark, scale=TINY)
    for scheme in (Scheme.CMP_DNUCA_2D, Scheme.CMP_DNUCA_3D)
    for benchmark in ("art", "swim")
]


@pytest.fixture(scope="module")
def serial_reference():
    """The ground truth: every cell simulated inline, no cache."""
    return {spec: run_spec(spec) for spec in GRID}


def test_parallel_sweep_bit_identical_to_serial(serial_reference):
    summary = run_sweep(GRID, jobs=4, use_cache=False)
    assert summary.failed == 0
    assert summary.simulated == len(GRID)
    for spec in GRID:
        assert summary.results[spec].to_dict() == (
            serial_reference[spec].to_dict()
        )


def test_warm_cache_replays_bit_identical(serial_reference, tmp_path):
    cold = run_sweep(GRID, jobs=4, cache_dir=str(tmp_path))
    assert cold.simulated == len(GRID)
    warm = run_sweep(GRID, jobs=4, cache_dir=str(tmp_path))
    assert warm.simulated == 0          # the sweep-summary counter proves
    assert warm.cached == len(GRID)     # no simulation executed
    for spec in GRID:
        assert warm.results[spec].to_dict() == (
            serial_reference[spec].to_dict()
        )


def test_sweep_order_does_not_matter(serial_reference):
    summary = run_sweep(list(reversed(GRID)), jobs=2, use_cache=False)
    for spec in GRID:
        assert summary.results[spec].to_dict() == (
            serial_reference[spec].to_dict()
        )

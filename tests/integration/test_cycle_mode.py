"""Cycle-accurate system mode: real packets for every transaction leg."""

import pytest

from repro.cache.nuca import AccessType
from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, SystemConfig
from repro.cpu.trace import OP_READ


@pytest.fixture(scope="module")
def cycle_system():
    return NetworkInMemory(
        SystemConfig(scheme=Scheme.CMP_DNUCA_3D, mode="cycle")
    )


def test_cycle_mode_constructs_real_fabric(cycle_system):
    network = cycle_system.pricer.network
    chip = cycle_system.setup.chip
    assert len(network.routers) == chip.mesh_dims[0] * chip.mesh_dims[1] * 2
    assert len(network.pillars) == 8


def test_cycle_mode_miss_then_hit(cycle_system):
    miss = cycle_system.l2_transaction(0, 0x5000_0000, AccessType.READ, 0.0)
    assert not miss.hit
    hit = cycle_system.l2_transaction(0, 0x5000_0000, AccessType.READ, 1e4)
    assert hit.hit
    assert hit.latency < miss.latency


def test_cycle_mode_local_hit_cheap(cycle_system):
    local = cycle_system.l2.search.plan(1).local_cluster
    address = cycle_system.l2.addr_map.compose(local, 64)
    cycle_system.l2_transaction(1, address, AccessType.READ, 0.0)
    hit = cycle_system.l2_transaction(1, address, AccessType.READ, 1e4)
    assert hit.search_step == 1
    assert hit.latency < 50


def test_cycle_mode_agrees_with_model_on_hits():
    """For identical transactions, model and cycle pricing must agree
    within the model's calibration tolerance."""
    results = {}
    for mode in ("model", "cycle"):
        system = NetworkInMemory(
            SystemConfig(scheme=Scheme.CMP_SNUCA_3D, mode=mode)
        )
        local = system.l2.search.plan(0).local_cluster
        remote = system.l2.search.plan(0).step2[0]
        latencies = []
        for cluster in (local, remote):
            address = system.l2.addr_map.compose(cluster, 128)
            system.l2_transaction(0, address, AccessType.READ, 0.0)
            hit = system.l2_transaction(0, address, AccessType.READ, 1e4)
            latencies.append(hit.latency)
        results[mode] = latencies
    for model_latency, cycle_latency in zip(results["model"], results["cycle"]):
        assert model_latency == pytest.approx(cycle_latency, rel=0.25, abs=4)


def test_cycle_mode_runs_a_small_trace():
    system = NetworkInMemory(
        SystemConfig(scheme=Scheme.CMP_DNUCA_3D, mode="cycle")
    )
    traces = [
        [(2, OP_READ, 0x1000 + cpu * 0x40), (2, OP_READ, 0x9000 + cpu * 0x40)]
        for cpu in range(8)
    ]
    stats = system.run_trace(traces)
    assert stats.l2_accesses == 16
    assert stats.avg_l2_miss_latency > system.config.memory_latency


def test_cycle_mode_vector_identical_across_sparse_thresholds():
    """End-to-end: the scalar/batched switch is invisible to RunStats.

    Cycle mode prices transactions leg-at-a-time, so the vector fabric
    spends the whole run at or near zero occupancy — the exact regime
    the sparse path serves.  Pinning the threshold to the extremes must
    leave every system-level statistic untouched.
    """
    pytest.importorskip("numpy")
    traces = [
        [(2, OP_READ, 0x1000 + cpu * 0x40), (2, OP_READ, 0x9000 + cpu * 0x40)]
        for cpu in range(8)
    ]
    results = []
    for threshold in (0, 10**9):
        system = NetworkInMemory(
            SystemConfig(
                scheme=Scheme.CMP_DNUCA_3D,
                mode="cycle",
                noc_fabric="vector",
                noc_sparse_threshold=threshold,
            )
        )
        stats = system.run_trace([list(t) for t in traces])
        results.append(
            (
                stats.l2_accesses,
                stats.l2_hits,
                stats.avg_l2_hit_latency,
                stats.avg_l2_miss_latency,
            )
        )
    assert results[0] == results[1]

"""The paper's primary contribution: the 3D Network-in-Memory architecture.

This package assembles the substrates into the proposed system: a 3D
stacked chip whose L2 cache banks are organized into clusters connected by
a per-layer NoC mesh, bridged vertically by dTDMA bus pillars, with CPUs
placed by a thermal-aware placement algorithm and data managed by
3D-tailored NUCA policies.
"""

from repro.core.chip import ChipConfig, ChipTopology, Cluster, NodeRole
from repro.core.placement import (
    PlacementPolicy,
    place_pillars,
    place_cpus,
    algorithm1_offsets,
)
from repro.core.latency_model import LatencyModel, LatencyModelConfig
from repro.core.schemes import Scheme, make_chip_config
from repro.core.system import NetworkInMemory, SystemConfig, TransactionResult

__all__ = [
    "ChipConfig",
    "ChipTopology",
    "Cluster",
    "NodeRole",
    "PlacementPolicy",
    "place_pillars",
    "place_cpus",
    "algorithm1_offsets",
    "LatencyModel",
    "LatencyModelConfig",
    "Scheme",
    "make_chip_config",
    "NetworkInMemory",
    "SystemConfig",
    "TransactionResult",
]

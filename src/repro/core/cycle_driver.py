"""Cycle-accurate transaction pricing over the real NoC/dTDMA fabric.

``mode="cycle"`` replaces the analytic latency model with the flit-level
simulator: every leg of a transaction (tag query, bank request, data
return, ...) is a real packet injected into the fabric, and the engine is
run until delivery.  Transactions are priced one at a time — the exact
per-leg latencies include every router, VC, credit and bus-arbitration
effect at the offered background load (injected invalidation/migration
packets keep flying while later legs are measured).

This mode is orders of magnitude slower than the model and exists to
(a) validate the model's calibration and (b) let tests and microbenchmarks
measure ground truth on small configurations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.noc.network import Network, NetworkConfig
from repro.noc.packet import MessageClass
from repro.noc.routing import Coord
from repro.cache.nuca import AccessType

if TYPE_CHECKING:
    from repro.core.system import NetworkInMemory
    from repro.cache.nuca import AccessOutcome  # noqa: F401


class CyclePricer:
    """Prices transactions by flying real packets through the fabric."""

    def __init__(self, system: "NetworkInMemory"):
        self.system = system
        self.cfg = system.config
        self.topology = system.topology
        chip = system.setup.chip
        width, height = chip.mesh_dims
        network_config = NetworkConfig(
            width=width,
            height=height,
            layers=chip.num_layers,
            pillar_locations=tuple(system.topology.pillar_xys),
            packet_flits=system.config.data_flits,
        )
        if system.config.noc_sparse_threshold is not None:
            network_config.sparse_threshold = system.config.noc_sparse_threshold
        self.network = Network(
            network_config,
            # One transaction leg in flight at a time leaves most of the
            # fabric quiescent, which is exactly where the activity-tracked
            # kernel's idle fast-forward pays off.
            activity_tracking=system.config.activity_tracking,
            fabric=system.config.noc_fabric,
            tracer=system.tracer,
        )

    # -- helpers ------------------------------------------------------------

    def _leg_latency(self, packet) -> float:
        """Delivered latency, or the loss penalty for a dropped packet.

        Under fault injection a leg can be lost (dead-pillar blackhole or
        unreachable destination).  The requester does not wait forever: a
        lost leg is priced as one off-chip-memory-sized penalty — the
        detection/retry cost — so degraded runs complete with degraded
        latency instead of hanging.
        """
        if packet.lost:
            return float(self.cfg.memory_latency)
        return float(packet.latency)

    def _leg(
        self,
        src: Coord,
        dest: Coord,
        size_flits: int,
        message_class: MessageClass = MessageClass.REQUEST,
    ) -> float:
        """Send one packet and run the fabric until it arrives (or dies)."""
        if src == dest:
            return 0.0
        packet = self.network.send(
            src, dest, size_flits=size_flits, message_class=message_class
        )
        self.network.engine.run_until(
            lambda: packet.ejected_cycle is not None or packet.lost,
            max_cycles=1_000_000,
        )
        return self._leg_latency(packet)

    def _fire_and_forget(
        self, src: Coord, dest: Coord, size_flits: int,
        message_class: MessageClass,
    ) -> None:
        if src != dest:
            self.network.send(
                src, dest, size_flits=size_flits, message_class=message_class
            )

    # -- pricing ----------------------------------------------------------------

    def price(self, cpu_id: int, outcome: "AccessOutcome", cycle: float) -> float:
        cfg = self.cfg
        cpu_node = self.topology.cpu_positions[cpu_id]
        tag_node = outcome.tag_node
        bank_node = outcome.bank_node

        if outcome.migration is not None:
            src, dst = outcome.migration
            topo = self.topology
            self._fire_and_forget(
                topo.clusters[src].center, topo.clusters[dst].center,
                cfg.data_flits, MessageClass.MIGRATION,
            )
            self._fire_and_forget(
                topo.clusters[dst].center, topo.clusters[src].center,
                cfg.data_flits, MessageClass.MIGRATION,
            )

        if self.system.setup.perfect_search:
            return self._price_perfect(cpu_node, outcome)

        is_write = outcome.access_type == AccessType.WRITE
        plan = self.system.l2.search.plan(cpu_id)
        topo = self.topology
        step1_targets = [
            topo.clusters[c].tag_node
            for c in plan.step1
            if c != plan.local_cluster
        ]
        step2_targets = [topo.clusters[c].tag_node for c in plan.step2]

        if outcome.hit and outcome.search_step == 1:
            for target in step1_targets:
                if target != tag_node:
                    self._fire_and_forget(
                        cpu_node, target, cfg.request_flits,
                        MessageClass.REQUEST,
                    )
            if outcome.cluster == plan.local_cluster:
                latency = float(cfg.tag_latency)
            else:
                latency = self._leg(cpu_node, tag_node, cfg.request_flits)
                latency += cfg.tag_latency
            return latency + self._data_phase(
                tag_node, bank_node, cpu_node, is_write
            )

        latency = self._query_round(cpu_node, step1_targets)
        if outcome.hit:
            for target in step2_targets:
                if target != tag_node:
                    self._fire_and_forget(
                        cpu_node, target, cfg.request_flits,
                        MessageClass.REQUEST,
                    )
            latency += self._leg(cpu_node, tag_node, cfg.request_flits)
            latency += cfg.tag_latency
            latency += self._data_phase(
                tag_node, bank_node, cpu_node, is_write
            )
            return latency

        latency += self._query_round(cpu_node, step2_targets)
        latency += cfg.memory_latency
        self._fire_and_forget(
            self.system.memory_node, bank_node, cfg.data_flits,
            MessageClass.DATA,
        )
        return latency

    def _query_round(self, cpu_node: Coord, targets: list[Coord]) -> float:
        """Parallel query round: all queries fly, the worst RTT decides."""
        cfg = self.cfg
        packets = []
        for target in targets:
            if target == cpu_node:
                continue
            packets.append(
                (
                    self.network.send(
                        cpu_node, target, cfg.request_flits,
                        MessageClass.REQUEST,
                    ),
                    target,
                )
            )
        worst = float(cfg.tag_latency)
        for packet, target in packets:
            self.network.engine.run_until(
                lambda p=packet: p.ejected_cycle is not None or p.lost,
                max_cycles=1_000_000,
            )
            reply = self._leg(target, cpu_node, cfg.request_flits)
            worst = max(
                worst, self._leg_latency(packet) + cfg.tag_latency + reply
            )
        return worst

    def _data_phase(
        self,
        tag_node: Coord,
        bank_node: Coord,
        cpu_node: Coord,
        is_write: bool = False,
    ) -> float:
        cfg = self.cfg
        latency = 0.0
        if is_write:
            if cpu_node != bank_node:
                latency += self._leg(
                    cpu_node, bank_node, cfg.data_flits, MessageClass.DATA
                )
            return latency + cfg.bank_latency
        if tag_node != bank_node:
            latency += self._leg(tag_node, bank_node, cfg.request_flits)
        latency += cfg.bank_latency
        if bank_node != cpu_node:
            latency += self._leg(
                bank_node, cpu_node, cfg.data_flits, MessageClass.DATA
            )
        return latency

    def _price_perfect(self, cpu_node: Coord, outcome: "AccessOutcome") -> float:
        cfg = self.cfg
        latency = self._leg(cpu_node, outcome.tag_node, cfg.request_flits)
        latency += cfg.tag_latency
        if outcome.hit:
            return latency + self._data_phase(
                outcome.tag_node, outcome.bank_node, cpu_node,
                outcome.access_type == AccessType.WRITE,
            )
        self._fire_and_forget(
            self.system.memory_node, outcome.bank_node, cfg.data_flits,
            MessageClass.DATA,
        )
        return latency + cfg.memory_latency

    def charge_invalidations(
        self, src: Coord, cpu_targets: list[int], cycle: float
    ) -> None:
        cfg = self.cfg
        for cpu in cpu_targets:
            node = self.topology.cpu_positions[cpu]
            self._fire_and_forget(
                src, node, cfg.request_flits, MessageClass.COHERENCE
            )
            self._fire_and_forget(
                node, src, cfg.request_flits, MessageClass.COHERENCE
            )

"""Contention-aware analytic network latency model.

Flit-level simulation of the paper's multi-billion-cycle runs is infeasible
in Python, so the system-level simulator (``mode="model"``) prices each
packet with this model instead of injecting flits.  The model mirrors the
cycle-accurate fabric's zero-load behaviour exactly and approximates
contention with M/D/1-style queueing terms driven by online load estimates:

* **zero-load**: one cycle per mesh hop (single-stage router with the link
  folded in, as in the cycle simulator), a fixed injection/ejection
  overhead, wormhole serialization of ``size - 1`` flits, and two extra
  cycles for a vertical bus crossing (transceiver + bus slot).
* **mesh contention**: per-hop queueing wait of
  ``q_mesh * rho / (1 - rho)`` where ``rho`` is the estimated flit-hop
  utilization of the mesh.
* **pillar contention**: the bus serves one flit per cycle shared by all
  active clients; at utilization ``rho_b`` the head flit waits
  ``q_bus * rho_b / (1 - rho_b)`` and serialization across the bus
  stretches by ``1 / (1 - rho_b)``.

The q-constants are calibrated against the cycle-accurate simulator
(``tests/integration/test_model_calibration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.noc.routing import Coord, best_pillar
from repro.core.chip import ChipTopology

if TYPE_CHECKING:
    from repro.faults.state import FaultState


@dataclass
class LatencyModelConfig:
    """Tunables of the analytic latency model."""

    hop_cycles: float = 2.0          # per mesh hop (1 router + 1 wire)
    injection_overhead: float = 1.0  # NIC inject + eject, measured
    bus_overhead: float = 2.0        # transceiver hand-off + slot grant
    q_mesh: float = 0.7              # mesh queueing weight (calibrated)
    q_bus: float = 1.0               # bus queueing weight (calibrated)
    mesh_capacity_factor: float = 0.40   # saturation flits/node/cycle
    load_window: float = 2048.0      # cycles of EMA memory for load
    max_utilization: float = 0.95    # clamp to keep waits finite


class LatencyModel:
    """Prices packets on the Network-in-Memory fabric.

    The model is stateful: callers report every packet they send via
    :meth:`note_packet` so utilization estimates track the offered load.
    """

    def __init__(self, topology: ChipTopology, config: Optional[LatencyModelConfig] = None):
        self.topology = topology
        self.config = config or LatencyModelConfig()
        width, height = topology.config.mesh_dims
        self._num_nodes = width * height * topology.config.num_layers
        # Load accounting: decaying rates, advanced lazily per report.
        self._last_cycle = 0.0
        self._mesh_rate = 0.0                     # flit-hops per cycle
        self._bus_rate: dict[tuple[int, int], float] = {
            xy: 0.0 for xy in topology.pillar_xys
        }
        self.flit_hops_total = 0.0
        self.bus_flits_total = 0.0
        self.bus_flits_by_pillar: dict[tuple[int, int], float] = {
            xy: 0.0 for xy in topology.pillar_xys
        }
        # Pillar faults: the alive-pillar tuple is re-derived lazily,
        # keyed by the fault state's epoch (None = fault-free).
        self._faults: Optional["FaultState"] = None
        self._alive_pillars = tuple(topology.pillar_xys)
        self._alive_epoch = -1

    def attach_fault_state(self, state: "FaultState") -> None:
        """Bind pillar-fault state; dead pillars leave the route pool."""
        self._faults = state

    def _pillar_pool(self) -> tuple[tuple[int, int], ...]:
        faults = self._faults
        if faults is None:
            return self._alive_pillars
        if faults.epoch != self._alive_epoch:
            self._alive_pillars = tuple(
                xy for xy in self.topology.pillar_xys
                if xy not in faults.dead_pillars
            )
            self._alive_epoch = faults.epoch
        return self._alive_pillars

    # -- geometry -------------------------------------------------------------

    def path(self, src: Coord, dest: Coord) -> tuple[int, Optional[tuple[int, int]]]:
        """(mesh hops, pillar used or None) for the dimension-order path."""
        if src.z == dest.z:
            return src.manhattan_2d(dest), None
        pillar = best_pillar(src, dest, self._pillar_pool())
        px, py = pillar
        hops = (
            abs(src.x - px) + abs(src.y - py)
            + abs(dest.x - px) + abs(dest.y - py)
        )
        return hops, pillar

    # -- load tracking ----------------------------------------------------------

    def _decay_to(self, cycle: float) -> None:
        """Exponentially age the rate estimates up to ``cycle``."""
        elapsed = cycle - self._last_cycle
        if elapsed <= 0:
            return
        decay = 0.5 ** (elapsed / self.config.load_window)
        self._mesh_rate *= decay
        for xy in self._bus_rate:
            self._bus_rate[xy] *= decay
        self._last_cycle = cycle

    def note_packet(self, src: Coord, dest: Coord, size_flits: int, cycle: float) -> None:
        """Record a packet's traffic contribution for load estimation.

        The EMA update adds the packet's flit-hops amortized over the load
        window, so ``_mesh_rate`` approximates flit-hops per cycle.
        """
        self._decay_to(cycle)
        hops, pillar = self.path(src, dest)
        flit_hops = hops * size_flits
        window = self.config.load_window
        # ln(2) factor makes the half-life equal to the window length.
        self._mesh_rate += flit_hops * 0.693 / window
        self.flit_hops_total += flit_hops
        if pillar is not None:
            self._bus_rate[pillar] += size_flits * 0.693 / window
            self.bus_flits_total += size_flits
            self.bus_flits_by_pillar[pillar] += size_flits

    def mesh_utilization(self) -> float:
        """Estimated fraction of mesh forwarding capacity in use."""
        capacity = self._num_nodes * self.config.mesh_capacity_factor
        rho = self._mesh_rate / capacity if capacity else 0.0
        return min(rho, self.config.max_utilization)

    def bus_utilization(self, pillar: tuple[int, int]) -> float:
        """Estimated fraction of one pillar's bus bandwidth in use."""
        rho = self._bus_rate.get(pillar, 0.0)
        return min(rho, self.config.max_utilization)

    # -- latency ---------------------------------------------------------------

    def packet_latency(
        self,
        src: Coord,
        dest: Coord,
        size_flits: int,
        cycle: Optional[float] = None,
        record: bool = True,
    ) -> float:
        """End-to-end latency of one packet under the current load."""
        cfg = self.config
        if src == dest:
            return 0.0
        hops, pillar = self.path(src, dest)
        if cycle is not None:
            self._decay_to(cycle)
        rho = self.mesh_utilization()
        per_hop_wait = cfg.q_mesh * rho / (1.0 - rho)
        latency = cfg.injection_overhead
        latency += hops * (cfg.hop_cycles + per_hop_wait)
        serialization = float(size_flits - 1)
        if pillar is not None:
            rho_b = self.bus_utilization(pillar)
            latency += cfg.bus_overhead
            latency += cfg.q_bus * rho_b / (1.0 - rho_b)
            serialization = serialization / (1.0 - rho_b)
        latency += serialization
        if record and cycle is not None:
            self.note_packet(src, dest, size_flits, cycle)
        return latency

    def zero_load_latency(self, src: Coord, dest: Coord, size_flits: int) -> float:
        """Latency ignoring all contention (for tests and sanity checks)."""
        cfg = self.config
        if src == dest:
            return 0.0
        hops, pillar = self.path(src, dest)
        latency = cfg.injection_overhead + hops * cfg.hop_cycles
        latency += size_flits - 1
        if pillar is not None:
            latency += cfg.bus_overhead
        return latency

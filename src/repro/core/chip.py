"""3D chip geometry: layers, cluster tiling, banks, CPUs, and pillars.

The L2 space is divided into 16 clusters of banks (paper Table 4: 16
clusters of 16 x 64KB banks for the 16 MB cache).  Clusters tile each
device layer; the tiling adapts to the layer count so total capacity and
cluster count stay constant:

* 1 layer  — 4 x 4 clusters on one 16 x 16 mesh (the 2D baselines),
* 2 layers — 4 x 2 clusters per layer on 16 x 8 meshes,
* 4 layers — 2 x 2 clusters per layer on 8 x 8 meshes.

Larger caches (Fig 16) grow the *cluster* (more banks per cluster) while
keeping 16 clusters and 16-way associativity, exactly as the paper scales.

Every mesh node hosts an L2 bank; CPU nodes additionally host a CPU (the
paper notes the CPU+L1 may span the area of multiple banks — we co-locate
the displaced bank at the CPU node, preserving total capacity).  Each
cluster has one tag array, placed at the cluster's CPU if it has one
(direct connection, per Section 4.1) and at the cluster's center node
otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.noc.routing import Coord


class NodeRole(enum.Enum):
    """What a mesh node hosts besides its router."""

    BANK = "bank"
    CPU = "cpu"              # CPU + co-located bank
    PILLAR_BANK = "pillar"   # bank whose router also hosts a pillar


# banks-per-cluster -> cluster tile (width, height) in nodes
_CLUSTER_TILES = {
    16: (4, 4), 32: (8, 4), 64: (8, 8), 128: (16, 8),
    # Beyond-paper scale: 256 MB over 4 layers tiles each cluster
    # 16x16, giving the 32x32-per-layer mesh the vector fabric targets.
    256: (16, 16),
}

# clusters-per-layer -> cluster-grid (columns, rows)
_CLUSTER_GRIDS = {16: (4, 4), 8: (4, 2), 4: (2, 2), 2: (2, 1), 1: (1, 1)}


@dataclass
class ChipConfig:
    """Physical configuration of the 3D chip (paper Table 4 defaults)."""

    num_cpus: int = 8
    num_layers: int = 2
    num_pillars: int = 8
    cache_mb: int = 16
    bank_kb: int = 64
    line_bytes: int = 64
    associativity: int = 16
    num_clusters: int = 16

    def validate(self) -> None:
        if self.num_layers not in (1, 2, 4, 8):
            raise ValueError(f"unsupported layer count {self.num_layers}")
        if self.num_clusters % self.num_layers != 0:
            raise ValueError("clusters must divide evenly across layers")
        if self.total_banks % self.num_clusters != 0:
            raise ValueError("banks must divide evenly across clusters")
        if self.banks_per_cluster not in _CLUSTER_TILES:
            raise ValueError(
                f"no tiling for {self.banks_per_cluster} banks/cluster"
            )
        if self.clusters_per_layer not in _CLUSTER_GRIDS:
            raise ValueError(
                f"no grid for {self.clusters_per_layer} clusters/layer"
            )
        if self.num_layers > 1 and self.num_pillars < 1:
            raise ValueError("3D chips need at least one pillar")
        if self.num_cpus < 1:
            raise ValueError("need at least one CPU")

    @property
    def total_banks(self) -> int:
        return self.cache_mb * 1024 // self.bank_kb

    @property
    def banks_per_cluster(self) -> int:
        return self.total_banks // self.num_clusters

    @property
    def clusters_per_layer(self) -> int:
        return self.num_clusters // self.num_layers

    @property
    def cluster_tile(self) -> tuple[int, int]:
        """(width, height) of one cluster in mesh nodes."""
        return _CLUSTER_TILES[self.banks_per_cluster]

    @property
    def cluster_grid(self) -> tuple[int, int]:
        """(columns, rows) of cluster tiles on each layer."""
        return _CLUSTER_GRIDS[self.clusters_per_layer]

    @property
    def mesh_dims(self) -> tuple[int, int]:
        """(width, height) of each layer's mesh in nodes."""
        tile_w, tile_h = self.cluster_tile
        grid_w, grid_h = self.cluster_grid
        return tile_w * grid_w, tile_h * grid_h

    @property
    def lines_per_bank(self) -> int:
        return self.bank_kb * 1024 // self.line_bytes

    @property
    def sets_per_cluster(self) -> int:
        """Index space of one cluster (each set is 16-way)."""
        return self.banks_per_cluster * self.lines_per_bank // self.associativity

    @property
    def sets_per_bank(self) -> int:
        return self.lines_per_bank // self.associativity


@dataclass
class Cluster:
    """One cluster of L2 banks with its shared tag array."""

    index: int
    layer: int
    tile_x: int          # position in the per-layer cluster grid
    tile_y: int
    origin: tuple[int, int]            # mesh (x, y) of the tile's corner
    tile: tuple[int, int]              # (width, height) in nodes
    bank_nodes: list[Coord] = field(default_factory=list)
    cpus: list[int] = field(default_factory=list)
    tag_node: Optional[Coord] = None

    @property
    def center(self) -> Coord:
        ox, oy = self.origin
        tw, th = self.tile
        return Coord(ox + tw // 2, oy + th // 2, self.layer)

    @property
    def has_cpu(self) -> bool:
        return bool(self.cpus)

    def contains(self, coord: Coord) -> bool:
        ox, oy = self.origin
        tw, th = self.tile
        return (
            coord.z == self.layer
            and ox <= coord.x < ox + tw
            and oy <= coord.y < oy + th
        )


class ChipTopology:
    """Fully placed chip: clusters, CPU positions, pillars, node roles.

    Built by :func:`repro.core.placement.build_topology`; this class holds
    the result and answers geometric queries for the cache-management
    policies and the latency models.
    """

    def __init__(
        self,
        config: ChipConfig,
        cpu_positions: dict[int, Coord],
        pillar_xys: list[tuple[int, int]],
    ):
        config.validate()
        self.config = config
        self.cpu_positions = dict(cpu_positions)
        self.pillar_xys = list(pillar_xys)
        self.clusters: list[Cluster] = []
        self._cluster_by_tile: dict[tuple[int, int, int], Cluster] = {}
        self._build_clusters()
        self._check()
        self._assign_cpus()

    def _build_clusters(self) -> None:
        cfg = self.config
        tile_w, tile_h = cfg.cluster_tile
        grid_w, grid_h = cfg.cluster_grid
        index = 0
        for layer in range(cfg.num_layers):
            for tile_y in range(grid_h):
                for tile_x in range(grid_w):
                    origin = (tile_x * tile_w, tile_y * tile_h)
                    cluster = Cluster(
                        index=index,
                        layer=layer,
                        tile_x=tile_x,
                        tile_y=tile_y,
                        origin=origin,
                        tile=(tile_w, tile_h),
                    )
                    cluster.bank_nodes = [
                        Coord(origin[0] + dx, origin[1] + dy, layer)
                        for dy in range(tile_h)
                        for dx in range(tile_w)
                    ]
                    self.clusters.append(cluster)
                    self._cluster_by_tile[(layer, tile_x, tile_y)] = cluster
                    index += 1

    def _assign_cpus(self) -> None:
        for cpu_id, coord in self.cpu_positions.items():
            cluster = self.cluster_at(coord)
            cluster.cpus.append(cpu_id)
        for cluster in self.clusters:
            if cluster.cpus:
                first_cpu = min(cluster.cpus)
                cluster.tag_node = self.cpu_positions[first_cpu]
            else:
                cluster.tag_node = cluster.center

    def _check(self) -> None:
        cfg = self.config
        width, height = cfg.mesh_dims
        seen: set[Coord] = set()
        for cpu_id, coord in self.cpu_positions.items():
            if not (0 <= coord.x < width and 0 <= coord.y < height):
                raise ValueError(f"CPU {cpu_id} at {coord} is off-mesh")
            if not 0 <= coord.z < cfg.num_layers:
                raise ValueError(f"CPU {cpu_id} on invalid layer {coord.z}")
            if coord in seen:
                raise ValueError(f"two CPUs share node {coord}")
            seen.add(coord)
        for x, y in self.pillar_xys:
            if not (0 <= x < width and 0 <= y < height):
                raise ValueError(f"pillar ({x},{y}) is off-mesh")

    # -- queries ------------------------------------------------------------

    def cluster_at(self, coord: Coord) -> Cluster:
        """The cluster whose tile contains ``coord``."""
        tile_w, tile_h = self.config.cluster_tile
        key = (coord.z, coord.x // tile_w, coord.y // tile_h)
        try:
            return self._cluster_by_tile[key]
        except KeyError:
            raise ValueError(f"{coord} is outside the chip") from None

    def cluster_by_tile(self, layer: int, tile_x: int, tile_y: int) -> Optional[Cluster]:
        return self._cluster_by_tile.get((layer, tile_x, tile_y))

    def cpu_cluster(self, cpu_id: int) -> Cluster:
        return self.cluster_at(self.cpu_positions[cpu_id])

    def node_role(self, coord: Coord) -> NodeRole:
        if coord in set(self.cpu_positions.values()):
            return NodeRole.CPU
        if (coord.x, coord.y) in self.pillar_xys and self.config.num_layers > 1:
            return NodeRole.PILLAR_BANK
        return NodeRole.BANK

    def nearest_pillar(self, coord: Coord) -> tuple[int, int]:
        """The pillar with the smallest in-plane distance from ``coord``."""
        if not self.pillar_xys:
            raise ValueError("chip has no pillars")
        return min(
            self.pillar_xys,
            key=lambda xy: (abs(coord.x - xy[0]) + abs(coord.y - xy[1]), xy),
        )

    def in_plane_neighbors(self, cluster: Cluster) -> list[Cluster]:
        """Clusters adjacent to ``cluster`` in its layer's tile grid."""
        result = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            neighbor = self.cluster_by_tile(
                cluster.layer, cluster.tile_x + dx, cluster.tile_y + dy
            )
            if neighbor is not None:
                result.append(neighbor)
        return result

    def vertical_neighbors(self, cluster: Cluster) -> list[Cluster]:
        """Clusters on other layers reached by the pillar tag broadcast.

        The dTDMA bus is a broadcast medium: a tag query placed on the
        pillar is heard on *every* layer, and from each layer's pillar node
        it fans out to the clusters in the pillar's vicinity.  This is the
        "vicinity cylinder" of the paper's Figure 8 — on each other layer,
        the mirror of the local neighbourhood: the same-tile cluster plus
        its in-plane neighbours.
        """
        result = []
        for layer in range(self.config.num_layers):
            if layer == cluster.layer:
                continue
            mirror = self.cluster_by_tile(
                layer, cluster.tile_x, cluster.tile_y
            )
            if mirror is None:
                continue
            result.append(mirror)
            result.extend(self.in_plane_neighbors(mirror))
        return result

    def cluster_distance_hops(self, a: Cluster, b: Cluster) -> int:
        """Approximate hop distance between cluster centers.

        Inter-layer distance goes through the pillar nearest the source
        cluster's center (one bus hop).
        """
        ca, cb = a.center, b.center
        if a.layer == b.layer:
            return ca.manhattan_2d(cb)
        px, py = self.nearest_pillar(ca)
        return (
            abs(ca.x - px) + abs(ca.y - py)
            + 1
            + abs(cb.x - px) + abs(cb.y - py)
        )

    def describe(self) -> str:
        cfg = self.config
        width, height = cfg.mesh_dims
        lines = [
            f"Chip: {cfg.num_layers} layer(s) of {width}x{height} nodes, "
            f"{cfg.total_banks} banks x {cfg.bank_kb}KB = {cfg.cache_mb}MB L2",
            f"Clusters: {cfg.num_clusters} "
            f"({cfg.clusters_per_layer}/layer, {cfg.banks_per_cluster} banks each)",
            f"Pillars: {self.pillar_xys}",
        ]
        for cpu_id in sorted(self.cpu_positions):
            coord = self.cpu_positions[cpu_id]
            lines.append(
                f"  CPU {cpu_id}: {tuple(coord)} in cluster "
                f"{self.cluster_at(coord).index}"
            )
        return "\n".join(lines)

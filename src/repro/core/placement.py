"""Pillar placement and thermal-aware CPU placement.

Implements the paper's placement machinery:

* **Pillar placement** — pillars are spread uniformly across the layer,
  kept off the mesh edges (edge placement would halve the cache banks in a
  pillar's vicinity) and as far apart as possible (Section 3.3).
* **Maximal offsetting** (Figure 9) — with one CPU per pillar, CPUs are
  offset in all three dimensions: spread across layers and displaced one
  hop from their pillar in rotating directions, so no two CPUs share a
  vertical plane.
* **Algorithm 1** — the paper's placement pattern for 2 or 4 CPUs per
  pillar per layer with offset factor ``k``, cycling through four cases by
  ``layer mod 4``.
* **CPU stacking** — the thermally poor baseline of Table 3: CPUs directly
  on top of one another on the pillars.
* **2D placements** — CPUs surrounded by banks at cluster centers (our 2D
  scheme) or pushed to the chip edges (the CMP-DNUCA baseline layout of
  Beckmann & Wood).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.noc.routing import Coord
from repro.core.chip import ChipConfig, ChipTopology


class PlacementPolicy(enum.Enum):
    """How CPUs are arranged on the chip."""

    MAXIMAL_OFFSET = "maximal_offset"   # Fig 9: 1 CPU/pillar, 3D offset
    ALGORITHM1 = "algorithm1"           # shared pillars, offset pattern
    STACKED = "stacked"                 # CPUs stacked vertically (baseline)
    CENTER_2D = "center_2d"             # our 2D scheme: CPUs amid banks
    EDGE_2D = "edge_2d"                 # CMP-DNUCA: CPUs on chip edges


def _spread_positions(count: int, width: int, height: int) -> list[tuple[int, int]]:
    """``count`` interior positions spread uniformly over a width x height mesh.

    Positions form an r x c grid (the factorization closest to the mesh
    aspect ratio) at tile centers, which keeps them off the edges and
    maximally separated.
    """
    if count < 1:
        return []
    best: Optional[tuple[int, int]] = None
    best_score = None
    for rows in range(1, count + 1):
        if count % rows != 0:
            continue
        cols = count // rows
        # Prefer the factorization whose aspect matches the mesh.
        score = abs(cols / rows - width / height)
        if best_score is None or score < best_score:
            best_score = score
            best = (cols, rows)
    cols, rows = best
    positions = []
    for row in range(rows):
        for col in range(cols):
            x = int((col + 0.5) * width / cols)
            y = int((row + 0.5) * height / rows)
            x = min(max(x, 1), width - 2) if width > 2 else x
            y = min(max(y, 1), height - 2) if height > 2 else y
            positions.append((x, y))
    if len(set(positions)) != len(positions):
        raise ValueError(
            f"cannot spread {count} pillars over a {width}x{height} mesh"
        )
    return positions


def place_pillars(config: ChipConfig) -> list[tuple[int, int]]:
    """Choose pillar (x, y) locations for a chip configuration."""
    if config.num_layers == 1:
        return []
    width, height = config.mesh_dims
    return _spread_positions(config.num_pillars, width, height)


def algorithm1_offsets(layer: int, c: int, k: int) -> list[tuple[int, int]]:
    """CPU offsets around a pillar for ``layer`` (paper Algorithm 1).

    Returns the (dx, dy) displacements of the ``c`` CPUs assigned to a
    pillar on ``layer``; the pattern cycles every four layers so CPUs on
    neighbouring layers never align vertically.
    """
    if c not in (2, 4):
        raise ValueError("Algorithm 1 places 2 or 4 CPUs per pillar per layer")
    if k < 1:
        raise ValueError("offset factor k must be at least 1")
    case = layer % 4
    if case == 0:
        if c == 2:
            return [(k, 0), (-k, 0)]
        return [(2 * k, 0), (-2 * k, 0), (0, 2 * k), (0, -2 * k)]
    if case == 1:
        if c == 2:
            return [(0, k), (0, -k)]
        return [(k, k), (k, -k), (-k, k), (-k, -k)]
    if case == 2:
        if c == 2:
            return [(2 * k, 0), (-2 * k, 0)]
        return [(k, 0), (-k, 0), (0, k), (0, -k)]
    if c == 2:
        return [(0, 2 * k), (0, -2 * k)]
    return [(2 * k, 2 * k), (2 * k, -2 * k), (-2 * k, 2 * k), (-2 * k, -2 * k)]


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def _claim(
    position: tuple[int, int, int],
    taken: set[tuple[int, int, int]],
    width: int,
    height: int,
    forbidden: set[tuple[int, int]],
) -> tuple[int, int, int]:
    """Clamp a position onto the mesh and nudge it off collisions.

    CPUs must not share a node with another CPU or sit on a pillar node;
    a small spiral search finds the nearest free node.
    """
    x, y, z = position
    x = _clamp(x, 0, width - 1)
    y = _clamp(y, 0, height - 1)
    if (x, y, z) not in taken and (x, y) not in forbidden:
        taken.add((x, y, z))
        return (x, y, z)
    for radius in range(1, width + height):
        for dx in range(-radius, radius + 1):
            for dy in (-(radius - abs(dx)), radius - abs(dx)):
                nx, ny = x + dx, y + dy
                if not (0 <= nx < width and 0 <= ny < height):
                    continue
                if (nx, ny, z) in taken or (nx, ny) in forbidden:
                    continue
                taken.add((nx, ny, z))
                return (nx, ny, z)
    raise ValueError("no free node for CPU placement")


def place_cpus(
    config: ChipConfig,
    policy: PlacementPolicy,
    pillar_xys: list[tuple[int, int]],
    k: int = 1,
) -> dict[int, Coord]:
    """Compute CPU node positions under a placement policy.

    Returns a mapping from CPU id to mesh coordinate.  ``k`` is the offset
    factor of Algorithm 1 (ignored by the other policies).
    """
    config.validate()
    width, height = config.mesh_dims
    layers = config.num_layers
    taken: set[tuple[int, int, int]] = set()
    positions: dict[int, Coord] = {}

    if policy in (PlacementPolicy.CENTER_2D, PlacementPolicy.EDGE_2D):
        if layers != 1:
            raise ValueError(f"{policy.value} is a single-layer placement")
        if policy == PlacementPolicy.CENTER_2D:
            spots = _spread_positions(config.num_cpus, width, height)
            for cpu_id, (x, y) in enumerate(spots):
                positions[cpu_id] = Coord(
                    *_claim((x, y, 0), taken, width, height, set())
                )
            return positions
        # EDGE_2D: half the CPUs along the bottom edge, half along the top,
        # matching the CMP-DNUCA floorplan the paper contrasts against.
        per_edge = (config.num_cpus + 1) // 2
        cpu_id = 0
        for edge_y in (0, height - 1):
            remaining = min(per_edge, config.num_cpus - cpu_id)
            for i in range(remaining):
                x = int((i + 0.5) * width / remaining)
                positions[cpu_id] = Coord(
                    *_claim((x, edge_y, 0), taken, width, height, set())
                )
                cpu_id += 1
        return positions

    if layers == 1:
        raise ValueError(f"{policy.value} requires a multi-layer chip")
    if not pillar_xys:
        raise ValueError("3D CPU placement requires pillars")
    pillar_set = set(pillar_xys)

    if policy == PlacementPolicy.STACKED:
        # CPUs directly on the pillar nodes, stacked through the layers.
        stacks = -(-config.num_cpus // layers)  # ceil division
        if stacks > len(pillar_xys):
            raise ValueError("not enough pillars to stack CPUs on")
        cpu_id = 0
        for layer in range(layers):
            for stack in range(stacks):
                if cpu_id >= config.num_cpus:
                    return positions
                x, y = pillar_xys[stack]
                positions[cpu_id] = Coord(
                    *_claim((x, y, layer), taken, width, height, set())
                )
                cpu_id += 1
        return positions

    if policy == PlacementPolicy.MAXIMAL_OFFSET:
        if config.num_cpus > len(pillar_xys):
            raise ValueError(
                "maximal offsetting assumes one CPU per pillar; use "
                "ALGORITHM1 when CPUs must share pillars"
            )
        # Checkerboard the layer assignment over the pillar grid so CPUs on
        # the same layer are never at adjacent pillars — offsetting in all
        # three dimensions, as in Figure 9.
        distinct_x = sorted({x for x, __ in pillar_xys})
        distinct_y = sorted({y for __, y in pillar_xys})
        directions = [(k, 0), (0, k), (-k, 0), (0, -k)]
        for cpu_id in range(config.num_cpus):
            px, py = pillar_xys[cpu_id]
            gx = distinct_x.index(px)
            gy = distinct_y.index(py)
            layer = (gx + gy) % layers
            dx, dy = directions[(gx + 2 * gy) % len(directions)]
            positions[cpu_id] = Coord(
                *_claim((px + dx, py + dy, layer), taken, width, height, pillar_set)
            )
        return positions

    if policy == PlacementPolicy.ALGORITHM1:
        if config.num_cpus % len(pillar_xys) != 0:
            raise ValueError("CPUs must divide evenly among pillars")
        per_pillar = config.num_cpus // len(pillar_xys)
        if per_pillar % layers == 0:
            c = per_pillar // layers
            cpu_layers = list(range(layers))
        else:
            # Fewer CPUs than pillar x layer slots: use one CPU per pillar
            # per used layer, alternating layers between pillars.
            c = 1
            cpu_layers = None
        cpu_id = 0
        for pillar_index, (px, py) in enumerate(pillar_xys):
            if cpu_layers is None:
                layer_cycle = [
                    (pillar_index + i) % layers for i in range(per_pillar)
                ]
            else:
                layer_cycle = [
                    layer for layer in cpu_layers for __ in range(c)
                ]
            per_layer_counts: dict[int, int] = {}
            for layer in layer_cycle:
                slot = per_layer_counts.get(layer, 0)
                per_layer_counts[layer] = slot + 1
                count_here = layer_cycle.count(layer)
                if count_here in (2, 4):
                    offsets = algorithm1_offsets(layer, count_here, k)
                    dx, dy = offsets[slot]
                else:
                    directions = [(k, 0), (0, k), (-k, 0), (0, -k)]
                    dx, dy = directions[(pillar_index + slot) % 4]
                positions[cpu_id] = Coord(
                    *_claim(
                        (px + dx, py + dy, layer),
                        taken, width, height, pillar_set,
                    )
                )
                cpu_id += 1
        return positions

    raise ValueError(f"unknown placement policy {policy!r}")


def build_topology(
    config: ChipConfig,
    policy: Optional[PlacementPolicy] = None,
    k: int = 1,
) -> ChipTopology:
    """Place pillars and CPUs and return the finished :class:`ChipTopology`.

    When ``policy`` is omitted, the paper's defaults apply: maximal 3D
    offsetting when each CPU can own a pillar, Algorithm 1 when pillars are
    shared, and the CPUs-amid-banks layout for single-layer chips.
    """
    config.validate()
    pillar_xys = place_pillars(config)
    if policy is None:
        if config.num_layers == 1:
            policy = PlacementPolicy.CENTER_2D
        elif config.num_cpus <= config.num_pillars:
            policy = PlacementPolicy.MAXIMAL_OFFSET
        else:
            policy = PlacementPolicy.ALGORITHM1
    cpu_positions = place_cpus(config, policy, pillar_xys, k=k)
    return ChipTopology(config, cpu_positions, pillar_xys)

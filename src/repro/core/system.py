"""`NetworkInMemory`: the assembled 3D CMP system and its timing layer.

Binds the placed chip topology, the NUCA L2 with its management policies,
the coherent L1s, and the in-order cores, and prices every L2 transaction's
network traffic.  Two fidelity modes:

* ``mode="model"`` (default) — packets are priced by the contention-aware
  analytic :class:`~repro.core.latency_model.LatencyModel`; fast enough for
  the paper's full figure sweeps.
* ``mode="cycle"`` — every packet is injected into the cycle-accurate
  fabric (:mod:`repro.core.cycle_driver`); exact, used by tests and
  microbenchmarks and to calibrate the model.

The L2 transaction timing follows Section 4.2.1's two-step search:

* hit in the local cluster: direct tag access, then request to the bank
  and the data's return trip;
* hit in a step-1 neighbour: parallel tag queries, then the winning
  cluster forwards to its bank, data returns;
* hit in step 2: the full step-1 round-trip (all step-1 misses must
  return) precedes the multicast, then the same forward/return path;
* L2 miss: both steps complete, then the 260-cycle memory access.

The CMP-DNUCA baseline instead uses *perfect search* (the paper grants it
that advantage, following Beckmann & Wood): the request goes straight to
the owning cluster.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, TYPE_CHECKING

from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.fabric import AUTO_FABRIC, FabricKind, resolve_fabric
from repro.noc.routing import Coord
from repro.core.chip import ChipTopology
from repro.core.placement import PlacementPolicy, build_topology
from repro.core.schemes import Scheme, SchemeSetup, make_chip_config
from repro.core.latency_model import LatencyModel, LatencyModelConfig
from repro.cache.nuca import NucaL2, AccessType, AccessOutcome
from repro.cache.migration import MigrationConfig
from repro.coherence.protocol import CoherentL1System
from repro.coherence.l1cache import L1Config
from repro.cpu.core import InOrderCore
from repro.cpu.trace import OP_READ, OP_WRITE, OP_IFETCH, TraceEvent

if TYPE_CHECKING:
    from repro.faults.injector import FaultHarness
    from repro.faults.spec import FaultSpec

_OP_TO_TYPE = {
    OP_READ: AccessType.READ,
    OP_WRITE: AccessType.WRITE,
    OP_IFETCH: AccessType.IFETCH,
}


@dataclass
class SystemConfig:
    """Timing and policy parameters of the whole system (Table 4)."""

    scheme: Scheme = Scheme.CMP_DNUCA_3D
    cache_mb: int = 16
    num_layers: int = 2
    num_pillars: int = 8
    num_cpus: int = 8
    mode: str = "model"            # "model" or "cycle"
    tag_latency: int = 4           # per-cluster tag array access (Cacti)
    bank_latency: int = 5          # 64KB bank access (Cacti)
    memory_latency: int = 260      # off-chip memory
    request_flits: int = 1         # tag query / request header
    data_flits: int = 4            # 64B line = 4 x 128-bit flits
    cpi_base: float = 1.0
    # Kernel selection for mode="cycle": the activity-tracked kernel skips
    # quiescent fabric components and fast-forwards idle windows between
    # transaction legs; False falls back to the naive tick-everything
    # kernel (bit-identical results, much slower).
    activity_tracking: bool = True
    # Fabric implementation for mode="cycle": OPTIMIZED is the
    # allocation-free hot path, REFERENCE the frozen naive fabric it is
    # differentially verified against (bit-identical, much slower).
    # Strings ("optimized"/"reference") are accepted and normalised to the
    # enum by validate().
    noc_fabric: "FabricKind | str" = FabricKind.OPTIMIZED
    # Structured event tracing: None (default) means probe sites see the
    # NullTracer and the hot path stays allocation-free.
    tracer: Optional[Tracer] = None
    # Consecutive same-CPU accesses before a gradual one-cluster move.
    # Lazy and conservative: shared lines whose accessors alternate are
    # left in place (anti-ping-pong).
    migration_threshold: int = 2
    latency_model: LatencyModelConfig = field(default_factory=LatencyModelConfig)
    l1: L1Config = field(default_factory=L1Config)
    placement_k: int = 1           # Algorithm 1 offset factor
    # Override the scheme's default CPU placement (ablations: e.g. run the
    # 3D scheme with STACKED CPUs to expose the pillar-congestion cost).
    placement_override: Optional["PlacementPolicy"] = None
    # Pin CPUs to explicit coordinates (Fig 17 holds the floorplan fixed
    # while the via budget — the pillar count — varies).
    cpu_positions_override: Optional[dict[int, "Coord"]] = None
    # Fault injection: a FaultSpec degrades the fabric/cache (dead
    # pillars, links, router ports, banks) with graceful-degradation
    # accounting.  None = fault-unaware run (bit-identical to the seed
    # behaviour).  Random fault targets resolve deterministically from
    # ``fault_seed`` (the SimSpec seed when driven by a spec).
    faults: Optional["FaultSpec"] = None
    fault_seed: int = 2006
    # FabricKind.VECTOR only: occupancy at or below which the vector
    # fabric runs its scalar per-flit path.  None keeps the
    # NetworkConfig default (the benchmarked crossover).
    noc_sparse_threshold: Optional[int] = None

    def validate(self) -> None:
        if self.mode not in ("model", "cycle"):
            raise ValueError(f"unknown mode {self.mode!r}")
        # "auto" resolves to a concrete fabric before the one validator
        # normalises it, so downstream consumers only ever see real kinds.
        if self.noc_fabric == AUTO_FABRIC:
            self.noc_fabric = resolve_fabric(self.mode)[0]
        # Normalise the CLI/spec boundary string through the one validator.
        self.noc_fabric = FabricKind.parse(self.noc_fabric)
        if self.tag_latency < 1 or self.bank_latency < 1:
            raise ValueError("array latencies must be positive")
        if self.noc_sparse_threshold is not None and self.noc_sparse_threshold < 0:
            raise ValueError("noc_sparse_threshold must be non-negative")


@dataclass
class TransactionResult:
    """Timing outcome of one L2 transaction."""

    latency: float
    hit: bool
    search_step: int
    cluster: int
    migrated: bool


class NetworkInMemory:
    """The complete simulated system for one scheme/configuration."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        self.config.validate()
        setup: SchemeSetup = make_chip_config(
            self.config.scheme,
            cache_mb=self.config.cache_mb,
            num_layers=self.config.num_layers,
            num_pillars=self.config.num_pillars,
            num_cpus=self.config.num_cpus,
        )
        self.setup = setup
        if self.config.cpu_positions_override is not None:
            from repro.core.placement import place_pillars

            self.topology = ChipTopology(
                setup.chip,
                self.config.cpu_positions_override,
                place_pillars(setup.chip),
            )
        else:
            placement = self.config.placement_override or setup.placement
            self.topology = build_topology(
                setup.chip, placement, k=self.config.placement_k
            )
        self.stats = StatsRegistry("system")
        self.tracer: Tracer = (
            self.config.tracer if self.config.tracer is not None
            else NULL_TRACER
        )
        # CMP-DNUCA reproduces Beckmann & Wood's policy: promotion on every
        # hit, but only along the block's bankset chain — lots of movement,
        # modest convergence, exactly what Fig 14 contrasts against.
        migration = MigrationConfig(
            enabled=setup.migration_enabled,
            trigger_threshold=(
                1
                if setup.scheme == Scheme.CMP_DNUCA
                else self.config.migration_threshold
            ),
            transfer_flits=self.config.data_flits,
            bankset_chains=(setup.scheme == Scheme.CMP_DNUCA),
        )
        self.l2 = NucaL2(
            self.topology, migration, stats=self.stats, tracer=self.tracer
        )
        self.l1s = CoherentL1System(
            setup.chip.num_cpus, self.config.l1, tracer=self.tracer
        )
        self.cores = [
            InOrderCore(cpu, cpi_base=self.config.cpi_base)
            for cpu in range(setup.chip.num_cpus)
        ]
        width, __ = setup.chip.mesh_dims
        self.memory_node = Coord(width // 2, 0, 0)

        if self.config.mode == "model":
            self.model = LatencyModel(self.topology, self.config.latency_model)
            self.pricer = _ModelPricer(self)
        else:
            from repro.core.cycle_driver import CyclePricer

            self.model = LatencyModel(self.topology, self.config.latency_model)
            self.pricer = CyclePricer(self)

        self.fault_harness: Optional["FaultHarness"] = None
        if self.config.faults is not None:
            self._install_faults()

        l2_scope = self.stats.scope("l2")
        self.hit_latency = l2_scope.histogram("hit_latency", 1.0, 512)
        self.miss_latency = l2_scope.histogram("miss_latency", 2.0, 512)
        self._l2_reads = l2_scope.counter("read_transactions")
        self._l2_writes = l2_scope.counter("write_transactions")
        self._l2_ifetches = l2_scope.counter("ifetch_transactions")
        self._invalidations = self.stats.scope("coherence").counter(
            "invalidations"
        )

    # -- fault injection -----------------------------------------------------

    def _bank_targets(self) -> tuple[tuple[int, int], ...]:
        """Random-draw candidate pool for bank faults: every (cluster, bank)."""
        return tuple(
            (cluster.index, bank)
            for cluster in self.topology.clusters
            for bank in range(len(cluster.bank_nodes))
        )

    def _install_faults(self) -> None:
        """Apply ``config.faults`` to whichever timing backend is live.

        Cycle mode installs the full machinery (injector events on the
        fabric engine, liveness watchdog, fault-aware routing) on the
        pricer's network; bank faults additionally reach the NUCA cache.
        Model mode has no per-link state, so it supports only permanent
        onset-0 pillar and bank faults: the latency model drops dead
        pillars from its route pool and the cache degrades immediately.
        """
        spec = self.config.faults
        seed = self.config.fault_seed
        banks = self._bank_targets()
        if self.config.mode == "cycle":
            from repro.faults.injector import install_network_faults

            self.fault_harness = install_network_faults(
                self.pricer.network,
                spec,
                seed,
                banks=banks,
                on_bank_change=self.l2.apply_bank_faults,
                stats=self.stats,
                tracer=self.tracer,
            )
            if self.fault_harness.state is not None:
                self.l2.attach_fault_state(self.fault_harness.state)
            return

        from repro.faults.injector import FaultHarness
        from repro.faults.state import FaultState

        # Reject mesh-fault requests before resolution: the random-draw
        # pools for links don't even exist here, and "cannot draw from 0
        # candidates" is a worse diagnostic than naming the mode.
        if spec.dead_links or any(
            event.kind in ("link", "router_port") for event in spec.events
        ):
            raise ValueError(
                "link/router_port faults require mode='cycle' (the "
                "analytic model carries no per-link state)"
            )
        resolved = spec.resolve(
            seed, pillars=tuple(self.topology.pillar_xys), banks=banks
        )
        if not resolved:
            return
        for event in resolved:
            if event.kind in ("link", "router_port"):
                raise ValueError(
                    f"{event.kind} faults require mode='cycle' (the "
                    f"analytic model carries no per-link state)"
                )
            if event.onset or event.duration is not None:
                raise ValueError(
                    "model mode supports only permanent onset-0 faults; "
                    "use mode='cycle' for timed fault schedules"
                )
        state = FaultState(stats=self.stats, tracer=self.tracer)
        self.model.attach_fault_state(state)
        self.l2.attach_fault_state(state)
        for event in resolved:
            target = (event.target[0], event.target[1])
            if event.kind == "pillar":
                state.fail_pillar(target)
            else:
                state.fail_bank(target)
        self.l2.apply_bank_faults()
        self.fault_harness = FaultHarness(
            state=state, injector=None, watchdog=None
        )

    # -- one L2 transaction ---------------------------------------------------

    def l2_transaction(
        self, cpu_id: int, address: int, access_type: AccessType, cycle: float
    ) -> TransactionResult:
        """Access the L2 and price the transaction's network activity."""
        outcome = self.l2.access(cpu_id, address, access_type, cycle)
        latency = self.pricer.price(cpu_id, outcome, cycle)

        # The paper's "L2 hit latency" is the latency processors wait on —
        # demand reads and fetches.  Buffered write-throughs are priced for
        # traffic but not mixed into the latency figure.
        if outcome.hit:
            if access_type != AccessType.WRITE:
                self.hit_latency.add(latency)
        else:
            self.miss_latency.add(latency)
            if outcome.evicted_line is not None:
                targets = self.l1s.l2_eviction(outcome.evicted_line, cycle)
                self.pricer.charge_invalidations(
                    self.topology.clusters[outcome.cluster].tag_node,
                    targets,
                    cycle,
                )
        if access_type == AccessType.READ:
            self._l2_reads.increment()
        elif access_type == AccessType.WRITE:
            self._l2_writes.increment()
        else:
            self._l2_ifetches.increment()
        return TransactionResult(
            latency=latency,
            hit=outcome.hit,
            search_step=outcome.search_step,
            cluster=outcome.cluster,
            migrated=outcome.migration is not None,
        )

    # -- trace-driven run -------------------------------------------------------

    def run_trace(
        self,
        traces: list[Iterable[TraceEvent]],
        max_events: Optional[int] = None,
        warmup_events: int = 0,
    ) -> "RunStats":
        """Drive every core through its reference trace, interleaved in time.

        Cores are advanced in global-clock order so the latency model sees
        a coherent time axis.  ``max_events`` caps total references
        processed (across all CPUs), for quick runs.  The first
        ``warmup_events`` references warm the caches without being counted
        in the reported statistics (the paper warms the L2 for 500 M cycles
        before its 2 B-cycle sample).
        """
        if len(traces) != len(self.cores):
            raise ValueError(
                f"need {len(self.cores)} traces, got {len(traces)}"
            )
        iterators: list[Iterator[TraceEvent]] = [iter(t) for t in traces]
        heap = [(0.0, cpu) for cpu in range(len(self.cores))]
        heapq.heapify(heap)
        processed = 0
        warm = False
        while heap:
            if max_events is not None and processed >= max_events:
                break
            if not warm and processed >= warmup_events:
                self._end_warmup()
                warm = True
            __, cpu = heapq.heappop(heap)
            event = next(iterators[cpu], None)
            if event is None:
                continue  # this CPU's trace is exhausted
            gap, op, address = event
            core = self.cores[cpu]
            core.retire_gap(gap)
            coherence = self.l1s.access(
                cpu, address, _OP_TO_TYPE[op], core.clock
            )
            stall = 0.0
            if coherence.invalidate_cpus:
                self._invalidations.increment(len(coherence.invalidate_cpus))
                self.pricer.charge_invalidations(
                    self.topology.cpu_positions[cpu],
                    coherence.invalidate_cpus,
                    core.clock,
                )
            if coherence.needs_l2:
                result = self.l2_transaction(
                    cpu, address, _OP_TO_TYPE[op], core.clock
                )
                core.l2_accesses += 1
                if op != OP_WRITE:
                    stall = result.latency
            core.retire_reference(op, stall)
            heapq.heappush(heap, (core.clock, cpu))
            processed += 1
        return self.collect_stats()

    def _end_warmup(self) -> None:
        """Reset measured statistics; cache/network state carries over."""
        self.stats.reset()
        self._invalidations.reset()
        for core in self.cores:
            core.reset_stats()  # clocks keep running: cores stay aligned
        self.model.flit_hops_total = 0.0
        self.model.bus_flits_total = 0.0

    # -- results ------------------------------------------------------------------

    def collect_stats(self) -> "RunStats":
        cores = self.cores
        total_instructions = sum(c.instructions for c in cores)
        max_clock = max((c.measured_cycles for c in cores), default=0.0)
        snapshot = self.stats.snapshot()
        # Faults active at collection time come from the live fault sets,
        # not the (warmup-reset) counters: injection is configuration.
        faults_active = 0
        if self.fault_harness is not None and self.fault_harness.state:
            state = self.fault_harness.state
            faults_active = (
                len(state.dead_pillars) + len(state.dead_links)
                + len(state.jammed_ports) + len(state.dead_banks)
            )
        # Survivorship context for the latency means: in cycle mode ask
        # the live fabric what never arrived; the analytic model delivers
        # everything by construction.
        delivered_fraction = 1.0
        ages = {"count": 0, "mean_age": 0.0, "max_age": 0}
        network = getattr(self.pricer, "network", None)
        if network is not None:
            delivered_fraction = network.delivered_fraction()
            ages = network.in_flight_ages()
        return RunStats(
            scheme=self.config.scheme,
            avg_l2_hit_latency=self.hit_latency.mean,
            avg_l2_miss_latency=self.miss_latency.mean,
            l2_hits=int(snapshot.get("l2.hits", 0)),
            l2_misses=int(snapshot.get("l2.misses", 0)),
            migrations=self.l2.migrations,
            ipc=(total_instructions / max_clock if max_clock > 0 else 0.0),
            per_cpu_ipc=[c.ipc for c in cores],
            l1_miss_rate=self.l1s.miss_rate(),
            flit_hops=self.model.flit_hops_total,
            bus_flits=self.model.bus_flits_total,
            invalidations=self._invalidations.value,
            instructions=total_instructions,
            cycles=max_clock,
            packets_lost=int(snapshot.get("faults.packets_lost", 0)),
            faults_injected=faults_active,
            delivered_fraction=delivered_fraction,
            in_flight_packets=int(ages["count"]),
            in_flight_mean_age=float(ages["mean_age"]),
            in_flight_max_age=int(ages["max_age"]),
        )


@dataclass
class RunStats:
    """Summary of one simulated run (the quantities the figures plot)."""

    scheme: Scheme
    avg_l2_hit_latency: float
    avg_l2_miss_latency: float
    l2_hits: int
    l2_misses: int
    migrations: int
    ipc: float
    per_cpu_ipc: list[float]
    l1_miss_rate: float
    flit_hops: float
    bus_flits: float
    invalidations: int
    instructions: float
    cycles: float
    # Fault-injection degradation accounting (0 on fault-free runs).
    packets_lost: int = 0
    faults_injected: int = 0
    # Latency survivorship accounting (cycle mode): latency means cover
    # only *delivered* packets, so a saturated run that strands most of
    # its traffic in-network can report a flattering mean.  These fields
    # expose the denominator — what fraction of injected packets the
    # latency stats actually describe, and how old the stranded
    # population is.  Defaulted so cached artifacts predating them load.
    delivered_fraction: float = 1.0
    in_flight_packets: int = 0
    in_flight_mean_age: float = 0.0
    in_flight_max_age: int = 0

    @property
    def l2_accesses(self) -> int:
        return self.l2_hits + self.l2_misses

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_accesses
        return self.l2_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-safe form; exact inverse of :meth:`from_dict`.

        Floats survive the round trip bit-identically (``json`` emits the
        shortest repr that parses back to the same double), which is what
        lets the experiment cache and the parallel orchestrator return
        results indistinguishable from an in-process run.
        """
        return {
            "scheme": self.scheme.value,
            "avg_l2_hit_latency": self.avg_l2_hit_latency,
            "avg_l2_miss_latency": self.avg_l2_miss_latency,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "migrations": self.migrations,
            "ipc": self.ipc,
            "per_cpu_ipc": list(self.per_cpu_ipc),
            "l1_miss_rate": self.l1_miss_rate,
            "flit_hops": self.flit_hops,
            "bus_flits": self.bus_flits,
            "invalidations": self.invalidations,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "packets_lost": self.packets_lost,
            "faults_injected": self.faults_injected,
            "delivered_fraction": self.delivered_fraction,
            "in_flight_packets": self.in_flight_packets,
            "in_flight_mean_age": self.in_flight_mean_age,
            "in_flight_max_age": self.in_flight_max_age,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        fields = dict(data)
        fields["scheme"] = Scheme(fields["scheme"])
        return cls(**fields)


class _ModelPricer:
    """Prices transactions with the analytic latency model."""

    def __init__(self, system: NetworkInMemory):
        self.system = system
        self.model = system.model
        self.cfg = system.config
        self.topology = system.topology
        # Per-CPU step-1 probe sets never change: cache their query targets.
        self._step1_targets: dict[int, list[Coord]] = {}
        self._step2_targets: dict[int, list[Coord]] = {}

    def _targets(self, cpu_id: int) -> tuple[list[Coord], list[Coord]]:
        if cpu_id not in self._step1_targets:
            plan = self.system.l2.search.plan(cpu_id)
            topo = self.topology
            self._step1_targets[cpu_id] = [
                topo.clusters[c].tag_node
                for c in plan.step1
                if c != plan.local_cluster
            ]
            self._step2_targets[cpu_id] = [
                topo.clusters[c].tag_node for c in plan.step2
            ]
        return self._step1_targets[cpu_id], self._step2_targets[cpu_id]

    def _query_round(
        self, cpu_node: Coord, targets: list[Coord], cycle: float
    ) -> float:
        """Latency of a parallel tag-query round (max round-trip)."""
        cfg = self.cfg
        worst = float(cfg.tag_latency)  # the direct local tag probe
        for tag_node in targets:
            out = self.model.packet_latency(
                cpu_node, tag_node, cfg.request_flits, cycle
            )
            back = self.model.packet_latency(
                tag_node, cpu_node, cfg.request_flits, cycle
            )
            worst = max(worst, out + cfg.tag_latency + back)
        return worst

    def price(self, cpu_id: int, outcome: AccessOutcome, cycle: float) -> float:
        cfg = self.cfg
        model = self.model
        cpu_node = self.topology.cpu_positions[cpu_id]
        tag_node = outcome.tag_node
        bank_node = outcome.bank_node

        # Background traffic first: migrations and swaps load the network
        # but are off the critical path.
        if outcome.migration is not None:
            src, dst = outcome.migration
            topo = self.topology
            model.note_packet(
                topo.clusters[src].center, topo.clusters[dst].center,
                cfg.data_flits, cycle,
            )
            model.note_packet(
                topo.clusters[dst].center, topo.clusters[src].center,
                cfg.data_flits, cycle,
            )

        if self.system.setup.perfect_search:
            return self._price_perfect(cpu_node, outcome, cycle)

        step1_targets, step2_targets = self._targets(cpu_id)
        plan = self.system.l2.search.plan(cpu_id)

        is_write = outcome.access_type == AccessType.WRITE

        if outcome.hit and outcome.search_step == 1:
            # Parallel step-1 queries: the hitting cluster's path decides.
            for target in step1_targets:
                model.note_packet(cpu_node, target, cfg.request_flits, cycle)
            if outcome.cluster == plan.local_cluster:
                latency = float(cfg.tag_latency)
            else:
                latency = model.packet_latency(
                    cpu_node, tag_node, cfg.request_flits, cycle, record=False
                ) + cfg.tag_latency
            latency += self._data_phase(
                tag_node, bank_node, cpu_node, cycle, is_write
            )
            return latency

        # Step 1 concluded with misses everywhere.
        latency = self._query_round(cpu_node, step1_targets, cycle)

        if outcome.hit:
            # Step-2 multicast; the hitting cluster answers.
            for target in step2_targets:
                model.note_packet(cpu_node, target, cfg.request_flits, cycle)
            latency += model.packet_latency(
                cpu_node, tag_node, cfg.request_flits, cycle, record=False
            ) + cfg.tag_latency
            latency += self._data_phase(
                tag_node, bank_node, cpu_node, cycle, is_write
            )
            return latency

        # Full L2 miss: both rounds, then memory.
        latency += self._query_round(cpu_node, step2_targets, cycle)
        latency += cfg.memory_latency
        # Refill traffic from the memory port to the home bank.
        model.note_packet(
            self.system.memory_node, bank_node, cfg.data_flits, cycle
        )
        return latency

    def _data_phase(
        self,
        tag_node: Coord,
        bank_node: Coord,
        cpu_node: Coord,
        cycle: float,
        is_write: bool = False,
    ) -> float:
        """After the tag match: move the data.

        Reads: the tag array forwards the request to the bank, which
        returns the line to the CPU.  Writes: the CPU ships the line to
        the bank (write-through); nothing returns.
        """
        cfg = self.cfg
        latency = 0.0
        if is_write:
            if cpu_node != bank_node:
                latency += self.model.packet_latency(
                    cpu_node, bank_node, cfg.data_flits, cycle
                )
            return latency + cfg.bank_latency
        if tag_node != bank_node:
            latency += self.model.packet_latency(
                tag_node, bank_node, cfg.request_flits, cycle
            )
        latency += cfg.bank_latency
        if bank_node != cpu_node:
            latency += self.model.packet_latency(
                bank_node, cpu_node, cfg.data_flits, cycle
            )
        return latency

    def _price_perfect(
        self, cpu_node: Coord, outcome: AccessOutcome, cycle: float
    ) -> float:
        """CMP-DNUCA's perfect search: straight to the owning cluster."""
        cfg = self.cfg
        if outcome.hit:
            latency = 0.0
            if cpu_node != outcome.tag_node:
                latency += self.model.packet_latency(
                    cpu_node, outcome.tag_node, cfg.request_flits, cycle
                )
            latency += cfg.tag_latency
            latency += self._data_phase(
                outcome.tag_node, outcome.bank_node, cpu_node, cycle,
                outcome.access_type == AccessType.WRITE,
            )
            return latency
        latency = 0.0
        if cpu_node != outcome.tag_node:
            latency += self.model.packet_latency(
                cpu_node, outcome.tag_node, cfg.request_flits, cycle
            )
        latency += cfg.tag_latency + cfg.memory_latency
        self.model.note_packet(
            self.system.memory_node, outcome.bank_node, cfg.data_flits, cycle
        )
        return latency

    def charge_invalidations(
        self, src: Coord, cpu_targets: list[int], cycle: float
    ) -> None:
        """Invalidation + ack traffic (off the critical path)."""
        cfg = self.cfg
        for cpu in cpu_targets:
            node = self.topology.cpu_positions[cpu]
            if node == src:
                continue
            self.model.note_packet(src, node, cfg.request_flits, cycle)
            self.model.note_packet(node, src, cfg.request_flits, cycle)

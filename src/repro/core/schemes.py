"""The four schemes compared in the paper's evaluation (Section 5.2).

* **CMP-DNUCA** — the prior 2D approach of Beckmann & Wood with *perfect
  search* (the requester magically knows the owning cluster) and CPUs on
  the chip edges.
* **CMP-DNUCA-2D** — our 2D scheme: a single-layer special case of the 3D
  design, CPUs surrounded by cache banks, two-step search, migration.
* **CMP-SNUCA-3D** — the 3D design with migration disabled (static), to
  isolate the benefit of the 3D topology itself.
* **CMP-DNUCA-3D** — the full proposal: 3D topology plus the 3D-tailored
  migration policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.chip import ChipConfig
from repro.core.placement import PlacementPolicy


class Scheme(enum.Enum):
    CMP_DNUCA = "CMP-DNUCA"
    CMP_DNUCA_2D = "CMP-DNUCA-2D"
    CMP_SNUCA_3D = "CMP-SNUCA-3D"
    CMP_DNUCA_3D = "CMP-DNUCA-3D"

    @property
    def is_3d(self) -> bool:
        return self in (Scheme.CMP_SNUCA_3D, Scheme.CMP_DNUCA_3D)

    @property
    def migrates(self) -> bool:
        return self != Scheme.CMP_SNUCA_3D

    @property
    def perfect_search(self) -> bool:
        return self == Scheme.CMP_DNUCA


@dataclass
class SchemeSetup:
    """Everything needed to instantiate a scheme's system."""

    scheme: Scheme
    chip: ChipConfig
    placement: PlacementPolicy
    migration_enabled: bool
    perfect_search: bool


def make_chip_config(
    scheme: Scheme,
    cache_mb: int = 16,
    num_layers: int = 2,
    num_pillars: int = 8,
    num_cpus: int = 8,
) -> SchemeSetup:
    """Build the chip configuration and placement policy for a scheme.

    ``num_layers``/``num_pillars`` apply to the 3D schemes only; the 2D
    schemes always use a single layer with no pillars.
    """
    if scheme.is_3d:
        if num_layers < 2:
            raise ValueError(f"{scheme.value} requires at least two layers")
        chip = ChipConfig(
            num_cpus=num_cpus,
            num_layers=num_layers,
            num_pillars=num_pillars,
            cache_mb=cache_mb,
        )
        placement = (
            PlacementPolicy.MAXIMAL_OFFSET
            if num_cpus <= num_pillars
            else PlacementPolicy.ALGORITHM1
        )
    else:
        chip = ChipConfig(
            num_cpus=num_cpus,
            num_layers=1,
            num_pillars=0,
            cache_mb=cache_mb,
        )
        placement = (
            PlacementPolicy.EDGE_2D
            if scheme == Scheme.CMP_DNUCA
            else PlacementPolicy.CENTER_2D
        )
    return SchemeSetup(
        scheme=scheme,
        chip=chip,
        placement=placement,
        migration_enabled=scheme.migrates,
        perfect_search=scheme.perfect_search,
    )

"""Experiment scale settings.

The paper samples 2 billion cycles after a 500M-cycle warm-up; our
synthetic traces are scaled down so a full figure sweep completes in
minutes of wall clock.  Two scales are provided:

* ``quick`` — used by the pytest benchmarks: enough references for stable
  scheme orderings (a few percent run-to-run noise).
* ``full``  — used for the EXPERIMENTS.md numbers: ~2x the references and
  proportionally longer warm-up.

Select with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Trace sizing for one experiment run."""

    name: str
    refs_per_cpu: int
    warmup_fraction: float = 0.6   # of total events, across all CPUs
    seed: int = 2006

    def warmup_events_for(self, num_cpus: int) -> int:
        """Warm-up event count for a topology with ``num_cpus`` CPUs.

        Warm-up counts total events across all CPUs, so it must scale
        with the actual CPU count of the simulated system.
        """
        return int(num_cpus * self.refs_per_cpu * self.warmup_fraction)

    @property
    def warmup_events(self) -> int:
        """Deprecated: assumes the default 8-CPU topology.

        Use :meth:`warmup_events_for` with the system's real CPU count.
        """
        return self.warmup_events_for(8)

    def to_dict(self) -> dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "refs_per_cpu": self.refs_per_cpu,
            "warmup_fraction": self.warmup_fraction,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentScale":
        return cls(
            name=data["name"],
            refs_per_cpu=data["refs_per_cpu"],
            warmup_fraction=data["warmup_fraction"],
            seed=data["seed"],
        )


QUICK = ExperimentScale(name="quick", refs_per_cpu=30_000)
FULL = ExperimentScale(name="full", refs_per_cpu=60_000)

_SCALES = {"quick": QUICK, "full": FULL}


def current_scale() -> ExperimentScale:
    """Scale selected by ``REPRO_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_SCALE", "quick").lower()
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r}; choose from {sorted(_SCALES)}"
        ) from None

"""One driver for all ten table/figure reproductions.

Every experiment module exposes the same two-function interface:

* ``cells() -> list[SimSpec]`` — the simulation grid the experiment
  needs (empty for the analytic tables, which need no simulation), and
* ``render(results: Mapping[SimSpec, RunStats]) -> str`` — the
  paper-style text output given those cells' results.

:func:`run_experiment` is the single code path that executes them: it
collects the cells, hands them to the :mod:`repro.api` facade
(parallelism, result cache, failure records), and renders.  The CLI's
``experiments`` and ``sweep`` commands and the modules' own ``main()``
entry points all land here, so cells shared between experiments (Figs
13/14/15 and Table 5 overlap heavily) are simulated exactly once per
cache.
"""

from __future__ import annotations

import importlib
from typing import Callable, Optional

from repro import api
from repro.core.schemes import Scheme
from repro.experiments.orchestrator import SweepSummary, results_by_spec

#: Paper presentation order; also the CLI's ``experiments`` choices.
EXPERIMENT_NAMES: tuple[str, ...] = (
    "table1", "table2", "table3", "table5",
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
)

#: The paper's scheme presentation order (Fig 13/15 legends).
SCHEME_ORDER: tuple[Scheme, ...] = (
    Scheme.CMP_DNUCA,
    Scheme.CMP_DNUCA_2D,
    Scheme.CMP_SNUCA_3D,
    Scheme.CMP_DNUCA_3D,
)


def get_experiment(name: str):
    """The experiment module for ``name`` (validated against the registry)."""
    if name not in EXPERIMENT_NAMES:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {EXPERIMENT_NAMES}"
        )
    return importlib.import_module(f"repro.experiments.{name}")


def run_experiment(
    name: str,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> tuple[str, SweepSummary]:
    """Execute one experiment end to end; returns (rendered text, summary).

    Raises ``RuntimeError`` if any cell failed — the failure records are
    in the exception message (and in the returned summary of a direct
    :func:`~repro.experiments.orchestrator.run_sweep` call).
    """
    module = get_experiment(name)
    specs = module.cells()
    summary = api.sweep(
        specs,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
        progress=progress,
    )
    if summary.failures:
        details = "; ".join(
            f"{failure.spec.label()}: {failure.kind}"
            for failure in summary.failures
        )
        raise RuntimeError(f"{name}: {summary.failed} cell(s) failed: {details}")
    text = module.render(results_by_spec(summary, specs))
    return text, summary


def main_for(name: str) -> None:
    """Shared ``main()`` body for the experiment modules' CLI entry."""
    text, __ = run_experiment(name)
    print(text)

"""Rendering helpers: ASCII bar charts for the figure reproductions.

The paper's figures are grouped bar charts (Figs 13-15) and small line
series (Figs 16-18); these helpers render equivalent text charts so the
experiment modules and the CLI can show shapes directly in a terminal.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_BAR = "#"


def bar_chart(
    series: Mapping[str, float],
    width: int = 48,
    unit: str = "",
) -> str:
    """One horizontal bar per entry, scaled to the maximum value."""
    if not series:
        return "(empty)"
    peak = max(series.values())
    label_width = max(len(str(label)) for label in series)
    lines = []
    for label, value in series.items():
        length = int(round(value / peak * width)) if peak > 0 else 0
        lines.append(
            f"{str(label).rjust(label_width)} |{_BAR * length} "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Paper-style grouped bars: one block per group (benchmark), one bar
    per series (scheme)."""
    if not groups:
        return "(empty)"
    peak = max(
        value for group in groups.values() for value in group.values()
    )
    series_width = max(
        len(str(name)) for group in groups.values() for name in group
    )
    lines = []
    for group_label, group in groups.items():
        lines.append(f"{group_label}:")
        for name, value in group.items():
            length = int(round(value / peak * width)) if peak > 0 else 0
            lines.append(
                f"  {str(name).rjust(series_width)} |{_BAR * length} "
                f"{value:.2f}{unit}"
            )
    return "\n".join(lines)


def trend_lines(
    series: Mapping[str, Sequence[tuple[float, float]]],
    unit: str = "",
) -> str:
    """Small multiples for the sweep figures: x -> y per series."""
    lines = []
    for name, points in series.items():
        rendered = "  ".join(f"{x:g}:{y:.1f}{unit}" for x, y in points)
        first, last = points[0][1], points[-1][1]
        arrow = "falling" if last < first else "rising"
        lines.append(f"{name}: {rendered}   [{arrow}]")
    return "\n".join(lines)

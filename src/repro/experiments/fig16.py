"""Figure 16: average L2 hit latency at 16 / 32 / 64 MB.

The paper grows the cluster size (more banks per cluster) while keeping
16 clusters and 16-way associativity.  Shape targets: latency grows with
cache size under both topologies, but more slowly in 3D (~5 cycles per
doubling vs ~7 in 2D) — 3D scales better to large caches.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schemes import Scheme
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_scheme, format_table

# The paper's four representative benchmarks: art and galgel (low L1 miss
# rates), mgrid and swim (high).
BENCHMARKS = ("art", "galgel", "mgrid", "swim")
CACHE_SIZES_MB = (16, 32, 64)
SCHEMES = (Scheme.CMP_DNUCA_2D, Scheme.CMP_DNUCA_3D)


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    cache_sizes_mb: tuple[int, ...] = CACHE_SIZES_MB,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[tuple[Scheme, int], float]]:
    """hit latency[benchmark][(scheme, cache MB)]."""
    results: dict[str, dict[tuple[Scheme, int], float]] = {}
    for benchmark in benchmarks:
        results[benchmark] = {}
        for scheme in SCHEMES:
            for cache_mb in cache_sizes_mb:
                stats = run_scheme(
                    scheme, benchmark, cache_mb=cache_mb, scale=scale
                )
                results[benchmark][(scheme, cache_mb)] = (
                    stats.avg_l2_hit_latency
                )
    return results


def growth_per_doubling(
    results: dict[str, dict[tuple[Scheme, int], float]], scheme: Scheme
) -> float:
    """Mean latency increase per cache doubling for a scheme (cycles)."""
    deltas = []
    for row in results.values():
        sizes = sorted({mb for (s, mb) in row if s == scheme})
        for small, large in zip(sizes, sizes[1:]):
            deltas.append(row[(scheme, large)] - row[(scheme, small)])
    return sum(deltas) / len(deltas) if deltas else 0.0


def main() -> dict[str, dict[tuple[Scheme, int], float]]:
    results = run()
    headers = ["benchmark"] + [
        f"{s.value}@{mb}MB" for s in SCHEMES for mb in CACHE_SIZES_MB
    ]
    rows = [
        [bench]
        + [
            f"{results[bench][(s, mb)]:.1f}"
            for s in SCHEMES
            for mb in CACHE_SIZES_MB
        ]
        for bench in results
    ]
    print(
        format_table(
            headers, rows,
            title="Figure 16: average L2 hit latency vs cache size (cycles)",
        )
    )
    for scheme in SCHEMES:
        print(
            f"mean growth per doubling, {scheme.value}: "
            f"{growth_per_doubling(results, scheme):.1f} cycles"
        )
    return results


if __name__ == "__main__":
    main()

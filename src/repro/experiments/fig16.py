"""Figure 16: average L2 hit latency at 16 / 32 / 64 MB.

The paper grows the cluster size (more banks per cluster) while keeping
16 clusters and 16-way associativity.  Shape targets: latency grows with
cache size under both topologies, but more slowly in 3D (~5 cycles per
doubling vs ~7 in 2D) — 3D scales better to large caches.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec

# The paper's four representative benchmarks: art and galgel (low L1 miss
# rates), mgrid and swim (high).
BENCHMARKS = ("art", "galgel", "mgrid", "swim")
CACHE_SIZES_MB = (16, 32, 64)
SCHEMES = (Scheme.CMP_DNUCA_2D, Scheme.CMP_DNUCA_3D)


def cells(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    cache_sizes_mb: tuple[int, ...] = CACHE_SIZES_MB,
    scale: Optional[ExperimentScale] = None,
) -> list[SimSpec]:
    """Scheme x cache-size grid (the 16 MB cells coincide with Fig 13's)."""
    return [
        SimSpec.make(scheme, benchmark, scale=scale, cache_mb=cache_mb)
        for benchmark in benchmarks
        for scheme in SCHEMES
        for cache_mb in cache_sizes_mb
    ]


def tabulate(
    results: Mapping[SimSpec, RunStats]
) -> dict[str, dict[tuple[Scheme, int], float]]:
    """hit latency[benchmark][(scheme, cache MB)]."""
    table: dict[str, dict[tuple[Scheme, int], float]] = {}
    for spec, stats in results.items():
        table.setdefault(spec.benchmark, {})[
            (spec.scheme, spec.cache_mb)
        ] = stats.avg_l2_hit_latency
    return table


def growth_per_doubling(
    results: dict[str, dict[tuple[Scheme, int], float]], scheme: Scheme
) -> float:
    """Mean latency increase per cache doubling for a scheme (cycles)."""
    deltas = []
    for row in results.values():
        sizes = sorted({mb for (s, mb) in row if s == scheme})
        for small, large in zip(sizes, sizes[1:]):
            deltas.append(row[(scheme, large)] - row[(scheme, small)])
    return sum(deltas) / len(deltas) if deltas else 0.0


def render(results: Mapping[SimSpec, RunStats]) -> str:
    table = tabulate(results)
    headers = ["benchmark"] + [
        f"{s.value}@{mb}MB" for s in SCHEMES for mb in CACHE_SIZES_MB
    ]
    rows = [
        [bench]
        + [
            f"{table[bench][(s, mb)]:.1f}"
            for s in SCHEMES
            for mb in CACHE_SIZES_MB
        ]
        for bench in table
    ]
    lines = [
        format_table(
            headers, rows,
            title="Figure 16: average L2 hit latency vs cache size (cycles)",
        )
    ]
    for scheme in SCHEMES:
        lines.append(
            f"mean growth per doubling, {scheme.value}: "
            f"{growth_per_doubling(table, scheme):.1f} cycles"
        )
    return "\n".join(lines)


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    cache_sizes_mb: tuple[int, ...] = CACHE_SIZES_MB,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[tuple[Scheme, int], float]]:
    """Compatibility wrapper: simulate the grid and tabulate it."""
    from repro.experiments.orchestrator import results_by_spec, run_sweep

    specs = cells(benchmarks, cache_sizes_mb, scale=scale)
    summary = run_sweep(specs)
    return tabulate(results_by_spec(summary, specs))


def main() -> None:
    from repro.experiments.registry import main_for

    main_for("fig16")


if __name__ == "__main__":
    main()

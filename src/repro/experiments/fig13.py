"""Figure 13: average L2 hit latency under the four schemes.

Paper shape targets: CMP-DNUCA and CMP-DNUCA-2D are competitive;
CMP-SNUCA-3D beats CMP-DNUCA-2D by ~10 cycles on average despite doing no
migration; CMP-DNUCA-3D saves a further ~7 cycles (~17 total).
"""

from __future__ import annotations

from typing import Optional

from repro.core.schemes import Scheme
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_scheme, format_table, SCHEME_ORDER


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[Scheme, float]]:
    """Average L2 hit latency per benchmark per scheme (cycles)."""
    results: dict[str, dict[Scheme, float]] = {}
    for benchmark in benchmarks:
        results[benchmark] = {}
        for scheme in SCHEME_ORDER:
            stats = run_scheme(scheme, benchmark, scale=scale)
            results[benchmark][scheme] = stats.avg_l2_hit_latency
    return results


def averages(results: dict[str, dict[Scheme, float]]) -> dict[Scheme, float]:
    """Per-scheme mean over benchmarks."""
    return {
        scheme: sum(row[scheme] for row in results.values()) / len(results)
        for scheme in SCHEME_ORDER
    }


def main() -> dict[str, dict[Scheme, float]]:
    results = run()
    rows = [
        [bench] + [f"{results[bench][s]:.1f}" for s in SCHEME_ORDER]
        for bench in results
    ]
    mean = averages(results)
    rows.append(["AVERAGE"] + [f"{mean[s]:.1f}" for s in SCHEME_ORDER])
    print(
        format_table(
            ["benchmark"] + [s.value for s in SCHEME_ORDER],
            rows,
            title="Figure 13: average L2 hit latency (cycles)",
        )
    )
    return results


if __name__ == "__main__":
    main()

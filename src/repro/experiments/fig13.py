"""Figure 13: average L2 hit latency under the four schemes.

Paper shape targets: CMP-DNUCA and CMP-DNUCA-2D are competitive;
CMP-SNUCA-3D beats CMP-DNUCA-2D by ~10 cycles on average despite doing no
migration; CMP-DNUCA-3D saves a further ~7 cycles (~17 total).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import SCHEME_ORDER
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec


def cells(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> list[SimSpec]:
    """The scheme x benchmark grid at the default topology."""
    return [
        SimSpec.make(scheme, benchmark, scale=scale)
        for benchmark in benchmarks
        for scheme in SCHEME_ORDER
    ]


def tabulate(
    results: Mapping[SimSpec, RunStats]
) -> dict[str, dict[Scheme, float]]:
    """Average L2 hit latency per benchmark per scheme (cycles)."""
    table: dict[str, dict[Scheme, float]] = {}
    for spec, stats in results.items():
        table.setdefault(spec.benchmark, {})[spec.scheme] = (
            stats.avg_l2_hit_latency
        )
    return table


def averages(results: dict[str, dict[Scheme, float]]) -> dict[Scheme, float]:
    """Per-scheme mean over benchmarks."""
    return {
        scheme: sum(row[scheme] for row in results.values()) / len(results)
        for scheme in SCHEME_ORDER
    }


def render(results: Mapping[SimSpec, RunStats]) -> str:
    table = tabulate(results)
    rows = [
        [bench] + [f"{table[bench][s]:.1f}" for s in SCHEME_ORDER]
        for bench in table
    ]
    mean = averages(table)
    rows.append(["AVERAGE"] + [f"{mean[s]:.1f}" for s in SCHEME_ORDER])
    return format_table(
        ["benchmark"] + [s.value for s in SCHEME_ORDER],
        rows,
        title="Figure 13: average L2 hit latency (cycles)",
    )


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[Scheme, float]]:
    """Compatibility wrapper: simulate the grid and tabulate it."""
    from repro.experiments.orchestrator import results_by_spec, run_sweep

    specs = cells(benchmarks, scale=scale)
    summary = run_sweep(specs)
    return tabulate(results_by_spec(summary, specs))


def main() -> None:
    from repro.experiments.registry import main_for

    main_for("fig13")


if __name__ == "__main__":
    main()

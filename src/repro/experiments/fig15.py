"""Figure 15: IPC under the four schemes.

Paper shape targets: CMP-DNUCA-3D improves IPC over CMP-DNUCA-2D by up to
~37% (CMP-SNUCA-3D by up to ~18%), with the largest improvements on the
L2-intensive benchmarks mgrid, swim and wupwise.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import SCHEME_ORDER
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec


def cells(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> list[SimSpec]:
    """Same default-topology grid as Fig 13 (shared via the cache)."""
    return [
        SimSpec.make(scheme, benchmark, scale=scale)
        for benchmark in benchmarks
        for scheme in SCHEME_ORDER
    ]


def tabulate(
    results: Mapping[SimSpec, RunStats]
) -> dict[str, dict[Scheme, float]]:
    """Aggregate IPC per benchmark per scheme."""
    table: dict[str, dict[Scheme, float]] = {}
    for spec, stats in results.items():
        table.setdefault(spec.benchmark, {})[spec.scheme] = stats.ipc
    return table


def improvements(
    results: dict[str, dict[Scheme, float]]
) -> dict[str, dict[Scheme, float]]:
    """Percent IPC improvement of the 3D schemes over CMP-DNUCA-2D."""
    out: dict[str, dict[Scheme, float]] = {}
    for benchmark, row in results.items():
        base = row[Scheme.CMP_DNUCA_2D]
        out[benchmark] = {
            scheme: (row[scheme] / base - 1.0) * 100.0
            for scheme in (Scheme.CMP_SNUCA_3D, Scheme.CMP_DNUCA_3D)
        }
    return out


def render(results: Mapping[SimSpec, RunStats]) -> str:
    table = tabulate(results)
    gains = improvements(table)
    rows = []
    for bench in table:
        rows.append(
            [bench]
            + [f"{table[bench][s]:.3f}" for s in SCHEME_ORDER]
            + [
                f"{gains[bench][Scheme.CMP_SNUCA_3D]:+.1f}%",
                f"{gains[bench][Scheme.CMP_DNUCA_3D]:+.1f}%",
            ]
        )
    return format_table(
        ["benchmark"]
        + [s.value for s in SCHEME_ORDER]
        + ["SNUCA-3D gain", "DNUCA-3D gain"],
        rows,
        title="Figure 15: IPC (gains relative to CMP-DNUCA-2D)",
    )


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[Scheme, float]]:
    """Compatibility wrapper: simulate the grid and tabulate it."""
    from repro.experiments.orchestrator import results_by_spec, run_sweep

    specs = cells(benchmarks, scale=scale)
    summary = run_sweep(specs)
    return tabulate(results_by_spec(summary, specs))


def main() -> None:
    from repro.experiments.registry import main_for

    main_for("fig15")


if __name__ == "__main__":
    main()

"""Figure 15: IPC under the four schemes.

Paper shape targets: CMP-DNUCA-3D improves IPC over CMP-DNUCA-2D by up to
~37% (CMP-SNUCA-3D by up to ~18%), with the largest improvements on the
L2-intensive benchmarks mgrid, swim and wupwise.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schemes import Scheme
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_scheme, format_table, SCHEME_ORDER


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[Scheme, float]]:
    """Aggregate IPC per benchmark per scheme."""
    results: dict[str, dict[Scheme, float]] = {}
    for benchmark in benchmarks:
        results[benchmark] = {}
        for scheme in SCHEME_ORDER:
            stats = run_scheme(scheme, benchmark, scale=scale)
            results[benchmark][scheme] = stats.ipc
    return results


def improvements(
    results: dict[str, dict[Scheme, float]]
) -> dict[str, dict[Scheme, float]]:
    """Percent IPC improvement of the 3D schemes over CMP-DNUCA-2D."""
    out: dict[str, dict[Scheme, float]] = {}
    for benchmark, row in results.items():
        base = row[Scheme.CMP_DNUCA_2D]
        out[benchmark] = {
            scheme: (row[scheme] / base - 1.0) * 100.0
            for scheme in (Scheme.CMP_SNUCA_3D, Scheme.CMP_DNUCA_3D)
        }
    return out


def main() -> dict[str, dict[Scheme, float]]:
    results = run()
    gains = improvements(results)
    rows = []
    for bench in results:
        rows.append(
            [bench]
            + [f"{results[bench][s]:.3f}" for s in SCHEME_ORDER]
            + [
                f"{gains[bench][Scheme.CMP_SNUCA_3D]:+.1f}%",
                f"{gains[bench][Scheme.CMP_DNUCA_3D]:+.1f}%",
            ]
        )
    print(
        format_table(
            ["benchmark"]
            + [s.value for s in SCHEME_ORDER]
            + ["SNUCA-3D gain", "DNUCA-3D gain"],
            rows,
            title="Figure 15: IPC (gains relative to CMP-DNUCA-2D)",
        )
    )
    return results


if __name__ == "__main__":
    main()

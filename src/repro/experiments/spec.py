"""`SimSpec`: the unified description of one simulation cell.

Every experiment in the paper's evaluation is a grid of independent
(scheme x benchmark x topology) simulations.  A :class:`SimSpec` freezes
one grid cell — everything needed to reproduce that simulation bit for
bit — and gives it a stable content hash, which is simultaneously:

* the **cache key** for the on-disk result store
  (:mod:`repro.experiments.orchestrator`),
* the **seed material** for the cell's workload RNG (via
  :func:`repro.sim.rng.derive_seed`), so results depend only on the spec,
  never on which worker process ran the cell or in which order,
* the **identity** used to match results back to cells after a sweep
  (``SimSpec`` is frozen and hashable, so it keys result dicts directly).

The workload seed is derived from the *workload-identity* subset of the
spec (benchmark, trace sizing, CPU count, base seed) rather than the full
spec, so the four schemes — and the cache-size / pillar / layer sweeps —
see identical reference traces.  Paired comparisons across schemes are
what the paper's figures plot; sharing traces removes workload noise
from those deltas.

:func:`run_spec` is the one simulation entry point; callers wanting
caching or typed results should go through :func:`repro.api.run`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, RunStats, SystemConfig
from repro.noc.fabric import AUTO_FABRIC, resolve_fabric
from repro.faults.spec import FaultSpec
from repro.sim.rng import derive_seed
from repro.sim.trace import TraceSpec
from repro.experiments.config import ExperimentScale, current_scale

#: Bump when the simulation's semantics change incompatibly, so stale
#: cached artifacts are never mistaken for current results.
SPEC_VERSION = 1


@dataclass(frozen=True)
class SimSpec:
    """One immutable simulation cell of an experiment grid."""

    scheme: Scheme
    benchmark: str
    scale: ExperimentScale
    layers: int = 2
    pillars: int = 8
    cache_mb: int = 16
    seed: int = 2006
    num_cpus: int = 8
    # Pin CPUs to the 8-pillar reference floorplan while the pillar
    # budget varies (Fig 17 isolates the interconnect effect).
    fixed_floorplan: bool = False
    # Timing fidelity: "model" (analytic latency model) or "cycle"
    # (packets fly through the real fabric).
    mode: str = "model"
    # NoC fabric for mode="cycle": "optimized" (allocation-free object
    # hot path), "reference" (frozen naive oracle), or "vector" (numpy
    # structure-of-arrays batch fabric; distribution-level equivalent,
    # fastest at every load since its occupancy-adaptive advance).
    # "auto" is accepted and resolved to a concrete name at construction
    # (vector for cycle-mode with numpy, optimized otherwise), so spec
    # hashes only ever cover concrete fabrics.  Ignored by mode="model".
    fabric: str = "optimized"
    # FabricKind.VECTOR only: occupancy at or below which the fabric
    # runs its scalar per-flit path.  None (default) keeps the
    # NetworkConfig default and leaves pre-existing spec hashes intact.
    sparse_threshold: Optional[int] = None
    # Per-cell tracing opt-in: a TraceSpec makes simulate() attach a
    # RingTracer to the system, so a single sweep cell can be traced
    # reproducibly.  None (default) keeps the NullTracer.
    trace: Optional[TraceSpec] = None
    # Fault injection opt-in: a FaultSpec degrades the cell (dead
    # pillars/links/banks, jammed ports) with random targets resolved
    # deterministically from the cell seed.  None (default) keeps the
    # run fault-unaware and every pre-existing spec hash unchanged.
    faults: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.fabric == AUTO_FABRIC:
            object.__setattr__(self, "fabric", resolve_fabric(self.mode)[0])

    @classmethod
    def make(
        cls,
        scheme: Scheme,
        benchmark: str,
        scale: Optional[ExperimentScale] = None,
        **overrides,
    ) -> "SimSpec":
        """Spec with the ambient scale (``REPRO_SCALE``) filled in."""
        scale = scale or current_scale()
        if "seed" not in overrides:
            overrides["seed"] = scale.seed
        return cls(scheme=scheme, benchmark=benchmark, scale=scale, **overrides)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form; exact inverse of :meth:`from_dict`.

        ``mode`` and ``trace`` are emitted only when they differ from the
        defaults, so every pre-existing spec hash (and therefore every
        cached artifact) is unchanged by their introduction.
        """
        data = {
            "version": SPEC_VERSION,
            "scheme": self.scheme.value,
            "benchmark": self.benchmark,
            "scale": self.scale.to_dict(),
            "layers": self.layers,
            "pillars": self.pillars,
            "cache_mb": self.cache_mb,
            "seed": self.seed,
            "num_cpus": self.num_cpus,
            "fixed_floorplan": self.fixed_floorplan,
        }
        if self.mode != "model":
            data["mode"] = self.mode
        if self.fabric != "optimized":
            data["fabric"] = self.fabric
        if self.sparse_threshold is not None:
            data["sparse_threshold"] = self.sparse_threshold
        if self.trace is not None:
            data["trace"] = self.trace.to_dict()
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimSpec":
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"spec version {version} incompatible with {SPEC_VERSION}"
            )
        return cls(
            scheme=Scheme(data["scheme"]),
            benchmark=data["benchmark"],
            scale=ExperimentScale.from_dict(data["scale"]),
            layers=data["layers"],
            pillars=data["pillars"],
            cache_mb=data["cache_mb"],
            seed=data["seed"],
            num_cpus=data["num_cpus"],
            fixed_floorplan=data["fixed_floorplan"],
            mode=data.get("mode", "model"),
            fabric=data.get("fabric", "optimized"),
            sparse_threshold=data.get("sparse_threshold"),
            trace=(
                TraceSpec.from_dict(data["trace"])
                if data.get("trace") is not None
                else None
            ),
            faults=(
                FaultSpec.from_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
        )

    # -- identity --------------------------------------------------------------

    def spec_hash(self) -> str:
        """Stable content hash: the cache key for this cell's results."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def workload_hash(self) -> str:
        """Hash of the workload-identity subset of the spec.

        Cells that differ only in scheme or topology share this hash and
        therefore see identical reference traces (paired comparison).
        """
        identity = json.dumps(
            {
                "benchmark": self.benchmark,
                "refs_per_cpu": self.scale.refs_per_cpu,
                "num_cpus": self.num_cpus,
                "seed": self.seed,
            },
            sort_keys=True,
        )
        return hashlib.sha256(identity.encode()).hexdigest()

    def cell_seed(self) -> int:
        """Workload RNG seed for this cell.

        Derived from the workload hash through the same fold as every
        named RNG stream (:func:`repro.sim.rng.derive_seed`): a pure
        function of the spec, independent of worker process or ordering.
        """
        return derive_seed(self.seed, f"cell:{self.workload_hash()}")

    def label(self) -> str:
        """Short human-readable cell name for progress/failure reports."""
        extras = []
        if self.cache_mb != 16:
            extras.append(f"{self.cache_mb}MB")
        if self.layers != 2:
            extras.append(f"{self.layers}L")
        if self.pillars != 8:
            extras.append(f"{self.pillars}p")
        if self.faults is not None and not self.faults.is_zero:
            extras.append("faulty")
        suffix = f" [{','.join(extras)}]" if extras else ""
        return f"{self.scheme.value}/{self.benchmark}{suffix}"

    def with_overrides(self, **changes) -> "SimSpec":
        """Frozen-dataclass ``replace`` with a stable public name."""
        return replace(self, **changes)


def build_system_config(spec: SimSpec) -> SystemConfig:
    """The `SystemConfig` a spec denotes (shared by run and describe paths)."""
    config = SystemConfig(
        scheme=spec.scheme,
        cache_mb=spec.cache_mb,
        num_layers=spec.layers,
        num_pillars=spec.pillars,
        num_cpus=spec.num_cpus,
        mode=spec.mode,
        noc_fabric=spec.fabric,
        noc_sparse_threshold=spec.sparse_threshold,
        faults=spec.faults,
        fault_seed=spec.seed,
    )
    if spec.fixed_floorplan:
        config.cpu_positions_override = _reference_positions(spec)
    return config


def _reference_positions(spec: SimSpec) -> dict:
    """CPU coordinates of the scheme's default 8-pillar placement."""
    from repro.core.placement import build_topology
    from repro.core.schemes import make_chip_config

    setup = make_chip_config(
        spec.scheme,
        cache_mb=spec.cache_mb,
        num_layers=spec.layers,
        num_pillars=8,
        num_cpus=spec.num_cpus,
    )
    return dict(build_topology(setup.chip, setup.placement).cpu_positions)


def simulate(
    spec: SimSpec, system_config: Optional[SystemConfig] = None
) -> tuple[NetworkInMemory, RunStats]:
    """Simulate one cell, returning the simulated system with its stats.

    Callers that inspect post-run system state (energy accounting, the
    CLI's ``--energy`` report) need the instance that actually ran;
    everyone else should use :func:`run_spec`.
    """
    from repro.workloads.generator import SyntheticWorkload

    config = system_config or build_system_config(spec)
    if spec.trace is not None and config.tracer is None:
        config.tracer = spec.trace.make_tracer()
    system = NetworkInMemory(config)
    workload = SyntheticWorkload(
        spec.benchmark,
        num_cpus=config.num_cpus,
        refs_per_cpu=spec.scale.refs_per_cpu,
        seed=spec.cell_seed(),
    )
    stats = system.run_trace(
        workload.traces(),
        warmup_events=spec.scale.warmup_events_for(config.num_cpus),
    )
    return system, stats


def run_spec(
    spec: SimSpec, system_config: Optional[SystemConfig] = None
) -> RunStats:
    """Simulate one cell.  Pure: the result is a function of the spec only.

    ``system_config`` lets callers inject a pre-built configuration for
    ablations the spec cannot express; such runs bypass the result cache
    (the orchestrator only ever passes plain specs).
    """
    __, stats = simulate(spec, system_config=system_config)
    return stats

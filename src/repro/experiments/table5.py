"""Table 5: benchmark characterization.

Reports the paper's recorded values (fast-forward cycles and L2
transaction counts for the 2 B-cycle sample) next to the synthetic
generator's measured behaviour at the current scale: L1 miss rate and L2
transactions.  The shape target is the *relative* intensity ordering —
mgrid, swim and wupwise must dominate the others in L2 transactions, as
their higher L1 miss rates dictate.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.workloads.benchmarks import BENCHMARKS
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec


def cells(
    scale: Optional[ExperimentScale] = None,
) -> list[SimSpec]:
    """One CMP-DNUCA-3D run per benchmark (shared with Fig 13's column)."""
    return [
        SimSpec.make(Scheme.CMP_DNUCA_3D, name, scale=scale)
        for name in BENCHMARKS
    ]


def tabulate(
    results: Mapping[SimSpec, RunStats]
) -> dict[str, dict[str, float]]:
    """Per-benchmark: paper columns plus measured L1 miss / L2 volume."""
    stats_by_benchmark = {spec.benchmark: stats for spec, stats in results.items()}
    table: dict[str, dict[str, float]] = {}
    for name, profile in BENCHMARKS.items():
        stats = stats_by_benchmark[name]
        table[name] = {
            "fastforward_mcycles": profile.fastforward_mcycles,
            "paper_l2_transactions": profile.l2_transactions_paper,
            "measured_l1_miss_rate": stats.l1_miss_rate,
            "measured_l2_transactions": stats.l2_accesses,
            "paper_intensity": profile.paper_intensity,
            "measured_intensity": (
                stats.l2_accesses / stats.cycles if stats.cycles else 0.0
            ),
        }
    return table


def render(results: Mapping[SimSpec, RunStats]) -> str:
    table = tabulate(results)
    rows = [
        [
            name,
            f"{row['fastforward_mcycles']:,}",
            f"{row['paper_l2_transactions']:,}",
            f"{row['measured_l1_miss_rate']:.3f}",
            f"{row['measured_l2_transactions']:,}",
            f"{row['paper_intensity']:.4f}",
            f"{row['measured_intensity']:.4f}",
        ]
        for name, row in table.items()
    ]
    return format_table(
        [
            "benchmark",
            "ffwd (Mcyc, paper)",
            "L2 txns (paper)",
            "L1 miss (ours)",
            "L2 txns (ours)",
            "txn/cyc (paper)",
            "txn/cyc (ours)",
        ],
        rows,
        title="Table 5: benchmark characterization (paper vs synthetic)",
    )


def run(
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[str, float]]:
    """Compatibility wrapper: simulate the grid and tabulate it."""
    from repro.experiments.orchestrator import results_by_spec, run_sweep

    specs = cells(scale=scale)
    summary = run_sweep(specs)
    return tabulate(results_by_spec(summary, specs))


def main() -> None:
    from repro.experiments.registry import main_for

    main_for("table5")


if __name__ == "__main__":
    main()

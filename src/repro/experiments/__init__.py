"""Reproduction harness: one module per table/figure in the paper.

Each experiment module exposes a ``run(...)`` function returning
structured results and a ``main()`` that prints the paper-style table.
Run them all from the command line::

    python -m repro.experiments.fig13        # avg L2 hit latency
    python -m repro.experiments.fig14        # migration counts
    python -m repro.experiments.fig15        # IPC
    python -m repro.experiments.fig16        # cache-size scaling
    python -m repro.experiments.fig17        # pillar count sweep
    python -m repro.experiments.fig18        # layer count sweep
    python -m repro.experiments.table1       # component area/power
    python -m repro.experiments.table2       # via-pitch pillar area
    python -m repro.experiments.table3       # thermal profiles
    python -m repro.experiments.table5       # workload characterization

Scale knobs live in :mod:`repro.experiments.config`; the ``REPRO_SCALE``
environment variable selects ``quick`` (default) or ``full``.

Each module exposes the uniform experiment interface — ``cells()``
returning the grid of :class:`~repro.experiments.spec.SimSpec` cells and
``render(results)`` producing the paper-style text — which the
orchestrator (:mod:`repro.experiments.orchestrator`), the CLI's
``experiments``/``sweep`` commands, and the registry driver
(:mod:`repro.experiments.registry`) all execute through one code path,
with process parallelism and an on-disk result cache.
"""

from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.orchestrator import (
    ResultCache,
    SweepSummary,
    run_sweep,
)
from repro.experiments.registry import (
    EXPERIMENT_NAMES,
    SCHEME_ORDER,
    run_experiment,
)
from repro.experiments.spec import SimSpec, run_spec

__all__ = [
    "ExperimentScale",
    "current_scale",
    "run_spec",
    "run_sweep",
    "run_experiment",
    "ResultCache",
    "SweepSummary",
    "SimSpec",
    "SCHEME_ORDER",
    "EXPERIMENT_NAMES",
]

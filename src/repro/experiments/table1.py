"""Table 1: area and power of the dTDMA components vs a 5-port router."""

from __future__ import annotations

from repro.models.components import table1_rows, pillar_overhead_vs_router
from repro.experiments.runner import format_table


def run() -> list[tuple[str, float, float]]:
    return table1_rows()


def main() -> list[tuple[str, float, float]]:
    rows = run()
    formatted = []
    for name, power_w, area_mm2 in rows:
        power = (
            f"{power_w * 1e3:.2f} mW" if power_w >= 1e-3
            else f"{power_w * 1e6:.2f} uW"
        )
        formatted.append([name, power, f"{area_mm2:.8g} mm^2"])
    print(
        format_table(
            ["Component", "Power", "Area"],
            formatted,
            title="Table 1: area and power overhead of the dTDMA bus (90 nm)",
        )
    )
    power_ratio, area_ratio = pillar_overhead_vs_router(num_layers=4)
    print(
        f"4-layer pillar hardware vs one router: "
        f"{power_ratio * 100:.3f}% power, {area_ratio * 100:.3f}% area"
    )
    return rows


if __name__ == "__main__":
    main()

"""Table 1: area and power of the dTDMA components vs a 5-port router."""

from __future__ import annotations

from typing import Mapping

from repro.core.system import RunStats
from repro.models.components import table1_rows, pillar_overhead_vs_router
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec


def cells() -> list[SimSpec]:
    """Analytic table: no simulation cells."""
    return []


def run() -> list[tuple[str, float, float]]:
    return table1_rows()


def render(results: Mapping[SimSpec, RunStats] = ()) -> str:
    rows = run()
    formatted = []
    for name, power_w, area_mm2 in rows:
        power = (
            f"{power_w * 1e3:.2f} mW" if power_w >= 1e-3
            else f"{power_w * 1e6:.2f} uW"
        )
        formatted.append([name, power, f"{area_mm2:.8g} mm^2"])
    power_ratio, area_ratio = pillar_overhead_vs_router(num_layers=4)
    return "\n".join(
        [
            format_table(
                ["Component", "Power", "Area"],
                formatted,
                title=(
                    "Table 1: area and power overhead of the dTDMA bus "
                    "(90 nm)"
                ),
            ),
            (
                f"4-layer pillar hardware vs one router: "
                f"{power_ratio * 100:.3f}% power, {area_ratio * 100:.3f}% area"
            ),
        ]
    )


def main() -> list[tuple[str, float, float]]:
    print(render({}))
    return run()


if __name__ == "__main__":
    main()

"""Table 3: thermal profiles of the placement configurations.

Shape targets (peak temperature ordering):
2D < 3D-2L optimal ~ k=2 < k=1 < 2L stacked, and 4L optimal < 4L stacked;
all 2-layer rows share one average temperature (total power over the same
sink footprint), as the paper's identical 63.94 C column shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.chip import ChipConfig
from repro.core.placement import PlacementPolicy
from repro.core.system import RunStats
from repro.thermal import simulate_thermal, ThermalProfile
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec


@dataclass(frozen=True)
class ThermalCase:
    label: str
    config: ChipConfig
    placement: PlacementPolicy
    k: int
    paper_peak: float
    paper_avg: float
    paper_min: float


CASES: tuple[ThermalCase, ...] = (
    ThermalCase(
        "2D, maximal offset",
        ChipConfig(num_layers=1, num_pillars=0),
        PlacementPolicy.CENTER_2D, 1, 111.05, 53.96, 46.77,
    ),
    ThermalCase(
        "3D-2L, optimal offset",
        ChipConfig(num_layers=2, num_pillars=8),
        PlacementPolicy.MAXIMAL_OFFSET, 1, 119.05, 63.94, 49.21,
    ),
    ThermalCase(
        "3D-2L, offset k=2",
        ChipConfig(num_layers=2, num_pillars=2),
        PlacementPolicy.ALGORITHM1, 2, 125.02, 63.94, 49.59,
    ),
    ThermalCase(
        "3D-2L, offset k=1",
        ChipConfig(num_layers=2, num_pillars=2),
        PlacementPolicy.ALGORITHM1, 1, 135.24, 63.94, 49.52,
    ),
    ThermalCase(
        "3D-2L, CPU stacking",
        ChipConfig(num_layers=2, num_pillars=8),
        PlacementPolicy.STACKED, 1, 173.38, 63.94, 50.73,
    ),
    ThermalCase(
        "3D-4L, optimal offset",
        ChipConfig(num_layers=4, num_pillars=8),
        PlacementPolicy.MAXIMAL_OFFSET, 1, 158.67, 86.62, 64.79,
    ),
    ThermalCase(
        "3D-4L, CPU stacking",
        ChipConfig(num_layers=4, num_pillars=8),
        PlacementPolicy.STACKED, 1, 287.12, 86.62, 58.51,
    ),
)


def cells() -> list[SimSpec]:
    """Thermal solve, not a trace simulation: no orchestrator cells."""
    return []


def run() -> list[tuple[ThermalCase, ThermalProfile]]:
    return [
        (
            case,
            simulate_thermal(
                config=case.config,
                placement=case.placement,
                k=case.k,
                label=case.label,
            ),
        )
        for case in CASES
    ]


def _format(results: list[tuple[ThermalCase, ThermalProfile]]) -> str:
    rows = [
        [
            case.label,
            f"{profile.peak_c:.2f} ({case.paper_peak:.2f})",
            f"{profile.avg_c:.2f} ({case.paper_avg:.2f})",
            f"{profile.min_c:.2f} ({case.paper_min:.2f})",
        ]
        for case, profile in results
    ]
    return format_table(
        ["Configuration", "Peak C (paper)", "Avg C (paper)", "Min C (paper)"],
        rows,
        title="Table 3: thermal profile of placement configurations",
    )


def render(results: Mapping[SimSpec, RunStats] = ()) -> str:
    return _format(run())


def main() -> list[tuple[ThermalCase, ThermalProfile]]:
    results = run()
    print(_format(results))
    return results


if __name__ == "__main__":
    main()

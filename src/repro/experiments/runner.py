"""Shared experiment helpers: the legacy runner shim and table formatting.

The simulation entry point moved to the :mod:`repro.api` facade
(``repro.api.run`` over a frozen :class:`~repro.experiments.spec.SimSpec`;
grids of cells through ``repro.api.sweep``).  ``run_scheme`` below
survives as a deprecated keyword-argument shim over the facade.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.schemes import Scheme
from repro.core.system import SystemConfig, RunStats
from repro.experiments.config import ExperimentScale
from repro.experiments.spec import SimSpec

# The paper's presentation order (Fig 13/15 legends).
SCHEME_ORDER: tuple[Scheme, ...] = (
    Scheme.CMP_DNUCA,
    Scheme.CMP_DNUCA_2D,
    Scheme.CMP_SNUCA_3D,
    Scheme.CMP_DNUCA_3D,
)


def run_scheme(
    scheme: Scheme,
    benchmark: str,
    cache_mb: int = 16,
    num_layers: int = 2,
    num_pillars: int = 8,
    scale: Optional[ExperimentScale] = None,
    system_config: Optional[SystemConfig] = None,
) -> RunStats:
    """Simulate one scheme on one benchmark at the given scale.

    .. deprecated::
        Build a :class:`~repro.experiments.spec.SimSpec` and call
        :func:`repro.api.run` instead — the facade returns typed
        results, and its specs are hashable, serializable, and cacheable
        by the orchestrator.  This shim remains for callers of the
        original kwargs API.
    """
    warnings.warn(
        "run_scheme() is deprecated; use "
        "repro.api.run(SimSpec.make(...)) — the unified submission "
        "facade (repro.api.run/sweep/submit)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    spec = SimSpec.make(
        scheme,
        benchmark,
        scale=scale,
        cache_mb=cache_mb,
        layers=num_layers,
        pillars=num_pillars,
    )
    return api.run(spec, system_config=system_config).stats


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Plain-text table used by every experiment's ``main``."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)

"""Shared experiment helpers: plain-text table formatting.

The simulation entry point lives at the :mod:`repro.api` facade
(``repro.api.run`` over a frozen :class:`~repro.experiments.spec.SimSpec`;
grids of cells through ``repro.api.sweep``).  The paper's scheme
presentation order lives with the rest of the experiment registry
(:data:`repro.experiments.registry.SCHEME_ORDER`).
"""

from __future__ import annotations


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Plain-text table used by every experiment's ``main``."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)

"""Shared experiment runner: one (scheme, benchmark, topology) simulation."""

from __future__ import annotations

from typing import Optional

from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, SystemConfig, RunStats
from repro.workloads.generator import SyntheticWorkload
from repro.experiments.config import ExperimentScale, current_scale

# The paper's presentation order (Fig 13/15 legends).
SCHEME_ORDER: tuple[Scheme, ...] = (
    Scheme.CMP_DNUCA,
    Scheme.CMP_DNUCA_2D,
    Scheme.CMP_SNUCA_3D,
    Scheme.CMP_DNUCA_3D,
)


def run_scheme(
    scheme: Scheme,
    benchmark: str,
    cache_mb: int = 16,
    num_layers: int = 2,
    num_pillars: int = 8,
    scale: Optional[ExperimentScale] = None,
    system_config: Optional[SystemConfig] = None,
) -> RunStats:
    """Simulate one scheme on one benchmark at the given scale."""
    scale = scale or current_scale()
    config = system_config or SystemConfig(
        scheme=scheme,
        cache_mb=cache_mb,
        num_layers=num_layers,
        num_pillars=num_pillars,
    )
    system = NetworkInMemory(config)
    workload = SyntheticWorkload(
        benchmark,
        num_cpus=config.num_cpus,
        refs_per_cpu=scale.refs_per_cpu,
        seed=scale.seed,
    )
    return system.run_trace(
        workload.traces(), warmup_events=scale.warmup_events
    )


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Plain-text table used by every experiment's ``main``."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)

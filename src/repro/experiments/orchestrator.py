"""Parallel, cache-backed sweep runner for experiment grids.

The paper's evaluation is embarrassingly parallel: every figure/table is
a grid of independent :class:`~repro.experiments.spec.SimSpec` cells.
:func:`run_sweep` executes such a grid with

* **process parallelism** — cells fan out across ``jobs`` worker
  processes; because each cell's RNG seed is a pure function of its spec
  (:meth:`SimSpec.cell_seed`), parallel results are bit-identical to a
  serial run regardless of scheduling,
* **an on-disk result cache** — artifacts live under ``.repro_cache/``
  keyed by the spec's content hash; a hit skips the simulation entirely,
  so overlapping grids (Figs 13/14/15 and Table 5 share most cells) pay
  for each cell once,
* **robustness plumbing** — a per-cell wall-clock timeout, bounded retry
  on worker crash, and a structured :class:`CellFailure` record instead
  of aborting the whole sweep.

The sweep returns a :class:`SweepSummary` whose counters (``simulated``,
``cached``, ``failed``) make cache behaviour auditable: a warm-cache
rerun reports ``simulated == 0``.

:func:`execute_cell` is the single-cell unit of the same fan-out —
one worker process, per-cell timeout, bounded crash/timeout retry —
factored out so other schedulers (the ``repro serve`` job store in
:mod:`repro.serve.scheduler`) submit cells one at a time instead of as a
closed batch.  Failures surface as :class:`CellExecutionError` carrying
the same structured ``kind`` a :class:`CellFailure` records.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Mapping, Optional, Sequence

from repro.core.system import RunStats
from repro.experiments.spec import SimSpec, run_spec, simulate
from repro.sim.trace import write_trace

#: Bump when the artifact layout changes; mismatched artifacts are misses.
CACHE_VERSION = 1

#: Default cache root (override with ``REPRO_CACHE_DIR`` or ``cache_dir=``).
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


class ResultCache:
    """Content-addressed store of finished cell results.

    One JSON artifact per spec hash, sharded by the first two hex digits
    (``.repro_cache/ab/ab12...json``).  Artifacts embed the full spec so
    a hit can be validated against the requesting spec; any mismatch,
    parse error, or version skew is treated as a miss and the artifact is
    rewritten after re-simulation (self-healing on corruption).
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()

    def _path(self, spec_hash: str) -> str:
        return os.path.join(self.root, spec_hash[:2], f"{spec_hash}.json")

    def get(self, spec: SimSpec) -> Optional[RunStats]:
        """The cached result for ``spec``, or None on any kind of miss."""
        path = self._path(spec.spec_hash())
        try:
            with open(path, encoding="utf-8") as handle:
                artifact = json.load(handle)
            if artifact.get("cache_version") != CACHE_VERSION:
                return None
            if artifact.get("spec") != spec.to_dict():
                return None
            return RunStats.from_dict(artifact["stats"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def read_artifact(self, spec_hash: str) -> Optional[dict]:
        """The raw artifact dict for a spec hash, or None if absent/torn.

        Used by the sweep service's artifact endpoint, which addresses
        results by hash alone (no spec to validate against); version skew
        and parse errors are misses, exactly like :meth:`get`.
        """
        try:
            with open(self._path(spec_hash), encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, ValueError):
            return None
        if artifact.get("cache_version") != CACHE_VERSION:
            return None
        return artifact

    def put(self, spec: SimSpec, stats: RunStats) -> None:
        """Atomically persist a result (tmp file + rename).

        ``mkstemp`` gives every writer a private temp file and
        ``os.replace`` swaps it in atomically, so concurrent workers —
        including workers of *different* server jobs racing on the same
        ``spec_hash`` — can never leave a torn artifact: readers see
        either a previous complete artifact or the new one.
        """
        path = self._path(spec.spec_hash())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        artifact = {
            "cache_version": CACHE_VERSION,
            "spec": spec.to_dict(),
            "stats": stats.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(artifact, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell that could not produce a result."""

    spec: SimSpec
    # "error" | "timeout" | "crash", plus the structured simulation
    # failure kinds: "stall" (run_until budget exhausted) and
    # "deadlock" (the liveness watchdog detected no forward progress).
    kind: str
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass
class SweepSummary:
    """Results and accounting for one sweep invocation."""

    results: dict[SimSpec, RunStats] = field(default_factory=dict)
    failures: list[CellFailure] = field(default_factory=list)
    simulated: int = 0     # cells that actually ran a simulation
    cached: int = 0        # cells satisfied from the on-disk cache
    elapsed_s: float = 0.0

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def total(self) -> int:
        return len(self.results) + self.failed

    def describe(self) -> str:
        return (
            f"{self.total} cells: {self.simulated} simulated, "
            f"{self.cached} cached, {self.failed} failed "
            f"({self.elapsed_s:.1f}s)"
        )

    def to_dict(self) -> dict:
        return {
            "cells": [
                {"spec": spec.to_dict(), "stats": stats.to_dict()}
                for spec, stats in self.results.items()
            ],
            "failures": [failure.to_dict() for failure in self.failures],
            "simulated": self.simulated,
            "cached": self.cached,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
        }


def trace_path(spec: SimSpec, trace_dir: str) -> str:
    """Where a traced cell's export lands: ``trace_dir/<spec_hash><suffix>``."""
    assert spec.trace is not None
    return os.path.join(
        trace_dir, f"{spec.spec_hash()}{spec.trace.filename_suffix()}"
    )


def _run_cell(spec: SimSpec, trace_dir: Optional[str]) -> RunStats:
    """Simulate one cell; export its trace when the spec opts in."""
    if spec.trace is None or trace_dir is None:
        return run_spec(spec)
    system, stats = simulate(spec)
    os.makedirs(trace_dir, exist_ok=True)
    write_trace(
        system.tracer, trace_path(spec, trace_dir), spec.trace.format
    )
    return stats


def _failure_kind(exc: BaseException) -> str:
    """Structured failure classification for a cell exception.

    Simulation errors that carry a ``failure_kind`` attribute
    (:class:`~repro.sim.engine.SimulationStallError` and its
    :class:`~repro.faults.watchdog.DeadlockError` subclass) surface it;
    everything else is a generic ``"error"``.
    """
    kind = getattr(exc, "failure_kind", "error")
    return kind if isinstance(kind, str) else "error"


def _cell_entry(spec_dict: dict, conn, trace_dir: Optional[str] = None) -> None:
    """Worker-process entry: simulate one cell, ship the result back."""
    try:
        spec = SimSpec.from_dict(spec_dict)
        stats = _run_cell(spec, trace_dir)
        conn.send(("ok", stats.to_dict()))
    except BaseException as exc:  # report, don't die silently
        conn.send(("error", _failure_kind(exc),
                   f"{type(exc).__name__}: {exc}",
                   traceback.format_exc(limit=8)))
    finally:
        conn.close()


class CellExecutionError(Exception):
    """A single-cell execution could not produce a result.

    The exception-shaped twin of :class:`CellFailure` for callers that
    run cells one at a time (:func:`execute_cell`): same structured
    ``kind`` ("error" | "timeout" | "crash" | "stall" | "deadlock"),
    message, and attempt count, so the sweep service can map it straight
    to an error body.
    """

    def __init__(self, kind: str, message: str, attempts: int = 1):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.attempts = attempts

    def to_failure(self, spec: SimSpec) -> CellFailure:
        return CellFailure(spec, self.kind, self.message, self.attempts)


def execute_cell(
    spec: SimSpec,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    trace_dir: Optional[str] = None,
) -> RunStats:
    """Run one cell in a fresh worker process and block for its result.

    The single-cell unit of the PR-2 fan-out: process isolation, an
    optional per-cell wall-clock timeout, and up to ``retries``
    re-executions after a worker crash or timeout.  Structured
    simulation failures (stall, deadlock, plain errors) are **not**
    retried — they are deterministic functions of the spec — and raise
    :class:`CellExecutionError` immediately.
    """
    ctx = multiprocessing.get_context()
    attempt = 0
    while True:
        attempt += 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_cell_entry,
            args=(spec.to_dict(), child_conn, trace_dir),
            daemon=True,
        )
        process.start()
        child_conn.close()
        payload = None
        timed_out = False
        try:
            if timeout_s is not None and not parent_conn.poll(timeout_s):
                timed_out = True
            else:
                try:
                    payload = parent_conn.recv()
                except (EOFError, OSError):
                    payload = None  # worker died before sending
        finally:
            parent_conn.close()
            if payload is None:
                process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join()

        if payload is not None and payload[0] == "ok":
            return RunStats.from_dict(payload[1])
        if payload is not None:
            __, kind, message, trace = payload
            raise CellExecutionError(
                kind, f"{message}\n{trace}", attempts=attempt
            )
        if timed_out:
            kind, message = "timeout", f"exceeded {timeout_s:.1f}s"
        else:
            kind = "crash"
            message = f"worker exited with code {process.exitcode}"
        if attempt <= retries:
            continue
        raise CellExecutionError(kind, message, attempts=attempt)


@dataclass
class _Slot:
    """One in-flight worker process."""

    index: int
    process: multiprocessing.Process
    conn: object
    deadline: Optional[float]


def run_sweep(
    specs: Sequence[SimSpec],
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    runner: Optional[Callable[[SimSpec], RunStats]] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace_dir: Optional[str] = None,
) -> SweepSummary:
    """Run every cell of a grid, in parallel, through the result cache.

    ``jobs <= 1`` runs cells inline in this process (the determinism
    reference; ``timeout_s`` does not apply).  ``jobs > 1`` fans cells
    out across worker processes with per-cell timeout and up to
    ``retries`` re-executions after a crash or timeout.  Duplicate specs
    are simulated once.  ``runner`` overrides the cell function for the
    inline path (tests inject failing runners); parallel workers always
    execute :func:`run_spec`.

    Cells whose spec carries a :class:`~repro.sim.trace.TraceSpec` export
    their event trace to ``trace_dir/<spec_hash><suffix>`` (requires
    ``trace_dir``; the export happens only when the cell actually
    simulates — a cache hit reuses the stats without re-tracing).
    """
    summary = SweepSummary()
    started = time.monotonic()
    cache = ResultCache(cache_dir) if use_cache else None

    def _silent(message: str) -> None:
        pass

    say = progress or _silent

    # Resolve cache hits up front; deduplicate the remainder.
    pending: list[SimSpec] = []
    seen: set[SimSpec] = set()
    for spec in specs:
        if spec in seen or spec in summary.results:
            continue
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            summary.results[spec] = hit
            summary.cached += 1
        else:
            pending.append(spec)
            seen.add(spec)
    if summary.cached:
        say(f"cache: {summary.cached} hit(s), {len(pending)} to simulate")

    def finish(spec: SimSpec, stats: RunStats) -> None:
        summary.results[spec] = stats
        summary.simulated += 1
        if cache is not None:
            cache.put(spec, stats)
        say(f"done {spec.label()} ({len(summary.results)} ready)")

    if jobs <= 1 or len(pending) <= 1:
        cell = runner or (lambda spec: _run_cell(spec, trace_dir))
        for spec in pending:
            try:
                finish(spec, cell(spec))
            except Exception as exc:
                summary.failures.append(
                    CellFailure(spec, _failure_kind(exc),
                                f"{type(exc).__name__}: {exc}", attempts=1)
                )
                say(f"FAILED {spec.label()}: {exc}")
        summary.elapsed_s = time.monotonic() - started
        return summary

    _run_parallel(
        pending, jobs, timeout_s, retries, finish, summary, say, trace_dir
    )
    summary.elapsed_s = time.monotonic() - started
    return summary


def _run_parallel(
    pending: Sequence[SimSpec],
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    finish: Callable[[SimSpec, RunStats], None],
    summary: SweepSummary,
    say: Callable[[str], None],
    trace_dir: Optional[str] = None,
) -> None:
    """Fan ``pending`` out over worker processes with timeout + retry."""
    ctx = multiprocessing.get_context()
    queue: list[tuple[int, int]] = [(i, 1) for i in range(len(pending))]
    slots: dict[int, _Slot] = {}
    attempts: dict[int, int] = {}

    def launch(index: int, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_cell_entry,
            args=(pending[index].to_dict(), child_conn, trace_dir),
            daemon=True,
        )
        process.start()
        child_conn.close()
        attempts[index] = attempt
        slots[index] = _Slot(
            index=index,
            process=process,
            conn=parent_conn,
            deadline=(
                time.monotonic() + timeout_s if timeout_s is not None else None
            ),
        )

    def reap(slot: _Slot) -> None:
        slot.conn.close()
        slot.process.join()
        del slots[slot.index]

    def retry_or_fail(slot: _Slot, kind: str, message: str) -> None:
        spec = pending[slot.index]
        attempt = attempts[slot.index]
        if attempt <= retries:
            say(f"retrying {spec.label()} after {kind} "
                f"(attempt {attempt + 1})")
            queue.append((slot.index, attempt + 1))
        else:
            summary.failures.append(
                CellFailure(spec, kind, message, attempts=attempt)
            )
            say(f"FAILED {spec.label()}: {kind}: {message}")

    try:
        while queue or slots:
            while queue and len(slots) < jobs:
                index, attempt = queue.pop(0)
                launch(index, attempt)

            ready = connection_wait(
                [slot.conn for slot in slots.values()], timeout=0.05
            )
            for slot in [s for s in slots.values() if s.conn in ready]:
                try:
                    payload = slot.conn.recv()
                except (EOFError, OSError):
                    # The worker died before sending anything.
                    reap(slot)
                    code = slot.process.exitcode
                    retry_or_fail(
                        slot, "crash", f"worker exited with code {code}"
                    )
                    continue
                reap(slot)
                if payload[0] == "ok":
                    finish(pending[slot.index],
                           RunStats.from_dict(payload[1]))
                else:
                    __, kind, message, trace = payload
                    spec = pending[slot.index]
                    summary.failures.append(
                        CellFailure(
                            spec, kind, f"{message}\n{trace}",
                            attempts=attempts[slot.index],
                        )
                    )
                    say(f"FAILED {spec.label()}: {message}")

            now = time.monotonic()
            for slot in [
                s for s in slots.values()
                if s.deadline is not None and now > s.deadline
            ]:
                slot.process.terminate()
                slot.process.join(timeout=5.0)
                if slot.process.is_alive():
                    slot.process.kill()
                reap(slot)
                retry_or_fail(
                    slot, "timeout", f"exceeded {timeout_s:.1f}s"
                )
    finally:
        for slot in list(slots.values()):
            slot.process.terminate()
            slot.process.join(timeout=5.0)
            if slot.process.is_alive():
                slot.process.kill()
            slot.conn.close()
            del slots[slot.index]


def results_by_spec(
    summary: SweepSummary, specs: Sequence[SimSpec]
) -> Mapping[SimSpec, RunStats]:
    """The sweep's results restricted (and checked) against a cell list."""
    missing = [spec.label() for spec in specs if spec not in summary.results]
    if missing:
        raise KeyError(
            f"sweep produced no result for: {', '.join(sorted(set(missing)))}"
        )
    return {spec: summary.results[spec] for spec in specs}

"""Table 2: pillar wiring area for different inter-wafer via pitches."""

from __future__ import annotations

from typing import Mapping

from repro.core.system import RunStats
from repro.models.via import table2_rows, area_overhead_vs_router
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec


def cells() -> list[SimSpec]:
    """Analytic table: no simulation cells."""
    return []


def run() -> list[tuple[float, float]]:
    return table2_rows()


def render(results: Mapping[SimSpec, RunStats] = ()) -> str:
    rows = run()
    formatted = [
        [
            f"{pitch:g} um",
            f"{area:.0f} um^2",
            f"{area_overhead_vs_router(pitch) * 100:.3f}%",
        ]
        for pitch, area in rows
    ]
    return format_table(
        ["Via pitch", "Pillar area (128b bus + 42 ctrl)", "vs router"],
        formatted,
        title="Table 2: inter-wafer wiring area per pillar",
    )


def main() -> list[tuple[float, float]]:
    print(render({}))
    return run()


if __name__ == "__main__":
    main()

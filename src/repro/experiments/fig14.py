"""Figure 14: block migrations, normalized to CMP-DNUCA-2D.

Paper shape targets: the 3D scheme migrates much less frequently than the
2D schemes (the 3D vicinity cylinder already covers the data); CMP-DNUCA
(per-hit bankset promotion) migrates more than our 2D scheme.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec

# Fig 14 plots these two, normalized against CMP-DNUCA-2D.
PLOTTED = (Scheme.CMP_DNUCA, Scheme.CMP_DNUCA_3D)


def cells(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> list[SimSpec]:
    """Plotted schemes plus the normalization baseline, per benchmark.

    These are the same default-topology cells Fig 13 simulates, so a
    shared cache satisfies this figure without running anything.
    """
    return [
        SimSpec.make(scheme, benchmark, scale=scale)
        for benchmark in benchmarks
        for scheme in (Scheme.CMP_DNUCA_2D, *PLOTTED)
    ]


def tabulate(
    results: Mapping[SimSpec, RunStats]
) -> dict[str, dict[Scheme, float]]:
    """Migration counts normalized to CMP-DNUCA-2D, per benchmark."""
    migrations: dict[str, dict[Scheme, int]] = {}
    for spec, stats in results.items():
        migrations.setdefault(spec.benchmark, {})[spec.scheme] = (
            stats.migrations
        )
    table: dict[str, dict[Scheme, float]] = {}
    for benchmark, row in migrations.items():
        baseline = row[Scheme.CMP_DNUCA_2D]
        table[benchmark] = {
            scheme: (row[scheme] / baseline if baseline else float("inf"))
            for scheme in PLOTTED
        }
    return table


def render(results: Mapping[SimSpec, RunStats]) -> str:
    table = tabulate(results)
    rows = [
        [bench] + [f"{table[bench][s]:.2f}" for s in PLOTTED]
        for bench in table
    ]
    mean = {
        s: sum(r[s] for r in table.values()) / len(table) for s in PLOTTED
    }
    rows.append(["AVERAGE"] + [f"{mean[s]:.2f}" for s in PLOTTED])
    return format_table(
        ["benchmark"] + [s.value for s in PLOTTED],
        rows,
        title=(
            "Figure 14: block migrations normalized to CMP-DNUCA-2D "
            "(= 1.0)"
        ),
    )


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[Scheme, float]]:
    """Compatibility wrapper: simulate the grid and tabulate it."""
    from repro.experiments.orchestrator import results_by_spec, run_sweep

    specs = cells(benchmarks, scale=scale)
    summary = run_sweep(specs)
    return tabulate(results_by_spec(summary, specs))


def main() -> None:
    from repro.experiments.registry import main_for

    main_for("fig14")


if __name__ == "__main__":
    main()

"""Figure 14: block migrations, normalized to CMP-DNUCA-2D.

Paper shape targets: the 3D scheme migrates much less frequently than the
2D schemes (the 3D vicinity cylinder already covers the data); CMP-DNUCA
(per-hit bankset promotion) migrates more than our 2D scheme.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schemes import Scheme
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_scheme, format_table

# Fig 14 plots these two, normalized against CMP-DNUCA-2D.
PLOTTED = (Scheme.CMP_DNUCA, Scheme.CMP_DNUCA_3D)


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[Scheme, float]]:
    """Migration counts normalized to CMP-DNUCA-2D, per benchmark."""
    results: dict[str, dict[Scheme, float]] = {}
    for benchmark in benchmarks:
        baseline = run_scheme(
            Scheme.CMP_DNUCA_2D, benchmark, scale=scale
        ).migrations
        results[benchmark] = {}
        for scheme in PLOTTED:
            migrations = run_scheme(scheme, benchmark, scale=scale).migrations
            results[benchmark][scheme] = (
                migrations / baseline if baseline else float("inf")
            )
    return results


def main() -> dict[str, dict[Scheme, float]]:
    results = run()
    rows = [
        [bench] + [f"{results[bench][s]:.2f}" for s in PLOTTED]
        for bench in results
    ]
    mean = {
        s: sum(r[s] for r in results.values()) / len(results) for s in PLOTTED
    }
    rows.append(["AVERAGE"] + [f"{mean[s]:.2f}" for s in PLOTTED])
    print(
        format_table(
            ["benchmark"] + [s.value for s in PLOTTED],
            rows,
            title=(
                "Figure 14: block migrations normalized to CMP-DNUCA-2D "
                "(= 1.0)"
            ),
        )
    )
    return results


if __name__ == "__main__":
    main()

"""Figure 18: impact of the layer count on CMP-SNUCA-3D.

More layers shrink each layer's footprint, cutting in-plane distances
(Figure 2's sqrt(n) wire-length scaling), at the thermal cost shown in
Table 3.  Shape target: 2 -> 4 layers saves 3-8 cycles of L2 latency.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schemes import Scheme
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_scheme, format_table

BENCHMARKS = ("art", "galgel", "mgrid", "swim")
LAYER_COUNTS = (2, 4)


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    layer_counts: tuple[int, ...] = LAYER_COUNTS,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[int, float]]:
    """hit latency[benchmark][layer count] for CMP-SNUCA-3D."""
    results: dict[str, dict[int, float]] = {}
    for benchmark in benchmarks:
        results[benchmark] = {}
        for layers in layer_counts:
            stats = run_scheme(
                Scheme.CMP_SNUCA_3D, benchmark,
                num_layers=layers, scale=scale,
            )
            results[benchmark][layers] = stats.avg_l2_hit_latency
    return results


def main() -> dict[str, dict[int, float]]:
    results = run()
    rows = [
        [bench]
        + [f"{results[bench][layers]:.1f}" for layers in LAYER_COUNTS]
        + [f"{results[bench][2] - results[bench][4]:+.1f}"]
        for bench in results
    ]
    print(
        format_table(
            ["benchmark"]
            + [f"{layers} layers" for layers in LAYER_COUNTS]
            + ["saved 2->4"],
            rows,
            title=(
                "Figure 18: average L2 hit latency vs layer count, "
                "CMP-SNUCA-3D (cycles)"
            ),
        )
    )
    return results


if __name__ == "__main__":
    main()

"""Figure 18: impact of the layer count on CMP-SNUCA-3D.

More layers shrink each layer's footprint, cutting in-plane distances
(Figure 2's sqrt(n) wire-length scaling), at the thermal cost shown in
Table 3.  Shape target: 2 -> 4 layers saves 3-8 cycles of L2 latency.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec

BENCHMARKS = ("art", "galgel", "mgrid", "swim")
LAYER_COUNTS = (2, 4)


def cells(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    layer_counts: tuple[int, ...] = LAYER_COUNTS,
    scale: Optional[ExperimentScale] = None,
) -> list[SimSpec]:
    """Layer sweep for CMP-SNUCA-3D (2-layer cells coincide with Fig 13's)."""
    return [
        SimSpec.make(
            Scheme.CMP_SNUCA_3D, benchmark, scale=scale, layers=layers
        )
        for benchmark in benchmarks
        for layers in layer_counts
    ]


def tabulate(
    results: Mapping[SimSpec, RunStats]
) -> dict[str, dict[int, float]]:
    """hit latency[benchmark][layer count] for CMP-SNUCA-3D."""
    table: dict[str, dict[int, float]] = {}
    for spec, stats in results.items():
        table.setdefault(spec.benchmark, {})[spec.layers] = (
            stats.avg_l2_hit_latency
        )
    return table


def render(results: Mapping[SimSpec, RunStats]) -> str:
    table = tabulate(results)
    rows = [
        [bench]
        + [f"{table[bench][layers]:.1f}" for layers in LAYER_COUNTS]
        + [f"{table[bench][2] - table[bench][4]:+.1f}"]
        for bench in table
    ]
    return format_table(
        ["benchmark"]
        + [f"{layers} layers" for layers in LAYER_COUNTS]
        + ["saved 2->4"],
        rows,
        title=(
            "Figure 18: average L2 hit latency vs layer count, "
            "CMP-SNUCA-3D (cycles)"
        ),
    )


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    layer_counts: tuple[int, ...] = LAYER_COUNTS,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[int, float]]:
    """Compatibility wrapper: simulate the grid and tabulate it."""
    from repro.experiments.orchestrator import results_by_spec, run_sweep

    specs = cells(benchmarks, layer_counts, scale=scale)
    summary = run_sweep(specs)
    return tabulate(results_by_spec(summary, specs))


def main() -> None:
    from repro.experiments.registry import main_for

    main_for("fig18")


if __name__ == "__main__":
    main()

"""Figure 17: impact of the pillar count on CMP-DNUCA-3D.

Fewer pillars means more contention for the vertical buses and longer
in-plane detours to reach one.  The floorplan (CPU positions) is held
fixed at the 8-pillar reference placement while the via budget varies —
the experiment isolates the interconnect effect, exactly the knob the
inter-layer via pitch controls (``SimSpec.fixed_floorplan``).  Shape
target: moving from 8 pillars to 2 costs 1-7 cycles of average L2
latency.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.schemes import Scheme
from repro.core.system import RunStats
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import format_table
from repro.experiments.spec import SimSpec

BENCHMARKS = ("art", "galgel", "mgrid", "swim")
PILLAR_COUNTS = (8, 4, 2)


def cells(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    pillar_counts: tuple[int, ...] = PILLAR_COUNTS,
    scale: Optional[ExperimentScale] = None,
) -> list[SimSpec]:
    """Pillar sweep for CMP-DNUCA-3D on the pinned reference floorplan."""
    return [
        SimSpec.make(
            Scheme.CMP_DNUCA_3D, benchmark, scale=scale,
            pillars=pillars, fixed_floorplan=True,
        )
        for benchmark in benchmarks
        for pillars in pillar_counts
    ]


def tabulate(
    results: Mapping[SimSpec, RunStats]
) -> dict[str, dict[int, float]]:
    """hit latency[benchmark][pillar count] for CMP-DNUCA-3D."""
    table: dict[str, dict[int, float]] = {}
    for spec, stats in results.items():
        table.setdefault(spec.benchmark, {})[spec.pillars] = (
            stats.avg_l2_hit_latency
        )
    return table


def render(results: Mapping[SimSpec, RunStats]) -> str:
    table = tabulate(results)
    rows = [
        [bench] + [f"{table[bench][p]:.1f}" for p in PILLAR_COUNTS]
        for bench in table
    ]
    return format_table(
        ["benchmark"] + [f"{p} pillars" for p in PILLAR_COUNTS],
        rows,
        title=(
            "Figure 17: average L2 hit latency vs pillar count, "
            "CMP-DNUCA-3D (cycles)"
        ),
    )


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    pillar_counts: tuple[int, ...] = PILLAR_COUNTS,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[int, float]]:
    """Compatibility wrapper: simulate the grid and tabulate it."""
    from repro.experiments.orchestrator import results_by_spec, run_sweep

    specs = cells(benchmarks, pillar_counts, scale=scale)
    summary = run_sweep(specs)
    return tabulate(results_by_spec(summary, specs))


def main() -> None:
    from repro.experiments.registry import main_for

    main_for("fig17")


if __name__ == "__main__":
    main()

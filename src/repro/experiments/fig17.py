"""Figure 17: impact of the pillar count on CMP-DNUCA-3D.

Fewer pillars means more contention for the vertical buses and longer
in-plane detours to reach one.  The floorplan (CPU positions) is held
fixed at the 8-pillar reference placement while the via budget varies —
the experiment isolates the interconnect effect, exactly the knob the
inter-layer via pitch controls.  Shape target: moving from 8 pillars to
2 costs 1-7 cycles of average L2 latency.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schemes import Scheme, make_chip_config
from repro.core.system import SystemConfig
from repro.core.placement import build_topology
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_scheme, format_table

BENCHMARKS = ("art", "galgel", "mgrid", "swim")
PILLAR_COUNTS = (8, 4, 2)


def _reference_positions():
    """CPU coordinates of the default 8-pillar placement."""
    setup = make_chip_config(Scheme.CMP_DNUCA_3D, num_pillars=8)
    return dict(build_topology(setup.chip, setup.placement).cpu_positions)


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    pillar_counts: tuple[int, ...] = PILLAR_COUNTS,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, dict[int, float]]:
    """hit latency[benchmark][pillar count] for CMP-DNUCA-3D."""
    reference = _reference_positions()
    results: dict[str, dict[int, float]] = {}
    for benchmark in benchmarks:
        results[benchmark] = {}
        for pillars in pillar_counts:
            config = SystemConfig(
                scheme=Scheme.CMP_DNUCA_3D,
                num_pillars=pillars,
                cpu_positions_override=reference,
            )
            stats = run_scheme(
                Scheme.CMP_DNUCA_3D, benchmark,
                num_pillars=pillars, scale=scale, system_config=config,
            )
            results[benchmark][pillars] = stats.avg_l2_hit_latency
    return results


def main() -> dict[str, dict[int, float]]:
    results = run()
    rows = [
        [bench] + [f"{results[bench][p]:.1f}" for p in PILLAR_COUNTS]
        for bench in results
    ]
    print(
        format_table(
            ["benchmark"] + [f"{p} pillars" for p in PILLAR_COUNTS],
            rows,
            title=(
                "Figure 17: average L2 hit latency vs pillar count, "
                "CMP-DNUCA-3D (cycles)"
            ),
        )
    )
    return results


if __name__ == "__main__":
    main()

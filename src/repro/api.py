"""``repro.api``: the one submission facade over every way to simulate.

Several entry points grew organically as the repo scaled — ``simulate``
(system + stats), ``run_spec`` (stats only), and ``run_sweep``
(parallel cached grids).  This module consolidates them behind three
verbs that every surface — the CLI, the figure/table registry, and the
``repro serve`` HTTP server — calls through:

* :func:`run` — one cell, synchronously, optionally through the
  content-addressed result cache; returns a typed :class:`CellResult`.
* :func:`sweep` — a grid of cells through the orchestrator (process
  fan-out, cache, structured failures), or — with ``server=`` — through
  a running ``repro serve`` head over HTTP; returns a
  :class:`~repro.experiments.orchestrator.SweepSummary` either way.
* :func:`submit` — asynchronous submission of a grid to a
  :class:`~repro.serve.scheduler.JobStore` (the multi-tenant sweep
  service core); returns a :class:`~repro.serve.scheduler.Job` handle
  with in-flight dedup against every other tenant's cells.

:func:`simulate` is re-exported for the few callers that need the live
simulated system (energy reports, trace export); everything else should
stay at this facade.  (The historical ``run_scheme`` kwargs shim was
retired in PR 9 — build a :class:`SimSpec` and call :func:`run`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.core.system import RunStats, SystemConfig
from repro.experiments.orchestrator import (
    ResultCache,
    SweepSummary,
    run_sweep,
)
from repro.experiments.spec import SimSpec, run_spec, simulate

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serve.scheduler import Job, JobStore

__all__ = [
    "CellResult",
    "run",
    "sweep",
    "submit",
    "simulate",
    "SimSpec",
    "SweepSummary",
]


@dataclass(frozen=True)
class CellResult:
    """Typed result of one :func:`run` call."""

    spec: SimSpec
    stats: RunStats
    #: True when the result came from the on-disk cache (no simulation).
    cached: bool

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "stats": self.stats.to_dict(),
            "cached": self.cached,
        }


def run(
    spec: Optional[SimSpec] = None,
    *,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    system_config: Optional[SystemConfig] = None,
    **spec_kwargs,
) -> CellResult:
    """Run one simulation cell and return its typed result.

    Pass either a prebuilt :class:`SimSpec`, or ``scheme=``/``benchmark=``
    (plus any :meth:`SimSpec.make` overrides) to build one here.  With
    ``use_cache`` the cell goes through the same content-addressed store
    the orchestrator uses: a hit skips the simulation (``cached=True``),
    a miss simulates and persists.  ``system_config`` injects a pre-built
    configuration for ablations the spec cannot express; such runs bypass
    the cache (the artifact would not be a pure function of the spec).
    """
    if spec is None:
        spec = SimSpec.make(**spec_kwargs)
    elif spec_kwargs:
        raise TypeError(
            "pass either a prebuilt SimSpec or SimSpec.make() keywords, "
            f"not both (got spec and {sorted(spec_kwargs)})"
        )
    if system_config is not None:
        return CellResult(
            spec, run_spec(spec, system_config=system_config), cached=False
        )
    cache = ResultCache(cache_dir) if use_cache else None
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            return CellResult(spec, hit, cached=True)
    stats = run_spec(spec)
    if cache is not None:
        cache.put(spec, stats)
    return CellResult(spec, stats, cached=False)


def sweep(
    specs: Sequence[SimSpec],
    *,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    runner: Optional[Callable[[SimSpec], RunStats]] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace_dir: Optional[str] = None,
    server: Optional[str] = None,
    tenant: str = "default",
    outage_grace_s: float = 0.0,
) -> SweepSummary:
    """Run a grid of cells through the sweep orchestrator.

    Thin, stable facade over
    :func:`repro.experiments.orchestrator.run_sweep` — same semantics
    (process fan-out, result cache, per-cell timeout/retry, structured
    :class:`~repro.experiments.orchestrator.CellFailure` records).

    With ``server="http://host:port"`` the grid is instead submitted to
    a running ``repro serve`` head under ``tenant`` and the service's
    results are folded back into the same
    :class:`~repro.experiments.orchestrator.SweepSummary` shape; the
    orchestrator knobs (``jobs``, cache, timeout, retries) are then
    server-side concerns and ignored here.  Service failures raise the
    typed :class:`~repro.serve.client.ServeError` hierarchy; a positive
    ``outage_grace_s`` keeps the client retrying through a head outage
    (e.g. a restart) for that long instead of failing fast.
    """
    if server is not None:
        from repro.serve.client import ServeClient

        client = ServeClient.from_url(
            server, tenant=tenant, outage_grace_s=outage_grace_s
        )
        return client.sweep(specs, progress=progress)
    return run_sweep(
        specs,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
        runner=runner,
        progress=progress,
        trace_dir=trace_dir,
    )


async def submit(
    specs: Sequence[SimSpec],
    *,
    tenant: str = "default",
    store: Optional["JobStore"] = None,
) -> "Job":
    """Submit a grid asynchronously; returns the :class:`Job` handle.

    The job resolves cache hits immediately, dedupes against cells
    already in flight for any tenant, and fair-queues the rest onto the
    store's worker pool.  Raises
    :class:`~repro.serve.scheduler.QueueFullError` when the store's
    pending-cell limit is reached (the HTTP layer maps this to
    429 + Retry-After).  Without an explicit ``store`` a process-wide
    default store (bound to the running event loop) is created on first
    use.
    """
    if store is None:
        store = await default_store()
    return await store.submit(specs, tenant=tenant)


_DEFAULT_STORE: Optional["JobStore"] = None


async def default_store() -> "JobStore":
    """The lazily created process-wide job store used by bare submit()."""
    global _DEFAULT_STORE
    from repro.serve.scheduler import JobStore

    if _DEFAULT_STORE is None or not _DEFAULT_STORE.is_running:
        _DEFAULT_STORE = JobStore()
        await _DEFAULT_STORE.start()
    return _DEFAULT_STORE

"""Live fault map: what is broken *right now*, plus degradation accounting.

One :class:`FaultState` per simulation holds the sets the tolerance
mechanisms consult on their hot paths (dead pillars for injection-time
pillar selection, dead links and jammed ports for fault-aware routing,
dead banks for NUCA remapping), owns the ``faults.*`` scoped counters,
and fans change notifications out to listeners (the network clears
router evaluate caches and wakes them; the cache layer re-derives
capacity).

A ``FaultState`` is only created when a non-empty fault schedule is
installed — zero-fault runs carry no state object at all, so their
statistics snapshots (and therefore the differential tests) are
bit-identical to fault-unaware runs.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.routing import Coord, Port

# Listener signature: (kind, target, phase) with phase "inject" | "heal".
FaultListener = Callable[[str, tuple, str], None]


class FaultState:
    """Mutable fault sets + degradation counters for one simulation."""

    def __init__(
        self,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.stats = stats or StatsRegistry("faults")
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._track = self._tracer.track("faults")
        self.dead_pillars: set[tuple[int, int]] = set()
        self.dead_links: set[tuple[Coord, Port]] = set()
        self.jammed_ports: set[tuple[Coord, Port]] = set()
        self.dead_banks: set[tuple[int, int]] = set()
        # Bumped on every inject/heal; consumers cache derived data
        # (e.g. the model-mode alive-pillar list) keyed by epoch.
        self.epoch = 0
        self._listeners: list[FaultListener] = []
        # Network hook: called once per lost in-network packet so
        # in-flight accounting drains instead of hanging.
        self.on_packet_lost: Optional[Callable] = None
        scope = self.stats.scope("faults")
        self._injected = scope.counter("injected")
        self._healed = scope.counter("healed")
        self._packets_lost = scope.counter("packets_lost")
        self._flits_dropped = scope.counter("flits_dropped")
        self._unreachable = scope.counter("unreachable")
        self._bank_remaps = scope.counter("bank_remapped")
        self._bank_lines_lost = scope.counter("bank_lines_lost")

    # -- subscriptions ----------------------------------------------------

    def add_listener(self, listener: FaultListener) -> None:
        self._listeners.append(listener)

    def _mark(self, cycle: int, kind: str, target: tuple, phase: str) -> None:
        self.epoch += 1
        if phase == "inject":
            self._injected.increment()
        else:
            self._healed.increment()
        tracer = self._tracer
        if tracer.enabled:
            tracer.fault(cycle, self._track, kind, tuple(target), phase)
        for listener in self._listeners:
            listener(kind, target, phase)

    # -- fault mutations --------------------------------------------------

    def fail_pillar(self, xy: tuple[int, int], cycle: int = 0) -> None:
        if xy not in self.dead_pillars:
            self.dead_pillars.add(xy)
            self._mark(cycle, "pillar", xy, "inject")

    def heal_pillar(self, xy: tuple[int, int], cycle: int = 0) -> None:
        if xy in self.dead_pillars:
            self.dead_pillars.discard(xy)
            self._mark(cycle, "pillar", xy, "heal")

    def fail_link(self, coord: Coord, port: Port, cycle: int = 0) -> None:
        key = (coord, port)
        if key not in self.dead_links:
            self.dead_links.add(key)
            self._mark(cycle, "link", (*coord, port.value), "inject")

    def heal_link(self, coord: Coord, port: Port, cycle: int = 0) -> None:
        key = (coord, port)
        if key in self.dead_links:
            self.dead_links.discard(key)
            self._mark(cycle, "link", (*coord, port.value), "heal")

    def jam_port(self, coord: Coord, port: Port, cycle: int = 0) -> None:
        key = (coord, port)
        if key not in self.jammed_ports:
            self.jammed_ports.add(key)
            self._mark(cycle, "router_port", (*coord, port.value), "inject")

    def heal_port(self, coord: Coord, port: Port, cycle: int = 0) -> None:
        key = (coord, port)
        if key in self.jammed_ports:
            self.jammed_ports.discard(key)
            self._mark(cycle, "router_port", (*coord, port.value), "heal")

    def fail_bank(self, bank: tuple[int, int], cycle: int = 0) -> None:
        if bank not in self.dead_banks:
            self.dead_banks.add(bank)
            self._mark(cycle, "bank", bank, "inject")

    def heal_bank(self, bank: tuple[int, int], cycle: int = 0) -> None:
        if bank in self.dead_banks:
            self.dead_banks.discard(bank)
            self._mark(cycle, "bank", bank, "heal")

    # -- hot-path queries -------------------------------------------------

    @property
    def mesh_faulty(self) -> bool:
        """True when routing must consult the fault map at all."""
        return bool(self.dead_links)

    # -- degradation accounting ------------------------------------------

    def flit_dropped(self, count: int = 1) -> None:
        self._flits_dropped.increment(count)

    def packet_lost(self, packet, in_network: bool = True) -> None:
        """Record the loss of ``packet`` exactly once.

        ``in_network`` distinguishes packets dropped after injection
        (the network's in-flight count must drain) from packets refused
        at the injection boundary (never counted in flight).
        """
        if packet.lost:
            return
        packet.lost = True
        self._packets_lost.increment()
        if in_network and self.on_packet_lost is not None:
            self.on_packet_lost(packet)

    def packet_unreachable(self, packet, in_network: bool = True) -> None:
        """An alive route to ``packet.dest`` no longer exists."""
        self._unreachable.increment()
        self.packet_lost(packet, in_network=in_network)

    def bank_remapped(self, count: int = 1) -> None:
        self._bank_remaps.increment(count)

    def bank_lines_lost(self, count: int = 1) -> None:
        self._bank_lines_lost.increment(count)

    # -- reporting --------------------------------------------------------

    def summary(self) -> dict:
        return {
            "dead_pillars": sorted(self.dead_pillars),
            "dead_links": sorted(
                (*coord, port.value) for coord, port in self.dead_links
            ),
            "jammed_ports": sorted(
                (*coord, port.value) for coord, port in self.jammed_ports
            ),
            "dead_banks": sorted(self.dead_banks),
            "packets_lost": self._packets_lost.value,
            "unreachable": self._unreachable.value,
        }

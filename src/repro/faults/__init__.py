"""Deterministic fault injection and graceful-degradation machinery.

See :mod:`repro.faults.spec` for the fault taxonomy and determinism
contract, :mod:`repro.faults.state` for the live fault map the
tolerance mechanisms consult, :mod:`repro.faults.injector` for schedule
application, and :mod:`repro.faults.watchdog` for deadlock detection.
"""

from repro.faults.spec import (
    DEFAULT_WATCHDOG_WINDOW,
    FAULT_KINDS,
    FaultEvent,
    FaultSpec,
    mesh_link_targets,
    parse_fault_arg,
)
from repro.faults.state import FaultState
from repro.faults.injector import (
    FaultHarness,
    FaultInjector,
    install_network_faults,
)
from repro.faults.watchdog import DeadlockError, LivenessWatchdog

__all__ = [
    "DEFAULT_WATCHDOG_WINDOW",
    "FAULT_KINDS",
    "DeadlockError",
    "FaultEvent",
    "FaultHarness",
    "FaultInjector",
    "FaultSpec",
    "FaultState",
    "LivenessWatchdog",
    "install_network_faults",
    "mesh_link_targets",
    "parse_fault_arg",
]

"""Liveness watchdog: turn silent deadlocks into structured errors.

Fault-aware routing is only minimally adaptive and a jammed router port
is an intentional stall, so a faulted fabric can genuinely deadlock.
Without a watchdog that shows up as ``run_until`` spinning to its cycle
budget and raising a generic stall — uninformative and slow.  The
:class:`LivenessWatchdog` instead checks, every ``window`` cycles, that
*something* moved while packets were in flight (deliveries, losses, mesh
flit forwards, or bus transfers), and raises :class:`DeadlockError`
naming the stalled routers and pillars the moment a whole window passes
with zero progress.

The watchdog is a self-rescheduling engine *event*, not a clocked
component: it never perturbs the active set, per-cycle statistics, or
cycle counts, so a watched zero-fault run stays bit-identical to an
unwatched one (its events merely chunk the idle fast-forward windows).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import SimulationStallError
from repro.faults.spec import DEFAULT_WATCHDOG_WINDOW

if TYPE_CHECKING:
    from repro.noc.network import Network


class DeadlockError(SimulationStallError):
    """No forward progress for a full watchdog window.

    Carries the stalled component names (routers with buffered flits,
    pillars with occupied transceivers) so sweep failures are actionable
    without re-running under a tracer.
    """

    failure_kind = "deadlock"

    def __init__(
        self,
        message: str,
        *,
        stalled_components: tuple = (),
        in_flight: int = 0,
        window: int = 0,
        **kwargs,
    ):
        super().__init__(message, **kwargs)
        self.stalled_components = tuple(stalled_components)
        self.in_flight = in_flight
        self.window = window


class LivenessWatchdog:
    """Detects no-progress windows on a :class:`~repro.noc.network.Network`."""

    def __init__(
        self,
        network: "Network",
        window: int = DEFAULT_WATCHDOG_WINDOW,
        start: bool = True,
    ):
        if window < 1:
            raise ValueError("watchdog window must be positive")
        self.network = network
        self.window = window
        self.checks = 0
        self._last_progress = None
        self._event = None
        if start:
            self.start()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._event is None:
            self._schedule()

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule(self) -> None:
        self._event = self.network.engine.schedule(self.window, self._check)

    # -- progress vector --------------------------------------------------

    def _progress(self) -> tuple:
        network = self.network
        # Fast-forwarded cycles count as progress: the engine only skips
        # a window after every registered component reported idle, and a
        # component holding undelivered traffic (buffered flits, occupied
        # transceivers, pending injections) never reports idle — so a
        # genuinely deadlocked fabric pins this counter while a
        # quiescent-but-watched one keeps it moving.  Without this term,
        # in-flight accounting held above the fabric (a requester waiting
        # out an idle gap) would read a fast-forwarded window as a stall.
        skipped = network.engine.fast_forwarded_cycles
        vector = getattr(network, "_vector", None)
        if vector is not None:
            # The SoA fabric has no per-router objects; its aggregate
            # counters provide the same three progress signals.
            return (
                network.completed_packets,
                vector.flits_forwarded,
                vector.bus_transfers,
                skipped,
            )
        forwarded = sum(
            router.forwarded_flits for router in network.routers.values()
        )
        transfers = sum(
            pillar.transfers for pillar in network.pillars.values()
        )
        return (network.completed_packets, forwarded, transfers, skipped)

    def stalled_components(self) -> list[str]:
        """Names of components currently holding undelivered traffic."""
        network = self.network
        vector = getattr(network, "_vector", None)
        if vector is not None:
            stalled = []
            if vector.buffered_flits > 0:
                stalled.append(f"vector-mesh(flits={vector.buffered_flits})")
            for pillar in vector._pillars:
                if pillar.occupancy > 0:
                    px, py = pillar.xy
                    stalled.append(f"pillar({px},{py})")
            if vector._inj_pending > 0:
                stalled.append(f"vector-nics(pending={vector._inj_pending})")
            return stalled
        stalled = []
        for coord, router in sorted(network.routers.items()):
            if router.buffered_flits() > 0:
                stalled.append(f"router({coord.x},{coord.y},{coord.z})")
        for xy, pillar in sorted(network.pillars.items()):
            occupancy = sum(
                transceiver.occupancy
                for transceiver in pillar.transceivers.values()
            )
            if occupancy > 0:
                stalled.append(f"pillar({xy[0]},{xy[1]})")
        for coord, nic in sorted(network.nics.items()):
            if nic.pending_injections > 0:
                stalled.append(f"nic({coord.x},{coord.y},{coord.z})")
        return stalled

    # -- the check --------------------------------------------------------

    def _check(self) -> None:
        self.checks += 1
        network = self.network
        engine = network.engine
        if network.in_flight > 0:
            progress = self._progress()
            if progress == self._last_progress:
                stalled = self.stalled_components()
                shown = ", ".join(stalled[:8])
                if len(stalled) > 8:
                    shown += f", ... ({len(stalled)} total)"
                raise DeadlockError(
                    f"{engine.name}: deadlock — no progress for "
                    f"{self.window} cycles with {network.in_flight} "
                    f"packet(s) in flight; stalled: {shown}",
                    stalled_components=stalled,
                    in_flight=network.in_flight,
                    window=self.window,
                    engine_name=engine.name,
                    cycle=engine.cycle,
                )
            self._last_progress = progress
        else:
            self._last_progress = None
        self._schedule()

"""Fault injection: apply a resolved fault schedule to a live fabric.

The :class:`FaultInjector` turns the fully explicit schedule produced by
:meth:`FaultSpec.resolve` into engine events: each fault's onset (and,
for transients, its heal) fires at an exact engine cycle, before any
component evaluates that cycle — identical timing in the activity-tracked
and naive kernels.

:func:`install_network_faults` is the one-call wiring helper for a bare
:class:`~repro.noc.network.Network` (the cycle-accurate path); the
system layer composes the same pieces itself so bank faults can reach
the NUCA cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.noc.routing import Coord, Port
from repro.noc.fabric import FabricKind
from repro.faults.spec import FaultEvent, FaultSpec, mesh_link_targets
from repro.faults.state import FaultState
from repro.faults.watchdog import LivenessWatchdog


class FaultInjector:
    """Schedules and applies the faults of one resolved schedule.

    Parameters
    ----------
    engine:
        The simulation engine; onsets/heals become its events.
    state:
        The live :class:`FaultState` the tolerance mechanisms consult.
    events:
        Resolved :class:`FaultEvent` tuple (explicit targets only).
    pillars:
        ``(x, y) -> PillarBus`` map for pillar faults (drain-then-die is
        bus-level mechanics, not just a set update).
    on_bank_change:
        Optional callback invoked after a bank fault injects or heals,
        so the cache layer can re-derive capacity.
    """

    def __init__(
        self,
        engine,
        state: FaultState,
        events: tuple[FaultEvent, ...],
        *,
        pillars: Optional[dict] = None,
        on_bank_change: Optional[Callable[[], None]] = None,
    ):
        self.engine = engine
        self.state = state
        self.events = tuple(events)
        self._pillars = pillars if pillars is not None else {}
        self._on_bank_change = on_bank_change
        for event in self.events:
            self._validate(event)
        for event in self.events:
            engine.schedule(
                max(0, event.onset - engine.cycle),
                lambda e=event: self._apply(e),
            )
            heal = event.heal_cycle
            if heal is not None:
                engine.schedule(
                    max(0, heal - engine.cycle),
                    lambda e=event: self._heal(e),
                )

    def _validate(self, event: FaultEvent) -> None:
        if event.kind == "pillar":
            if self._pillars and tuple(event.target) not in self._pillars:
                raise ValueError(
                    f"pillar fault targets unknown pillar {event.target}; "
                    f"pillars are at {sorted(self._pillars)}"
                )
        elif event.kind == "bank" and self._on_bank_change is None:
            raise ValueError(
                "bank faults need a cache layer (network-only install "
                f"cannot apply {event.target})"
            )

    # -- application ------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        cycle = self.engine.cycle
        kind, target = event.kind, event.target
        if kind == "pillar":
            xy = (target[0], target[1])
            self.state.fail_pillar(xy, cycle)
            bus = self._pillars.get(xy)
            if bus is not None:
                bus.fail(cycle, self.state)
        elif kind == "link":
            self.state.fail_link(
                Coord(target[0], target[1], target[2]), Port(target[3]), cycle
            )
        elif kind == "router_port":
            self.state.jam_port(
                Coord(target[0], target[1], target[2]), Port(target[3]), cycle
            )
        elif kind == "bank":
            self.state.fail_bank((target[0], target[1]), cycle)
            if self._on_bank_change is not None:
                self._on_bank_change()

    def _heal(self, event: FaultEvent) -> None:
        cycle = self.engine.cycle
        kind, target = event.kind, event.target
        if kind == "pillar":
            xy = (target[0], target[1])
            self.state.heal_pillar(xy, cycle)
            bus = self._pillars.get(xy)
            if bus is not None:
                bus.heal(cycle)
        elif kind == "link":
            self.state.heal_link(
                Coord(target[0], target[1], target[2]), Port(target[3]), cycle
            )
        elif kind == "router_port":
            self.state.heal_port(
                Coord(target[0], target[1], target[2]), Port(target[3]), cycle
            )
        elif kind == "bank":
            self.state.heal_bank((target[0], target[1]), cycle)
            if self._on_bank_change is not None:
                self._on_bank_change()


@dataclass
class FaultHarness:
    """Everything installed on a simulation for one fault spec."""

    state: Optional[FaultState]
    injector: Optional[FaultInjector]
    watchdog: Optional[LivenessWatchdog]


def install_network_faults(
    network,
    spec: FaultSpec,
    seed: int,
    *,
    banks: tuple = (),
    on_bank_change: Optional[Callable[[], None]] = None,
    stats=None,
    tracer=None,
) -> FaultHarness:
    """Resolve ``spec`` against ``network`` and install the machinery.

    Zero-fault specs install nothing but the watchdog: no
    :class:`FaultState` is created, so the run — statistics snapshot
    included — is bit-identical to a fault-unaware one (the differential
    tests assert this).

    ``banks``/``on_bank_change`` extend the install to the cache layer
    (the system simulator passes its bank pool and the NUCA capacity
    hook); ``stats``/``tracer`` override where the fault counters and
    events land (default: the network's own registries).
    """
    cfg = network.config
    resolved = spec.resolve(
        seed,
        pillars=tuple(cfg.pillar_locations),
        links=mesh_link_targets(cfg.width, cfg.height, cfg.layers),
        banks=tuple(banks),
    )
    state = None
    injector = None
    if resolved:
        state = FaultState(
            stats=stats if stats is not None else network.stats,
            tracer=tracer if tracer is not None else network.tracer,
        )
        if getattr(network, "fabric", None) is FabricKind.VECTOR:
            non_bank = sorted({e.kind for e in resolved} - {"bank"})
            if non_bank:
                raise ValueError(
                    f"fabric='vector' cannot honor {', '.join(non_bank)} "
                    "fault(s): pillar/link/router_port faults require "
                    "fabric='optimized' (the vector fabric batches router "
                    "and pillar state); bank faults work on any fabric"
                )
            # Bank-only schedule: the faults live in the cache layer, so
            # the batched fabric itself stays fault-free and nothing is
            # attached to the network.
        else:
            network.attach_fault_state(state)
        injector = FaultInjector(
            network.engine,
            state,
            resolved,
            pillars=network.pillars,
            on_bank_change=on_bank_change,
        )
    watchdog = None
    if spec.watchdog_window:
        watchdog = LivenessWatchdog(network, window=spec.watchdog_window)
    return FaultHarness(state=state, injector=injector, watchdog=watchdog)

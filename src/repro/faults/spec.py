"""Declarative fault-injection specifications.

A :class:`FaultSpec` rides on :class:`~repro.experiments.spec.SimSpec`
exactly like ``TraceSpec``: it is frozen, serializes with defaults
omitted so spec hashes stay stable, and derives every random choice from
the spec seed via :func:`repro.sim.rng.derive_seed` — the same spec
always injects the same faults, in serial or parallel sweeps alike.

Fault taxonomy (``FaultEvent.kind``):

``"pillar"``
    A dTDMA pillar/TSV failure at ``target=(x, y)``.  The bus finishes
    any in-progress packet transfers (wormhole integrity), drops queued
    and subsequently arriving traffic with loss accounting, and the
    arbiter reclaims every slot (degraded vertical bandwidth).  New
    inter-layer traffic reroutes through surviving pillars.
``"link"``
    A directed mesh link failure at ``target=(x, y, z, port)``.  The
    link fails *for new traffic*: head flits not yet routed avoid it
    (minimal misroute onto the other productive dimension) while
    in-flight wormholes drain; destinations with no surviving
    productive port are dropped with unreachable accounting.
``"router_port"``
    A jammed router output port at ``target=(x, y, z, port)``: the port
    stops granting entirely, with no reroute.  Backpressure propagates —
    this is the deterministic deadlock seeder the liveness watchdog is
    tested against.
``"bank"``
    A NUCA bank failure at ``target=(cluster, bank)``.  Accesses remap
    to the cluster's surviving banks and the cluster's effective
    associativity degrades proportionally (capacity-degraded placement).

``duration=None`` means permanent; a transient fault heals at
``onset + duration``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.rng import make_rng
from repro.noc.routing import PORT_DELTA

FAULT_KINDS = ("pillar", "link", "router_port", "bank")

# Target tuple arity per fault kind (see the module docstring).
_TARGET_LENGTHS = {"pillar": 2, "link": 4, "router_port": 4, "bank": 2}

_PORT_NAMES = ("north", "south", "east", "west", "vertical")

DEFAULT_WATCHDOG_WINDOW = 20_000


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault: what breaks, where, when, and for how long."""

    kind: str
    target: tuple
    onset: int = 0
    duration: Optional[int] = None  # None = permanent

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {list(FAULT_KINDS)}"
            )
        object.__setattr__(self, "target", tuple(self.target))
        expected = _TARGET_LENGTHS[self.kind]
        if len(self.target) != expected:
            raise ValueError(
                f"{self.kind} fault target must have {expected} elements, "
                f"got {self.target!r}"
            )
        if self.kind in ("link", "router_port"):
            port = self.target[3]
            if port not in _PORT_NAMES:
                raise ValueError(
                    f"bad port {port!r} in {self.kind} target; "
                    f"choose from {list(_PORT_NAMES)}"
                )
        if self.onset < 0:
            raise ValueError("fault onset must be non-negative")
        if self.duration is not None and self.duration < 1:
            raise ValueError("transient fault duration must be positive")

    @property
    def heal_cycle(self) -> Optional[int]:
        if self.duration is None:
            return None
        return self.onset + self.duration

    def to_dict(self) -> dict:
        data: dict = {"kind": self.kind, "target": list(self.target)}
        if self.onset:
            data["onset"] = self.onset
        if self.duration is not None:
            data["duration"] = self.duration
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(
            kind=data["kind"],
            target=tuple(data["target"]),
            onset=data.get("onset", 0),
            duration=data.get("duration"),
        )


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault-injection request, embeddable in a ``SimSpec``.

    ``events`` are explicit faults.  ``dead_pillars`` / ``dead_links`` /
    ``dead_banks`` additionally draw that many random targets at
    :meth:`resolve` time, deterministically from the spec seed, all with
    onset ``onset`` — the degradation-sweep axes ("IPC vs. number of
    dead pillars") without enumerating coordinates by hand.

    ``watchdog_window`` configures the liveness watchdog: a
    :class:`~repro.faults.watchdog.DeadlockError` is raised if packets
    are in flight but nothing moves for that many cycles.  ``0``
    disables the watchdog.
    """

    events: tuple[FaultEvent, ...] = ()
    dead_pillars: int = 0
    dead_links: int = 0
    dead_banks: int = 0
    onset: int = 0
    watchdog_window: int = DEFAULT_WATCHDOG_WINDOW

    def __post_init__(self) -> None:
        events = tuple(
            event if isinstance(event, FaultEvent)
            else FaultEvent.from_dict(event)
            for event in self.events
        )
        object.__setattr__(self, "events", events)
        for name in ("dead_pillars", "dead_links", "dead_banks", "onset"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.watchdog_window < 0:
            raise ValueError("watchdog_window must be non-negative")

    @property
    def is_zero(self) -> bool:
        """No faults requested (the watchdog alone does not count)."""
        return (
            not self.events
            and self.dead_pillars == 0
            and self.dead_links == 0
            and self.dead_banks == 0
        )

    # -- deterministic schedule resolution ------------------------------

    def resolve(
        self,
        seed: int,
        *,
        pillars: tuple[tuple[int, int], ...] = (),
        links: tuple[tuple, ...] = (),
        banks: tuple[tuple[int, int], ...] = (),
    ) -> tuple[FaultEvent, ...]:
        """Concretize the spec into a sorted, fully explicit schedule.

        Random targets are drawn without replacement from the sorted
        candidate pools via ``make_rng(derive_seed(seed, "faults"))``, so
        the schedule is a pure function of ``(spec, seed)`` — same spec
        hash ⇒ identical faults, regardless of process or order.
        """
        events = list(self.events)
        explicit = {(event.kind, event.target) for event in events}
        rng = make_rng(seed, "faults")

        def draw(kind: str, count: int, pool) -> None:
            if count == 0:
                return
            candidates = [
                tuple(target) for target in sorted(pool)
                if (kind, tuple(target)) not in explicit
            ]
            if count > len(candidates):
                raise ValueError(
                    f"cannot draw {count} random {kind} faults from "
                    f"{len(candidates)} candidates"
                )
            picks = rng.choice(len(candidates), size=count, replace=False)
            for index in sorted(int(i) for i in picks):
                events.append(
                    FaultEvent(kind, candidates[index], onset=self.onset)
                )

        draw("pillar", self.dead_pillars, pillars)
        draw("link", self.dead_links, links)
        draw("bank", self.dead_banks, banks)
        events.sort(key=lambda event: (event.onset, event.kind, event.target))
        return tuple(events)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {}
        if self.events:
            data["events"] = [event.to_dict() for event in self.events]
        for name in ("dead_pillars", "dead_links", "dead_banks", "onset"):
            value = getattr(self, name)
            if value:
                data[name] = value
        if self.watchdog_window != DEFAULT_WATCHDOG_WINDOW:
            data["watchdog_window"] = self.watchdog_window
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            events=tuple(
                FaultEvent.from_dict(event)
                for event in data.get("events", ())
            ),
            dead_pillars=data.get("dead_pillars", 0),
            dead_links=data.get("dead_links", 0),
            dead_banks=data.get("dead_banks", 0),
            onset=data.get("onset", 0),
            watchdog_window=data.get(
                "watchdog_window", DEFAULT_WATCHDOG_WINDOW
            ),
        )


def mesh_link_targets(
    width: int, height: int, layers: int
) -> tuple[tuple[int, int, int, str], ...]:
    """All directed mesh-link fault targets of a ``width x height x layers``
    topology, in deterministic order (the random-draw candidate pool)."""
    targets = []
    for z in range(layers):
        for y in range(height):
            for x in range(width):
                for port, (dx, dy) in PORT_DELTA.items():
                    if 0 <= x + dx < width and 0 <= y + dy < height:
                        targets.append((x, y, z, port.value))
    return tuple(sorted(targets))


def parse_fault_arg(text: str) -> FaultEvent:
    """Parse a CLI fault argument: ``kind:target[@onset][+duration]``.

    Examples: ``pillar:3,3``, ``link:2,1,0,east@1000``,
    ``router_port:1,1,0,north@500+2000``, ``bank:4,7``.
    """
    head, sep, rest = text.partition(":")
    if not sep:
        raise ValueError(
            f"bad fault {text!r}: expected kind:target[@onset][+duration]"
        )
    kind = head.strip()
    duration: Optional[int] = None
    onset = 0
    if "+" in rest:
        rest, __, dur_text = rest.rpartition("+")
        duration = int(dur_text)
    if "@" in rest:
        rest, __, onset_text = rest.rpartition("@")
        onset = int(onset_text)
    fields = [part.strip() for part in rest.split(",")]
    target = tuple(
        part if not part.lstrip("-").isdigit() else int(part)
        for part in fields
    )
    return FaultEvent(kind=kind, target=target, onset=onset, duration=duration)

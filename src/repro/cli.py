"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``          simulate one scheme on one benchmark and print statistics
``sweep``        run an arbitrary simulation grid, parallel and cached
``serve``        multi-tenant sweep service: head node or remote worker
``thermal``      solve a placement's thermal profile
``experiments``  run one (or all) of the table/figure reproductions
``describe``     print a chip configuration's placed topology

All simulation commands go through the :mod:`repro.api` facade
(``run``/``sweep``/``submit``); ``sweep --server URL`` routes the same
grid through a running ``repro serve`` instance instead of local worker
processes, and its exit code on service failures is the
:class:`~repro.serve.client.ServeError` subclass's ``exit_code``
(BSD ``sysexits``: 69 unreachable, 75 busy, 76 protocol skew, ...).
``serve --role worker --head URL`` turns the process into a remote
worker that leases cells from a head instead of listening itself.

Examples::

    python -m repro run --scheme CMP-DNUCA-3D --benchmark swim
    python -m repro run --scheme CMP-DNUCA-2D --benchmark art --json
    python -m repro sweep --schemes CMP-DNUCA-2D CMP-DNUCA-3D \\
        --benchmarks art swim --jobs 4
    python -m repro serve --port 8731 --workers 4
    python -m repro serve --port 8731 --workers 0   # head-only
    python -m repro serve --role worker --head http://127.0.0.1:8731 \\
        --workers 2
    python -m repro sweep --server http://127.0.0.1:8731 \\
        --schemes CMP-DNUCA-3D --benchmarks art swim
    python -m repro thermal --layers 2 --placement stacked
    python -m repro experiments fig13 --jobs 4
    python -m repro describe --layers 4 --pillars 8
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import api
from repro.core.chip import ChipConfig
from repro.core.placement import PlacementPolicy, build_topology
from repro.core.schemes import Scheme
from repro.power.report import energy_report
from repro.thermal import simulate_thermal
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.registry import EXPERIMENT_NAMES, run_experiment
from repro.experiments.spec import SimSpec
from repro.api import simulate
from repro.faults.spec import (
    DEFAULT_WATCHDOG_WINDOW,
    FaultSpec,
    parse_fault_arg,
)
from repro.noc.fabric import AUTO_FABRIC, resolve_fabric
from repro.sim.trace import TraceSpec, write_trace

_PLACEMENTS = {policy.value: policy for policy in PlacementPolicy}


def _scheme(name: str) -> Scheme:
    for scheme in Scheme:
        if scheme.value.lower() == name.lower():
            return scheme
    raise argparse.ArgumentTypeError(
        f"unknown scheme {name!r}; choose from "
        f"{[s.value for s in Scheme]}"
    )


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    """Profiling flags for the simulation-heavy commands."""
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 functions "
             "by cumulative time to stderr",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="also dump the raw pstats data to FILE "
             "(for snakeviz / pstats post-processing)",
    )


def _add_orchestrator_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that drives the sweep orchestrator."""
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = run in-process)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default .repro_cache/ or REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock timeout in seconds (parallel runs only)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="re-executions after a worker crash or timeout",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network-in-Memory 3D CMP simulation (ISCA 2006 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a scheme on a benchmark")
    run.add_argument("--scheme", type=_scheme, default=Scheme.CMP_DNUCA_3D)
    run.add_argument(
        "--benchmark", choices=BENCHMARK_NAMES, default="swim"
    )
    run.add_argument("--refs", type=int, default=30_000,
                     help="references per CPU")
    run.add_argument("--warmup", type=float, default=0.6,
                     help="warm-up fraction of total events")
    run.add_argument("--layers", type=int, default=2)
    run.add_argument("--pillars", type=int, default=8)
    run.add_argument("--cache-mb", type=int, default=16)
    run.add_argument("--seed", type=int, default=2006)
    run.add_argument("--energy", action="store_true",
                     help="print the energy breakdown too")
    run.add_argument("--json", action="store_true",
                     help="emit the spec and statistics as JSON")
    run.add_argument(
        "--mode", choices=("model", "cycle"), default=None,
        help="timing fidelity (default: model; --trace implies cycle "
             "unless --mode is given explicitly)",
    )
    run.add_argument(
        "--fabric", choices=("optimized", "reference", "vector", "auto"),
        default="optimized",
        help="NoC fabric for cycle mode: optimized (object hot path), "
             "reference (naive oracle), vector (numpy batch fabric), "
             "auto (vector when numpy is importable and the run is "
             "cycle-mode, else optimized)",
    )
    run.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record structured events and export them to FILE",
    )
    run.add_argument(
        "--trace-format", choices=TraceSpec.FORMATS, default="chrome",
        help="chrome (chrome://tracing / perfetto JSON) or jsonl",
    )
    run.add_argument(
        "--trace-limit", type=int, default=1_000_000,
        help="ring-buffer capacity in events; oldest events are "
             "dropped past this",
    )
    run.add_argument(
        "--trace-filter", default=None, metavar="GLOB",
        help="record only tracks matching this component glob "
             "(e.g. 'router.*', 'pillar.3.3')",
    )
    run.add_argument(
        "--fault", action="append", default=None,
        metavar="KIND:TARGET[@ONSET][+DURATION]",
        help="inject an explicit fault (repeatable); e.g. 'pillar:3,3', "
             "'link:2,1,0,east@1000', 'router_port:1,1,0,north@500+2000', "
             "'bank:4,7'",
    )
    run.add_argument("--dead-pillars", type=int, default=0,
                     help="additionally kill this many random pillars")
    run.add_argument("--dead-links", type=int, default=0,
                     help="additionally kill this many random mesh links "
                          "(cycle mode only)")
    run.add_argument("--dead-banks", type=int, default=0,
                     help="additionally kill this many random L2 banks")
    run.add_argument("--fault-onset", type=int, default=0,
                     help="onset cycle for the random faults")
    run.add_argument(
        "--watchdog-window", type=int, default=DEFAULT_WATCHDOG_WINDOW,
        help="liveness watchdog window in cycles (0 disables; only "
             "meaningful with faults in cycle mode)",
    )
    _add_profile_args(run)

    sweep = sub.add_parser(
        "sweep",
        help="run a (scheme x benchmark x topology) grid, parallel + cached",
    )
    sweep.add_argument(
        "--schemes", type=_scheme, nargs="+",
        default=list(Scheme),
        help="schemes to sweep (default: all four)",
    )
    sweep.add_argument(
        "--benchmarks", nargs="+", choices=BENCHMARK_NAMES,
        default=list(BENCHMARK_NAMES),
        help="benchmarks to sweep (default: the full suite)",
    )
    sweep.add_argument("--cache-mb", type=int, nargs="+", default=[16])
    sweep.add_argument("--layers", type=int, nargs="+", default=[2])
    sweep.add_argument("--pillars", type=int, nargs="+", default=[8])
    sweep.add_argument(
        "--dead-pillars", type=int, nargs="+", default=[0],
        help="degradation axis: random dead pillars per cell "
             "(0 = fault-free)",
    )
    sweep.add_argument(
        "--refs", type=int, default=None,
        help="references per CPU (default: the ambient REPRO_SCALE)",
    )
    sweep.add_argument("--seed", type=int, default=None,
                       help="workload base seed (default: the scale's)")
    sweep.add_argument(
        "--mode", choices=("model", "cycle"), default="model",
        help="timing fidelity for every cell (default: model)",
    )
    sweep.add_argument(
        "--fabric", choices=("optimized", "reference", "vector", "auto"),
        default="optimized",
        help="NoC fabric for cycle-mode cells (default: optimized)",
    )
    sweep.add_argument("--json", action="store_true",
                       help="emit the full sweep summary as JSON")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress lines")
    sweep.add_argument(
        "--server", default=None, metavar="URL",
        help="submit the grid to a running `repro serve` instance "
             "(e.g. http://127.0.0.1:8731) instead of local workers; "
             "orchestrator flags are then server-side concerns",
    )
    sweep.add_argument(
        "--tenant", default="cli",
        help="tenant name for --server submissions (fair-queued "
             "against other tenants)",
    )
    sweep.add_argument(
        "--outage-grace", type=float, default=0.0, metavar="SECONDS",
        help="with --server: keep retrying through a head outage "
             "(e.g. a restart) for this long before giving up "
             "(default 0: fail fast)",
    )
    _add_orchestrator_args(sweep)
    _add_profile_args(sweep)

    serve = sub.add_parser(
        "serve",
        help="serve sweep submissions over HTTP (multi-tenant, deduped), "
             "or attach to a head as a remote worker",
    )
    serve.add_argument(
        "--role", choices=("head", "worker"), default="head",
        help="head: listen for submissions and grant leases; "
             "worker: pull cells from --head and push results back",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731,
                       help="listen port (0 picks a free port; head only)")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent cell executions on this node "
             "(head: 0 = head-only, cells wait for remote workers)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=1024,
        help="distinct queued+running cells before submissions are "
             "rejected with 429 + Retry-After (head only)",
    )
    serve.add_argument(
        "--inline", action="store_true",
        help="run cells in server threads instead of worker processes "
             "(debug/tests; per-cell timeout does not apply)",
    )
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the local result cache")
    serve.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default .repro_cache/ or REPRO_CACHE_DIR)",
    )
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-cell wall-clock timeout in seconds")
    serve.add_argument("--retries", type=int, default=1,
                       help="re-executions after a worker crash or timeout")
    serve.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="head: remote lease TTL before the reaper requeues its "
             "cells (default 15)",
    )
    serve.add_argument(
        "--worker-retries", type=int, default=1,
        help="head: times a cell is re-leased after its worker is lost "
             "before it fails as worker_lost",
    )
    serve.add_argument(
        "--no-journal", action="store_true",
        help="head: disable the durable journal (jobs, queues, and "
             "leases then do not survive a head restart)",
    )
    serve.add_argument(
        "--head", default=None, metavar="URL",
        help="worker: head node to lease cells from "
             "(e.g. http://127.0.0.1:8731)",
    )
    serve.add_argument(
        "--worker-id", default=None,
        help="worker: stable name reported to the head "
             "(default hostname-<random>)",
    )
    serve.add_argument(
        "--lease-cells", type=int, default=4,
        help="worker: cells requested per lease batch",
    )
    serve.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="worker: sleep between lease requests when the head is idle",
    )
    serve.add_argument(
        "--head-outage-grace", type=float, default=60.0, metavar="SECONDS",
        help="worker: ride out an unreachable head (backoff with "
             "jitter, results buffered locally) for this long before "
             "exiting (default 60)",
    )
    serve.add_argument(
        "--drain-on-idle", type=float, default=None, metavar="SECONDS",
        help="worker: exit gracefully after the head has had no work "
             "for this long (default: run until stopped)",
    )

    thermal = sub.add_parser("thermal", help="thermal profile of a placement")
    thermal.add_argument("--layers", type=int, default=2)
    thermal.add_argument("--pillars", type=int, default=8)
    thermal.add_argument(
        "--placement", choices=sorted(_PLACEMENTS), default=None
    )
    thermal.add_argument("--k", type=int, default=1)

    experiments = sub.add_parser(
        "experiments", help="run table/figure reproductions"
    )
    experiments.add_argument(
        "name", nargs="?", default="all",
        choices=(*EXPERIMENT_NAMES, "all"),
    )
    _add_orchestrator_args(experiments)

    describe = sub.add_parser("describe", help="print a placed topology")
    describe.add_argument("--layers", type=int, default=2)
    describe.add_argument("--pillars", type=int, default=8)
    describe.add_argument("--cache-mb", type=int, default=16)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    scale = ExperimentScale(
        name="cli",
        refs_per_cpu=args.refs,
        warmup_fraction=args.warmup,
        seed=args.seed,
    )
    # Tracing is most useful on the cycle-accurate fabric (that is where
    # the router/pillar hop events live), so --trace implies cycle mode
    # unless the user pinned --mode themselves.
    mode = args.mode or ("cycle" if args.trace else "model")
    trace_spec = None
    if args.trace:
        trace_spec = TraceSpec(
            format=args.trace_format,
            limit=args.trace_limit,
            component_filter=args.trace_filter,
        )
    fault_spec = None
    if (
        args.fault
        or args.dead_pillars
        or args.dead_links
        or args.dead_banks
    ):
        fault_spec = FaultSpec(
            events=tuple(
                parse_fault_arg(text) for text in (args.fault or ())
            ),
            dead_pillars=args.dead_pillars,
            dead_links=args.dead_links,
            dead_banks=args.dead_banks,
            onset=args.fault_onset,
            watchdog_window=args.watchdog_window,
        )
    fabric_resolution = None
    if args.fabric == AUTO_FABRIC:
        resolved, reason = resolve_fabric(mode)
        fabric_resolution = {
            "requested": AUTO_FABRIC,
            "resolved": resolved,
            "reason": reason,
        }
        # Stderr so `--json` output on stdout stays parseable.
        print(f"fabric: auto -> {resolved} ({reason})", file=sys.stderr)
    spec = SimSpec.make(
        args.scheme,
        args.benchmark,
        scale=scale,
        layers=args.layers,
        pillars=args.pillars,
        cache_mb=args.cache_mb,
        mode=mode,
        fabric=args.fabric,
        trace=trace_spec,
        faults=fault_spec,
    )
    system, stats = simulate(spec)
    if args.trace:
        written, dropped = write_trace(
            system.tracer, args.trace, args.trace_format
        )
        note = f" ({dropped:,} dropped)" if dropped else ""
        print(
            f"trace: {written:,} events{note} -> {args.trace}",
            file=sys.stderr,
        )
    if args.json:
        payload = {"spec": spec.to_dict(), "stats": stats.to_dict()}
        if fabric_resolution is not None:
            payload["fabric_resolution"] = fabric_resolution
        print(json.dumps(payload, indent=1))
        return 0
    print(f"scheme:            {args.scheme.value}")
    print(f"benchmark:         {args.benchmark}")
    print(f"L2 accesses:       {stats.l2_accesses:,}")
    print(f"L2 hit rate:       {stats.l2_hit_rate:.1%}")
    print(f"avg L2 hit lat:    {stats.avg_l2_hit_latency:.1f} cycles")
    print(f"avg L2 miss lat:   {stats.avg_l2_miss_latency:.1f} cycles")
    print(f"migrations:        {stats.migrations:,}")
    print(f"IPC (aggregate):   {stats.ipc:.3f}")
    print(f"L1 miss rate:      {stats.l1_miss_rate:.1%}")
    harness = system.fault_harness
    if harness is not None and harness.state is not None:
        degradation = harness.state.summary()
        print(f"faults injected:   {stats.faults_injected}")
        print(f"packets lost:      {degradation['packets_lost']:,} "
              f"({degradation['unreachable']:,} unreachable)")
    if args.energy:
        print()
        print(energy_report(system, stats))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = current_scale()
    if args.refs is not None:
        scale = ExperimentScale(
            name=f"cli-{args.refs}", refs_per_cpu=args.refs,
            warmup_fraction=scale.warmup_fraction, seed=scale.seed,
        )
    overrides = {} if args.seed is None else {"seed": args.seed}
    specs = [
        SimSpec.make(
            scheme, benchmark, scale=scale,
            cache_mb=cache_mb, layers=layers, pillars=pillars,
            mode=args.mode,
            fabric=args.fabric,
            faults=(
                FaultSpec(dead_pillars=dead_pillars)
                if dead_pillars else None
            ),
            **overrides,
        )
        for scheme in args.schemes
        for benchmark in args.benchmarks
        for cache_mb in args.cache_mb
        for layers in args.layers
        for pillars in args.pillars
        for dead_pillars in args.dead_pillars
    ]
    progress = None
    if not args.quiet and not args.json:
        def progress(message: str) -> None:
            print(f"  {message}", file=sys.stderr)
    if args.server:
        from repro.serve.client import ServeError

        try:
            summary = api.sweep(
                specs,
                server=args.server,
                tenant=args.tenant,
                outage_grace_s=args.outage_grace,
                progress=progress,
            )
        except ServeError as exc:
            print(f"repro sweep: {exc}", file=sys.stderr)
            return exc.exit_code
    else:
        summary = api.sweep(
            specs,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            timeout_s=args.timeout,
            retries=args.retries,
            progress=progress,
        )
    if args.json:
        print(json.dumps(summary.to_dict(), indent=1))
        return 1 if summary.failures else 0

    from repro.experiments.runner import format_table

    rows = [
        [
            spec.scheme.value,
            spec.benchmark,
            f"{spec.cache_mb}",
            f"{spec.layers}",
            f"{spec.pillars}",
            (f"{spec.faults.dead_pillars}" if spec.faults is not None
             else "0"),
            f"{stats.avg_l2_hit_latency:.1f}",
            f"{stats.l2_hit_rate:.1%}",
            f"{stats.ipc:.3f}",
            f"{stats.migrations}",
        ]
        for spec, stats in summary.results.items()
    ]
    print(
        format_table(
            ["scheme", "benchmark", "MB", "layers", "pillars", "dead",
             "hit lat", "hit rate", "IPC", "migr"],
            rows,
            title="Sweep results",
        )
    )
    for failure in summary.failures:
        print(
            f"FAILED {failure.spec.label()}: {failure.kind} "
            f"after {failure.attempts} attempt(s): {failure.message}"
        )
    print(summary.describe())
    return 1 if summary.failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.role == "worker":
        return _cmd_serve_worker(args)

    import asyncio

    from repro.serve.scheduler import DEFAULT_LEASE_TTL_S, JobStore
    from repro.serve.server import serve_forever

    if args.head:
        print(
            "repro serve: --head is only meaningful with --role worker",
            file=sys.stderr,
        )
        return 64  # EX_USAGE
    store = JobStore(
        workers=args.workers,
        max_pending=args.max_pending,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        executor="inline" if args.inline else "process",
        lease_ttl_s=(
            args.lease_ttl if args.lease_ttl else DEFAULT_LEASE_TTL_S
        ),
        worker_retries=args.worker_retries,
        journal=not args.no_journal,
    )

    def ready(port: int) -> None:
        journal = store.journal_path or "disabled"
        print(
            f"repro serve listening on http://{args.host}:{port} "
            f"({store.workers} local worker(s), "
            f"max_pending={store.max_pending}, "
            f"executor={store.executor_kind}, "
            f"lease_ttl={store.lease_ttl_s:.0f}s, "
            f"journal={journal})",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(
            serve_forever(store, host=args.host, port=args.port, ready=ready)
        )
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError
    from repro.serve.worker import run_worker

    if not args.head:
        print(
            "repro serve: --role worker requires --head URL",
            file=sys.stderr,
        )
        return 64  # EX_USAGE

    def log(message: str) -> None:
        print(f"repro worker: {message}", file=sys.stderr, flush=True)

    try:
        counters = run_worker(
            args.head,
            worker_id=args.worker_id,
            jobs=max(1, args.workers),
            lease_cells=args.lease_cells,
            poll_s=args.poll,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            timeout_s=args.timeout,
            retries=args.retries,
            head_outage_grace=args.head_outage_grace,
            drain_on_idle=args.drain_on_idle,
            log=log,
        )
    except ServeError as exc:
        log(str(exc))
        return exc.exit_code
    log(
        f"stopped after {counters['leases']} lease(s): "
        f"{counters['cells_done']} done, "
        f"{counters['cells_failed']} failed, "
        f"{counters['cells_simulated']} simulated, "
        f"{counters['cells_local_cache'] + counters['cells_head_cache']} "
        f"from cache, {counters['cells_released']} released"
    )
    return 0


def _cmd_thermal(args: argparse.Namespace) -> int:
    if args.layers == 1:
        config = ChipConfig(num_layers=1, num_pillars=0)
        default_placement = PlacementPolicy.CENTER_2D
    else:
        config = ChipConfig(num_layers=args.layers, num_pillars=args.pillars)
        default_placement = PlacementPolicy.MAXIMAL_OFFSET
    placement = (
        _PLACEMENTS[args.placement] if args.placement else default_placement
    )
    profile = simulate_thermal(
        config=config, placement=placement, k=args.k,
        label=f"{args.layers}L/{placement.value}",
    )
    print(profile)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = EXPERIMENT_NAMES if args.name == "all" else (args.name,)
    for name in names:
        text, summary = run_experiment(
            name,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            timeout_s=args.timeout,
            retries=args.retries,
        )
        print(text)
        if summary.total:
            print(f"[{name}: {summary.describe()}]")
        print()
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    if args.layers == 1:
        config = ChipConfig(
            num_layers=1, num_pillars=0, cache_mb=args.cache_mb
        )
    else:
        config = ChipConfig(
            num_layers=args.layers,
            num_pillars=args.pillars,
            cache_mb=args.cache_mb,
        )
    print(build_topology(config).describe())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "thermal": _cmd_thermal,
        "experiments": _cmd_experiments,
        "describe": _cmd_describe,
    }
    handler = handlers[args.command]
    if not getattr(args, "profile", False) and not getattr(
        args, "profile_out", None
    ):
        return handler(args)

    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return handler(args)
    finally:
        profiler.disable()
        # Report on stderr so `--json` output on stdout stays parseable.
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        if args.profile_out:
            stats.dump_stats(args.profile_out)
            print(f"profile written to {args.profile_out}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())

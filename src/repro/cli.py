"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``          simulate one scheme on one benchmark and print statistics
``thermal``      solve a placement's thermal profile
``experiments``  run one (or all) of the table/figure reproductions
``describe``     print a chip configuration's placed topology

Examples::

    python -m repro run --scheme CMP-DNUCA-3D --benchmark swim
    python -m repro run --scheme CMP-DNUCA-2D --benchmark art --refs 20000
    python -m repro thermal --layers 2 --placement stacked
    python -m repro experiments fig13
    python -m repro describe --layers 4 --pillars 8
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.core.chip import ChipConfig
from repro.core.placement import PlacementPolicy, build_topology
from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, SystemConfig
from repro.power.report import energy_report
from repro.thermal import simulate_thermal
from repro.workloads.benchmarks import BENCHMARK_NAMES
from repro.workloads.generator import SyntheticWorkload

_EXPERIMENTS = (
    "table1", "table2", "table3", "table5",
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
)

_PLACEMENTS = {policy.value: policy for policy in PlacementPolicy}


def _scheme(name: str) -> Scheme:
    for scheme in Scheme:
        if scheme.value.lower() == name.lower():
            return scheme
    raise argparse.ArgumentTypeError(
        f"unknown scheme {name!r}; choose from "
        f"{[s.value for s in Scheme]}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network-in-Memory 3D CMP simulation (ISCA 2006 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a scheme on a benchmark")
    run.add_argument("--scheme", type=_scheme, default=Scheme.CMP_DNUCA_3D)
    run.add_argument(
        "--benchmark", choices=BENCHMARK_NAMES, default="swim"
    )
    run.add_argument("--refs", type=int, default=30_000,
                     help="references per CPU")
    run.add_argument("--warmup", type=float, default=0.6,
                     help="warm-up fraction of total events")
    run.add_argument("--layers", type=int, default=2)
    run.add_argument("--pillars", type=int, default=8)
    run.add_argument("--cache-mb", type=int, default=16)
    run.add_argument("--seed", type=int, default=2006)
    run.add_argument("--energy", action="store_true",
                     help="print the energy breakdown too")

    thermal = sub.add_parser("thermal", help="thermal profile of a placement")
    thermal.add_argument("--layers", type=int, default=2)
    thermal.add_argument("--pillars", type=int, default=8)
    thermal.add_argument(
        "--placement", choices=sorted(_PLACEMENTS), default=None
    )
    thermal.add_argument("--k", type=int, default=1)

    experiments = sub.add_parser(
        "experiments", help="run table/figure reproductions"
    )
    experiments.add_argument(
        "name", nargs="?", default="all",
        choices=(*_EXPERIMENTS, "all"),
    )

    describe = sub.add_parser("describe", help="print a placed topology")
    describe.add_argument("--layers", type=int, default=2)
    describe.add_argument("--pillars", type=int, default=8)
    describe.add_argument("--cache-mb", type=int, default=16)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = SystemConfig(
        scheme=args.scheme,
        cache_mb=args.cache_mb,
        num_layers=args.layers,
        num_pillars=args.pillars,
    )
    system = NetworkInMemory(config)
    workload = SyntheticWorkload(
        args.benchmark, refs_per_cpu=args.refs, seed=args.seed
    )
    warmup = int(8 * args.refs * args.warmup)
    stats = system.run_trace(workload.traces(), warmup_events=warmup)
    print(f"scheme:            {args.scheme.value}")
    print(f"benchmark:         {args.benchmark}")
    print(f"L2 accesses:       {stats.l2_accesses:,}")
    print(f"L2 hit rate:       {stats.l2_hit_rate:.1%}")
    print(f"avg L2 hit lat:    {stats.avg_l2_hit_latency:.1f} cycles")
    print(f"avg L2 miss lat:   {stats.avg_l2_miss_latency:.1f} cycles")
    print(f"migrations:        {stats.migrations:,}")
    print(f"IPC (aggregate):   {stats.ipc:.3f}")
    print(f"L1 miss rate:      {stats.l1_miss_rate:.1%}")
    if args.energy:
        print()
        print(energy_report(system, stats))
    return 0


def _cmd_thermal(args: argparse.Namespace) -> int:
    if args.layers == 1:
        config = ChipConfig(num_layers=1, num_pillars=0)
        default_placement = PlacementPolicy.CENTER_2D
    else:
        config = ChipConfig(num_layers=args.layers, num_pillars=args.pillars)
        default_placement = PlacementPolicy.MAXIMAL_OFFSET
    placement = (
        _PLACEMENTS[args.placement] if args.placement else default_placement
    )
    profile = simulate_thermal(
        config=config, placement=placement, k=args.k,
        label=f"{args.layers}L/{placement.value}",
    )
    print(profile)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = _EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        module.main()
        print()
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    if args.layers == 1:
        config = ChipConfig(
            num_layers=1, num_pillars=0, cache_mb=args.cache_mb
        )
    else:
        config = ChipConfig(
            num_layers=args.layers,
            num_pillars=args.pillars,
            cache_mb=args.cache_mb,
        )
    print(build_topology(config).describe())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "thermal": _cmd_thermal,
        "experiments": _cmd_experiments,
        "describe": _cmd_describe,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

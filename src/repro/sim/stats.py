"""Statistics primitives shared by every subsystem.

All simulator statistics flow through these classes so that experiment
harnesses can dump a uniform report: counters for event counts, histograms
for latency distributions, and exponential moving averages for load
estimation inside the contention-aware latency model.
"""

from __future__ import annotations

import math
import warnings
from typing import Iterable, Iterator, Optional


class Counter:
    """A named monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming histogram with exact mean/min/max and bucketed counts.

    Buckets are fixed-width; samples beyond the last bucket edge land in an
    overflow bucket, samples below zero in an underflow bucket.  Mean and
    extrema are exact regardless of bucketing.
    """

    def __init__(self, name: str, bucket_width: float = 1.0, num_buckets: int = 256):
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self.buckets = [0] * num_buckets
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def _bucket_index(self, value: float) -> int:
        # floor, not int(): truncation toward zero would file samples in
        # (-bucket_width, 0) under bucket 0 instead of the underflow bucket.
        return math.floor(value / self.bucket_width)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        index = self._bucket_index(value)
        if index < 0:
            self.underflow += 1
        elif index < len(self.buckets):
            self.buckets[index] += 1
        else:
            self.overflow += 1

    def add_many(self, value: float, count: int) -> None:
        """Record ``count`` identical samples in one call.

        Used by the activity-tracked kernel to replay skipped idle cycles
        in bulk.  Bit-identical to ``count`` repeated :meth:`add` calls
        whenever the float accumulators are order-insensitive for
        ``value`` — exactly true for 0.0, the idle-replay sample.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self.count += count
        self.total += value * count
        self.total_sq += value * value * count
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        index = self._bucket_index(value)
        if index < 0:
            self.underflow += count
        elif index < len(self.buckets):
            self.buckets[index] += count
        else:
            self.overflow += count

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.total_sq / self.count - mean * mean)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from bucket boundaries (0 < fraction <= 1).

        Out-of-range samples participate: underflow samples sit below every
        bucket (a percentile landing among them reports ``min_value``) and
        overflow samples above every bucket (reporting ``max_value``), so a
        mid-range percentile is never dragged to an extreme merely because
        some samples fell outside the bucketed range.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        running = self.underflow
        if running >= target:
            return self.min_value
        for index, bucket_count in enumerate(self.buckets):
            running += bucket_count
            if running >= target:
                return (index + 1) * self.bucket_width
        # The percentile lies among the overflow samples.
        return self.max_value

    def reset(self) -> None:
        self.buckets = [0] * len(self.buckets)
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.2f})"


class MovingAverage:
    """Exponential moving average used for online load estimation."""

    __slots__ = ("alpha", "value", "initialized")

    def __init__(self, alpha: float = 0.05):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = 0.0
        self.initialized = False

    def update(self, sample: float) -> float:
        if not self.initialized:
            self.value = sample
            self.initialized = True
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value

    def reset(self) -> None:
        self.value = 0.0
        self.initialized = False


class StatsScope:
    """A prefixed view onto a :class:`StatsRegistry`.

    ``registry.scope("noc.router")`` returns a child view whose
    :meth:`counter` / :meth:`histogram` auto-prefix names with
    ``"noc.router."``, so components never hand-concatenate metric-name
    strings.  Scopes nest (``scope.scope("0.0.0")``) and are cheap enough
    to create per component at construction time; the statistics
    themselves still live in the shared registry, so two scopes with the
    same prefix resolve to the same objects.
    """

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: "StatsRegistry", prefix: str):
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        self._registry = registry
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._registry._counter(f"{self.prefix}.{name}")

    def histogram(
        self, name: str, bucket_width: float = 1.0, num_buckets: int = 256
    ) -> Histogram:
        return self._registry._histogram(
            f"{self.prefix}.{name}", bucket_width, num_buckets
        )

    def scope(self, prefix: str) -> "StatsScope":
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        return StatsScope(self._registry, f"{self.prefix}.{prefix}")

    def snapshot(self) -> dict[str, float]:
        return self._registry.snapshot(prefix=self.prefix)

    def __repr__(self) -> str:
        return f"StatsScope({self.prefix!r})"


class StatsRegistry:
    """A hierarchical namespace of counters and histograms.

    Components ask a :class:`StatsScope` (from :meth:`scope`) for named
    statistics; asking twice for the same name returns the same object, so
    producers and reporters do not need to share references explicitly.
    The flat :meth:`counter` / :meth:`histogram` accessors remain as a
    deprecated shim for pre-scope callers.
    """

    def __init__(self, name: str = "stats"):
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def scope(self, prefix: str) -> StatsScope:
        """Return a child view that prefixes every metric name with ``prefix.``."""
        return StatsScope(self, prefix)

    def _counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def _histogram(
        self, name: str, bucket_width: float = 1.0, num_buckets: int = 256
    ) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name, bucket_width, num_buckets)
            self._histograms[name] = hist
        elif hist.bucket_width != bucket_width or len(hist.buckets) != num_buckets:
            # Silently returning the existing histogram would let two
            # subsystems share one histogram with the wrong bucketing.
            raise ValueError(
                f"histogram {name!r} already exists with "
                f"bucket_width={hist.bucket_width}, "
                f"num_buckets={len(hist.buckets)}; requested "
                f"bucket_width={bucket_width}, num_buckets={num_buckets}"
            )
        return hist

    def counter(self, name: str) -> Counter:
        """Deprecated flat accessor; use ``registry.scope(...).counter(...)``."""
        warnings.warn(
            "StatsRegistry.counter(name) is deprecated; use "
            "registry.scope(prefix).counter(name)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._counter(name)

    def histogram(
        self, name: str, bucket_width: float = 1.0, num_buckets: int = 256
    ) -> Histogram:
        """Deprecated flat accessor; use ``registry.scope(...).histogram(...)``."""
        warnings.warn(
            "StatsRegistry.histogram(name) is deprecated; use "
            "registry.scope(prefix).histogram(name)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._histogram(name, bucket_width, num_buckets)

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    @staticmethod
    def _matches(name: str, prefix: Optional[str]) -> bool:
        if prefix is None:
            return True
        return name == prefix or name.startswith(prefix + ".")

    def snapshot(self, prefix: Optional[str] = None) -> dict[str, float]:
        """Flat dict of every statistic, for report generation.

        ``prefix`` restricts the result to statistics whose name equals
        ``prefix`` or lives under ``prefix.`` (dotted-hierarchy match, not
        raw startswith: ``prefix="l2"`` matches ``l2.hits`` but never
        ``l2x.hits``).  Histograms contribute their out-of-range sample
        counts (``<name>.underflow`` / ``<name>.overflow``) alongside mean
        and count, so tail-heavy distributions are visible in reports.
        """
        result: dict[str, float] = {}
        for counter in self._counters.values():
            if self._matches(counter.name, prefix):
                result[counter.name] = counter.value
        for histogram in self._histograms.values():
            if self._matches(histogram.name, prefix):
                result[f"{histogram.name}.mean"] = histogram.mean
                result[f"{histogram.name}.count"] = histogram.count
                result[f"{histogram.name}.underflow"] = histogram.underflow
                result[f"{histogram.name}.overflow"] = histogram.overflow
        return result

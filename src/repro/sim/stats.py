"""Statistics primitives shared by every subsystem.

All simulator statistics flow through these classes so that experiment
harnesses can dump a uniform report: counters for event counts, histograms
for latency distributions, and exponential moving averages for load
estimation inside the contention-aware latency model.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator


class Counter:
    """A named monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming histogram with exact mean/min/max and bucketed counts.

    Buckets are fixed-width; samples beyond the last bucket edge land in an
    overflow bucket.  Mean and extrema are exact regardless of bucketing.
    """

    def __init__(self, name: str, bucket_width: float = 1.0, num_buckets: int = 256):
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self.buckets = [0] * num_buckets
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        index = int(value / self.bucket_width)
        if 0 <= index < len(self.buckets):
            self.buckets[index] += 1
        else:
            self.overflow += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.total_sq / self.count - mean * mean)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from bucket boundaries (0 < fraction <= 1)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        running = 0
        for index, bucket_count in enumerate(self.buckets):
            running += bucket_count
            if running >= target:
                return (index + 1) * self.bucket_width
        return self.max_value

    def reset(self) -> None:
        self.buckets = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.2f})"


class MovingAverage:
    """Exponential moving average used for online load estimation."""

    __slots__ = ("alpha", "value", "initialized")

    def __init__(self, alpha: float = 0.05):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = 0.0
        self.initialized = False

    def update(self, sample: float) -> float:
        if not self.initialized:
            self.value = sample
            self.initialized = True
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value

    def reset(self) -> None:
        self.value = 0.0
        self.initialized = False


class StatsRegistry:
    """A flat namespace of counters and histograms for one subsystem.

    Components ask the registry for named statistics; asking twice for the
    same name returns the same object, so producers and reporters do not
    need to share references explicitly.
    """

    def __init__(self, name: str = "stats"):
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str, bucket_width: float = 1.0, num_buckets: int = 256) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bucket_width, num_buckets)
        return self._histograms[name]

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def snapshot(self) -> dict[str, float]:
        """Flat dict of every statistic, for report generation."""
        result: dict[str, float] = {}
        for counter in self._counters.values():
            result[counter.name] = counter.value
        for histogram in self._histograms.values():
            result[f"{histogram.name}.mean"] = histogram.mean
            result[f"{histogram.name}.count"] = histogram.count
        return result

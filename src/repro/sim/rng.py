"""Deterministic random-number-generator construction.

Every stochastic component derives its generator from a (seed, stream-name)
pair so that experiments are reproducible and adding a new consumer of
randomness never perturbs the streams seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int, stream: str = "") -> np.random.Generator:
    """Create an independent, reproducible generator for a named stream.

    The stream name is hashed into the seed material, so distinct streams
    sharing a base seed are statistically independent while remaining fully
    deterministic.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
    material = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(material)

"""Deterministic random-number-generator construction.

Every stochastic component derives its generator from a (seed, stream-name)
pair so that experiments are reproducible and adding a new consumer of
randomness never perturbs the streams seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(seed: int, stream: str = "") -> int:
    """Fold a (seed, stream-name) pair into 64 bits of seed material.

    This is the single hash used everywhere randomness is derived: both
    :func:`make_rng` and the experiment orchestrator's per-cell seeding
    (:meth:`repro.experiments.spec.SimSpec.cell_seed`) go through it, so
    a stream's generator depends only on its (seed, name) identity —
    never on process layout or execution order.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(seed: int, stream: str = "") -> np.random.Generator:
    """Create an independent, reproducible generator for a named stream.

    The stream name is hashed into the seed material, so distinct streams
    sharing a base seed are statistically independent while remaining fully
    deterministic.
    """
    return np.random.default_rng(derive_seed(seed, stream))

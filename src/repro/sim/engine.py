"""Cycle-driven simulation engine with a two-phase update discipline.

Hardware structures (routers, buses, cache controllers) are modelled as
:class:`ClockedComponent` objects registered with an :class:`Engine`.  Each
simulated cycle the engine:

1. fires any events scheduled for the current cycle,
2. calls ``evaluate()`` on every component (combinational phase — components
   read the state published by the previous cycle and decide what they will
   do), and
3. calls ``advance()`` on every component (sequential phase — components
   commit the decisions, moving flits between buffers).

The two-phase split means evaluation order between components never changes
behaviour, which keeps the simulator deterministic regardless of the order
components were registered in.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class ClockedComponent:
    """Base class for anything that does work every cycle.

    Subclasses override :meth:`evaluate` and/or :meth:`advance`.  The split
    exists so that every component sees the same pre-cycle state during
    ``evaluate`` and commits state changes during ``advance``.
    """

    def evaluate(self, cycle: int) -> None:
        """Combinational phase: read previous-cycle state, make decisions."""

    def advance(self, cycle: int) -> None:
        """Sequential phase: commit the decisions made in :meth:`evaluate`."""


class Event:
    """A callback scheduled to run at a specific cycle.

    Events may be cancelled before they fire; a cancelled event is skipped
    silently when its cycle arrives.
    """

    __slots__ = ("cycle", "callback", "cancelled")

    def __init__(self, cycle: int, callback: Callable[[], Any]):
        self.cycle = cycle
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True


class Engine:
    """Discrete-time simulation engine.

    Parameters
    ----------
    name:
        Label used in error messages and statistics dumps.
    """

    def __init__(self, name: str = "engine"):
        self.name = name
        self.cycle = 0
        self._components: list[ClockedComponent] = []
        self._event_heap: list[tuple[int, int, Event]] = []
        self._sequence = itertools.count()
        self._stop_requested = False

    def register(self, component: ClockedComponent) -> ClockedComponent:
        """Add a clocked component to the per-cycle update list."""
        if not isinstance(component, ClockedComponent):
            raise TypeError(f"{component!r} is not a ClockedComponent")
        self._components.append(component)
        return component

    def unregister(self, component: ClockedComponent) -> None:
        """Remove a previously registered component."""
        self._components.remove(component)

    def schedule(self, delay: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; a delay of zero fires at the start of
        the *next* call to :meth:`step` for the current cycle's events, i.e.
        before any component evaluates.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = Event(self.cycle + delay, callback)
        heapq.heappush(self._event_heap, (event.cycle, next(self._sequence), event))
        return event

    def stop(self) -> None:
        """Request that :meth:`run` return after the current cycle."""
        self._stop_requested = True

    def peek_next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending (non-cancelled) event, or ``None``."""
        while self._event_heap:
            cycle, __, event = self._event_heap[0]
            if event.cancelled:
                heapq.heappop(self._event_heap)
                continue
            return cycle
        return None

    def step(self) -> None:
        """Advance the simulation by exactly one cycle."""
        while self._event_heap and self._event_heap[0][0] <= self.cycle:
            __, __, event = heapq.heappop(self._event_heap)
            if not event.cancelled:
                event.callback()
        for component in self._components:
            component.evaluate(self.cycle)
        for component in self._components:
            component.advance(self.cycle)
        self.cycle += 1

    def run(self, cycles: int) -> int:
        """Run for at most ``cycles`` cycles; returns cycles actually run."""
        self._stop_requested = False
        executed = 0
        for __ in range(cycles):
            if self._stop_requested:
                break
            self.step()
            executed += 1
        return executed

    def run_until(self, predicate: Callable[[], bool], max_cycles: int = 10_000_000) -> int:
        """Run until ``predicate()`` is true or ``max_cycles`` elapse.

        Returns the number of cycles executed.  Raises ``RuntimeError`` if the
        predicate never became true, which almost always indicates deadlock
        in the modelled hardware.
        """
        executed = 0
        while not predicate():
            if executed >= max_cycles:
                raise RuntimeError(
                    f"{self.name}: run_until exceeded {max_cycles} cycles "
                    "(likely deadlock)"
                )
            self.step()
            executed += 1
        return executed

"""Cycle-driven simulation engine with a two-phase update discipline.

Hardware structures (routers, buses, cache controllers) are modelled as
:class:`ClockedComponent` objects registered with an :class:`Engine`.  Each
simulated cycle the engine:

1. fires any events scheduled for the current cycle,
2. calls ``evaluate()`` on every *active* component (combinational phase —
   components read the state published by the previous cycle and decide
   what they will do), and
3. calls ``advance()`` on every *active* component (sequential phase —
   components commit the decisions, moving flits between buffers).

The two-phase split means evaluation order between components never changes
behaviour, which keeps the simulator deterministic regardless of the order
components were registered in.

Activity tracking
-----------------

With ``activity_tracking=True`` (the default) the engine maintains an
*active set* and only ticks components in it, and when the active set is
empty it *fast-forwards* the cycle counter straight to the next pending
event instead of stepping one empty cycle at a time.  The contract a
component must honour to participate:

* ``is_idle()`` — return ``True`` only when ``evaluate``/``advance`` would
  be pure no-ops (no buffered work, no decisions, no per-cycle state
  mutation, no statistics recorded) for every cycle until some external
  call deposits new work.  The base-class default is ``False``, so a
  component that does not opt in is simply ticked every cycle, exactly as
  under the naive kernel.
* ``wake()`` — every entry point that deposits work into an idle component
  (``InputPort.accept``, dTDMA transceiver enqueue, NIC injection, traffic
  restart) must call the owning component's ``wake()`` so the engine
  re-adds it to the active set.
* ``flush_idle_stats(cycle)`` — a component that records per-cycle
  statistics (e.g. the dTDMA bus's idle-cycle accounting) replays the
  skipped idle cycles here; the engine calls it for every registered
  component at the end of :meth:`Engine.run` / :meth:`Engine.run_until`.

Determinism guarantee: a component's idle cycles are by definition
behaviour-free, so skipping them (and jumping the clock over windows where
*every* component is idle) produces bit-identical component state, cycle
counts, and statistics to the naive kernel — asserted end-to-end by
``tests/integration/test_kernel_differential.py``.  The one caveat is
:meth:`Engine.run_until`: its predicate must be *state-based* (flipped by
component or event activity), not a function of the raw cycle counter,
because the predicate is not re-polled inside a fast-forwarded window.

Membership changes take effect at cycle boundaries: the set of components
ticked in a cycle is fixed when the cycle starts, a component registered
mid-cycle first ticks on the next cycle, and one unregistered mid-cycle is
skipped for the remaining phases of the current cycle.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationStallError(RuntimeError):
    """A simulation failed to make progress.

    Structured superclass for every "the clock ran but nothing converged"
    condition: :meth:`Engine.run_until` exhausting its cycle budget raises
    this directly, and the fault subsystem's
    :class:`~repro.faults.watchdog.DeadlockError` subclasses it with the
    stalled components named.  ``failure_kind`` is the machine-readable
    tag the sweep orchestrator records in its ``CellFailure`` entries, so
    a stalled cell is distinguishable from an ordinary error or a
    wall-clock timeout.
    """

    failure_kind = "stall"

    def __init__(
        self,
        message: str,
        *,
        engine_name: str = "engine",
        cycle: int = 0,
        executed: int = 0,
        max_cycles: int = 0,
    ):
        super().__init__(message)
        self.engine_name = engine_name
        self.cycle = cycle
        self.executed = executed
        self.max_cycles = max_cycles


class ClockedComponent:
    """Base class for anything that does work every cycle.

    Subclasses override :meth:`evaluate` and/or :meth:`advance`.  The split
    exists so that every component sees the same pre-cycle state during
    ``evaluate`` and commits state changes during ``advance``.

    Components that can go quiescent additionally override :meth:`is_idle`
    and arrange for :meth:`wake` to be called whenever new work arrives
    (see the module docstring for the full activity/wake contract).
    """

    # Set by Engine.register / cleared by Engine.unregister.
    _engine: Optional["Engine"] = None
    _engine_index: int = -1

    def evaluate(self, cycle: int) -> None:
        """Combinational phase: read previous-cycle state, make decisions."""

    def advance(self, cycle: int) -> None:
        """Sequential phase: commit the decisions made in :meth:`evaluate`."""

    def is_idle(self) -> bool:
        """``True`` iff ticking this component is a no-op until re-woken.

        Checked by the engine at the end of every cycle the component was
        ticked in; returning ``True`` retires it from the active set.  The
        conservative default keeps the component always active.
        """
        return False

    def wake(self) -> None:
        """Re-enter the engine's active set (no-op when unregistered)."""
        engine = self._engine
        if engine is not None:
            engine.wake(self)

    def flush_idle_stats(self, cycle: int) -> None:
        """Replay per-cycle statistics for idle cycles skipped so far.

        ``cycle`` is the engine's current cycle, i.e. statistics must be
        brought up to date as if the component had been ticked on every
        cycle below it.  Default: nothing to replay.
        """


class Event:
    """A callback scheduled to run at a specific cycle.

    Events may be cancelled before they fire; a cancelled event is skipped
    silently when its cycle arrives.
    """

    __slots__ = ("cycle", "callback", "cancelled")

    def __init__(self, cycle: int, callback: Callable[[], Any]):
        self.cycle = cycle
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True


class Engine:
    """Discrete-time simulation engine.

    Parameters
    ----------
    name:
        Label used in error messages and statistics dumps.
    activity_tracking:
        When ``True`` (default), skip components whose :meth:`~ClockedComponent.is_idle`
        hint holds and fast-forward over fully idle windows.  ``False``
        selects the naive kernel that ticks every component every cycle;
        both produce bit-identical results for well-behaved components.
    """

    def __init__(self, name: str = "engine", activity_tracking: bool = True):
        self.name = name
        self.cycle = 0
        self.activity_tracking = activity_tracking
        # Ordered set of registered components.  A dict preserves the
        # registration order the naive kernel ticks in while giving O(1)
        # unregister (the index-map/swap-pop alternative would reorder the
        # naive tick sequence on removal).
        self._components: dict[ClockedComponent, None] = {}
        self._active: set[ClockedComponent] = set()
        # Cached registration-ordered view of the active set; rebuilt only
        # when membership changes (most cycles it does not).
        self._active_order: Optional[list[ClockedComponent]] = None
        self._event_heap: list[tuple[int, int, Event]] = []
        self._sequence = itertools.count()
        self._index_counter = itertools.count()
        # Posted callbacks: the allocation-free fast path for the ubiquitous
        # schedule(1, ...) pattern (credit returns).  Parallel fn/arg lists
        # avoid a tuple per post; the spare pair is swapped in while the
        # current batch drains so reentrant posts land in the next step.
        self._post_fns: list[Callable[[Any], None]] = []
        self._post_args: list[Any] = []
        self._spare_post_fns: list[Callable[[Any], None]] = []
        self._spare_post_args: list[Any] = []
        self._stop_requested = False
        # Work accounting, for benchmarks and the differential tests:
        # component-cycles actually ticked, and cycles jumped over.
        self.ticks = 0
        self.fast_forwarded_cycles = 0

    def register(self, component: ClockedComponent) -> ClockedComponent:
        """Add a clocked component to the per-cycle update list.

        A freshly registered component starts *active* (it is ticked until
        its first ``is_idle()`` retirement), so registration order alone
        never hides a component from the clock.
        """
        if not isinstance(component, ClockedComponent):
            raise TypeError(f"{component!r} is not a ClockedComponent")
        if component._engine is not None:
            raise ValueError(
                f"{component!r} is already registered with engine "
                f"{component._engine.name!r}"
            )
        component._engine = self
        component._engine_index = next(self._index_counter)
        self._components[component] = None
        self._active.add(component)
        self._active_order = None
        return component

    def unregister(self, component: ClockedComponent) -> None:
        """Remove a previously registered component in O(1).

        Safe to call from inside ``evaluate``/``advance``: the component is
        skipped for the remaining phases of the current cycle instead of
        corrupting the in-flight iteration.  Raises :class:`ValueError`
        naming the component if it was never registered here.
        """
        if component._engine is not self or component not in self._components:
            raise ValueError(
                f"{component!r} is not registered with engine {self.name!r}"
            )
        del self._components[component]
        if component in self._active:
            self._active.discard(component)
            self._active_order = None
        component._engine = None

    def wake(self, component: ClockedComponent) -> None:
        """Mark ``component`` active so it is ticked from the next phase on."""
        if component._engine is not self:
            raise ValueError(
                f"{component!r} is not registered with engine {self.name!r}"
            )
        if component not in self._active:
            self._active.add(component)
            self._active_order = None

    @property
    def active_count(self) -> int:
        """Components currently in the active set."""
        return len(self._active)

    def schedule(self, delay: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; a delay of zero fires at the start of
        the *next* call to :meth:`step` for the current cycle's events, i.e.
        before any component evaluates.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = Event(self.cycle + delay, callback)
        heapq.heappush(self._event_heap, (event.cycle, next(self._sequence), event))
        return event

    def post(self, fn: Callable[[Any], None], arg: Any) -> None:
        """Run ``fn(arg)`` at the top of the next :meth:`step` call.

        Equivalent in timing to ``schedule(1, lambda: fn(arg))`` — the
        callback fires before any component evaluates in the next executed
        cycle — but without the closure, Event object, or heap push.  This
        is the hot-path mechanism for one-cycle-delayed credit returns.
        """
        self._post_fns.append(fn)
        self._post_args.append(arg)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current cycle."""
        self._stop_requested = True

    def peek_next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending (non-cancelled) event, or ``None``."""
        while self._event_heap:
            cycle, __, event = self._event_heap[0]
            if event.cancelled:
                heapq.heappop(self._event_heap)
                continue
            return cycle
        return None

    def flush_idle_stats(self) -> None:
        """Bring every component's deferred idle-cycle statistics up to date.

        Called automatically at the end of :meth:`run` and
        :meth:`run_until`; call it manually before reading statistics from
        a simulation driven by raw :meth:`step` loops.
        """
        for component in list(self._components):
            component.flush_idle_stats(self.cycle)

    def step(self) -> None:
        """Advance the simulation by exactly one cycle."""
        cycle = self.cycle
        if self._post_fns:
            fns, args = self._post_fns, self._post_args
            self._post_fns, self._post_args = (
                self._spare_post_fns, self._spare_post_args
            )
            for i in range(len(fns)):
                fns[i](args[i])
            fns.clear()
            args.clear()
            self._spare_post_fns, self._spare_post_args = fns, args
        while self._event_heap and self._event_heap[0][0] <= cycle:
            __, __, event = heapq.heappop(self._event_heap)
            if not event.cancelled:
                event.callback()
        if self.activity_tracking:
            tick = self._active_order
            if tick is None:
                tick = self._active_order = sorted(
                    self._active, key=lambda c: c._engine_index
                )
        else:
            tick = list(self._components)
        self.ticks += len(tick)
        for component in tick:
            if component._engine is self:
                component.evaluate(cycle)
        for component in tick:
            if component._engine is self:
                component.advance(cycle)
        if self.activity_tracking:
            for component in tick:
                if component._engine is self and component.is_idle():
                    self._active.discard(component)
                    self._active_order = None
        self.cycle = cycle + 1

    def _idle_skip(self, max_skip: int) -> int:
        """Fast-forward over a fully idle window; returns cycles skipped.

        Only jumps when activity tracking is on and the active set is
        empty: nothing can change until the next scheduled event, so the
        clock moves straight to it (or by ``max_skip`` if the event queue
        is empty too).
        """
        if (
            not self.activity_tracking
            or self._active
            or self._post_fns
            or max_skip <= 0
        ):
            # Pending posts pin the clock: they fire in the next executed
            # step, exactly like an event scheduled at cycle + 1 would.
            return 0
        next_event = self.peek_next_event_cycle()
        if next_event is None:
            skip = max_skip
        else:
            skip = min(max_skip, next_event - self.cycle)
        if skip > 0:
            self.cycle += skip
            self.fast_forwarded_cycles += skip
            return skip
        return 0

    def run(self, cycles: int) -> int:
        """Run for at most ``cycles`` cycles; returns cycles actually run.

        Fast-forwarded cycles count as run: the returned total and the
        final cycle counter match the naive kernel exactly.
        """
        self._stop_requested = False
        executed = 0
        while executed < cycles:
            if self._stop_requested:
                break
            executed += self._idle_skip(cycles - executed)
            if executed >= cycles:
                break
            self.step()
            executed += 1
        self.flush_idle_stats()
        return executed

    def run_until(self, predicate: Callable[[], bool], max_cycles: int = 10_000_000) -> int:
        """Run until ``predicate()`` is true or ``max_cycles`` elapse.

        Returns the number of cycles executed.  Raises
        :class:`SimulationStallError` (a ``RuntimeError`` subclass carrying
        the engine name, cycle, and budget) if the predicate never became
        true, which almost always indicates deadlock in the modelled
        hardware.  Under activity tracking the predicate must be
        state-based (see the module docstring).
        """
        executed = 0
        while not predicate():
            if executed >= max_cycles:
                self.flush_idle_stats()
                raise SimulationStallError(
                    f"{self.name}: run_until exceeded {max_cycles} cycles "
                    "(likely deadlock)",
                    engine_name=self.name,
                    cycle=self.cycle,
                    executed=executed,
                    max_cycles=max_cycles,
                )
            skipped = self._idle_skip(max_cycles - executed)
            if skipped:
                executed += skipped
                continue
            self.step()
            executed += 1
        self.flush_idle_stats()
        return executed

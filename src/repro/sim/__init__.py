"""Simulation kernel: cycle-driven engine, statistics, and seeded RNG helpers.

The kernel is deliberately small.  The network simulator (:mod:`repro.noc`)
is cycle-driven — every clocked component is evaluated once per cycle in two
phases so that all components observe a consistent snapshot of the previous
cycle's state.  A lightweight event queue is layered on top for delayed
callbacks (e.g. memory responses arriving after a fixed latency).

Activity/wake contract
----------------------

The engine is *activity-tracked* by default: it keeps an active set and
only ticks components in it, and when the set is empty it fast-forwards
the clock straight to the next scheduled event.  A component opts in by
implementing three hooks on :class:`~repro.sim.engine.ClockedComponent`:

* ``is_idle()`` — ``True`` only when both phases would be pure no-ops
  (no buffered work, no per-cycle statistics) until new work arrives.
  Returning ``True`` at the end of a cycle retires the component from the
  active set; the default ``False`` keeps it always ticked.
* ``wake()`` — called by every entry point that hands an idle component
  new work: ``InputPort.accept`` wakes the owning router, a dTDMA
  transceiver enqueue wakes the pillar bus, ``NetworkInterface.inject``
  wakes the NIC, and raising a traffic generator's injection rate wakes
  the generator.  Forgetting a wake path is the one way to break the
  kernel — an idle component that mutates state without being woken
  simply stops being simulated.
* ``flush_idle_stats(cycle)`` — components with per-cycle accounting
  (the pillar bus) replay their skipped idle cycles here; the engine
  invokes it at the end of ``run``/``run_until``.

Determinism guarantee: idle cycles are behaviour-free by definition, so
the activity-tracked and naive kernels produce bit-identical component
state, cycle counts, and statistics snapshots (differentially tested in
``tests/integration/test_kernel_differential.py``).  ``run_until``
predicates must be state-based, not cycle-based, because they are not
re-polled inside a fast-forwarded window.
"""

from repro.sim.engine import ClockedComponent, Engine, Event
from repro.sim.stats import Counter, Histogram, MovingAverage, StatsRegistry
from repro.sim.rng import make_rng

__all__ = [
    "ClockedComponent",
    "Engine",
    "Event",
    "Counter",
    "Histogram",
    "MovingAverage",
    "StatsRegistry",
    "make_rng",
]

"""Simulation kernel: cycle-driven engine, statistics, and seeded RNG helpers.

The kernel is deliberately small.  The network simulator (:mod:`repro.noc`)
is cycle-driven — every clocked component is evaluated once per cycle in two
phases so that all components observe a consistent snapshot of the previous
cycle's state.  A lightweight event queue is layered on top for delayed
callbacks (e.g. memory responses arriving after a fixed latency).
"""

from repro.sim.engine import ClockedComponent, Engine, Event
from repro.sim.stats import Counter, Histogram, MovingAverage, StatsRegistry
from repro.sim.rng import make_rng

__all__ = [
    "ClockedComponent",
    "Engine",
    "Event",
    "Counter",
    "Histogram",
    "MovingAverage",
    "StatsRegistry",
    "make_rng",
]

"""Structured event tracing for the 3D NUCA stack.

The paper's results all hinge on *where* cycles go — L2 search hops,
pillar contention, migration churn — so every subsystem carries probe
sites that emit typed events to a :class:`Tracer`.  Two implementations
exist:

* :class:`NullTracer` (module singleton :data:`NULL_TRACER`): the default.
  ``enabled`` is a plain ``False`` bool, and every probe site guards on it
  *before* building any event arguments, so the disabled path adds one
  attribute load + branch and zero allocation — preserving the PR 3
  hot-path rules.
* :class:`RingTracer`: records events as plain tuples into a bounded ring
  (oldest events overwritten once full, with drop counting) keyed by
  integer track ids.  Components register one track per router / pillar /
  bank cluster at construction time via :meth:`Tracer.track`; a component
  glob filter can suppress whole tracks at registration.

Export targets:

* :func:`write_chrome_trace` — Chrome-trace-event JSON loadable in
  ``chrome://tracing`` / Perfetto: one thread-track per component,
  complete ``B``/``E`` slice pairs, and flow events (``s``/``t``/``f``)
  tying a packet's inject → hops → eject together across tracks.
  Timestamps are simulator cycles reported as microseconds.
* :func:`write_jsonl` — one JSON object per event for scripted analysis,
  preceded by a header line with track names and drop counts.

Adding a new event type: pick the next :data:`EventKind` constant, list
its field names in ``_FIELDS``, add a ``record_<kind>`` method to both
tracers (no-op on :class:`NullTracer`), and teach ``_chrome_slice`` how
to label it.  Probe sites must keep the guard-on-bool rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import IO, Iterator, Optional, Union

# Event kinds (index 1 of every event tuple).  Int constants, not an
# enum: probe sites sit on the simulation hot path and tuple layouts are
# internal to this module.
PACKET_INJECT = 0
PACKET_HOP = 1
PACKET_EJECT = 2
LINK_TRANSFER = 3
BUS_GRANT = 4
BUS_FRAME = 5
CACHE_SEARCH = 6
SEARCH_PLAN = 7
MIGRATION = 8
COHERENCE = 9
FAULT = 10
VECTOR_OCCUPANCY = 11

EVENT_NAMES = {
    PACKET_INJECT: "packet_inject",
    PACKET_HOP: "packet_hop",
    PACKET_EJECT: "packet_eject",
    LINK_TRANSFER: "link_transfer",
    BUS_GRANT: "bus_grant",
    BUS_FRAME: "bus_frame",
    CACHE_SEARCH: "cache_search",
    SEARCH_PLAN: "search_plan",
    MIGRATION: "migration",
    COHERENCE: "coherence",
    FAULT: "fault",
    VECTOR_OCCUPANCY: "vector_occupancy",
}

# Field names for the per-kind payload (event tuple positions 3..).
_FIELDS = {
    PACKET_INJECT: ("packet_id", "src", "dest", "size_flits", "message_class"),
    PACKET_HOP: ("packet_id", "out_port", "out_vc"),
    PACKET_EJECT: ("packet_id", "latency"),
    LINK_TRANSFER: ("packet_id", "vc"),
    BUS_GRANT: ("packet_id", "src_layer", "dest_layer", "vc"),
    BUS_FRAME: ("old_size", "new_size"),
    CACHE_SEARCH: ("cpu", "line", "step", "hit"),
    SEARCH_PLAN: ("cpu", "step1_clusters", "step2_clusters"),
    MIGRATION: ("line", "src_cluster", "dest_cluster"),
    COHERENCE: ("kind", "line", "targets"),
    FAULT: ("kind", "target", "phase"),
    VECTOR_OCCUPANCY: ("occupied_vcs", "active_lanes"),
}


class Tracer:
    """Probe-site protocol; the base class doubles as the null tracer.

    Every ``record_*`` method is a no-op here.  Probe sites must never
    call them without first checking ``tracer.enabled`` — the guard, not
    the no-op body, is what keeps the disabled path allocation-free.
    ``track()`` is called off the hot path (component construction) and
    always safe.
    """

    enabled = False

    def track(self, name: str) -> int:
        """Register (or look up) a named track; returns its id."""
        return 0

    # Probe methods — one per event kind, no-ops when tracing is off.
    def packet_inject(self, ts, track, packet):
        pass

    def packet_hop(self, ts, track, packet_id, out_port, out_vc):
        pass

    def packet_eject(self, ts, track, packet_id, latency):
        pass

    def link_transfer(self, ts, track, packet_id, vc):
        pass

    def bus_grant(self, ts, track, packet_id, src_layer, dest_layer, vc):
        pass

    def bus_frame(self, ts, track, old_size, new_size):
        pass

    def cache_search(self, ts, track, cpu, line, step, hit):
        pass

    def search_plan(self, ts, track, cpu, step1_clusters, step2_clusters):
        pass

    def migration(self, ts, track, line, src_cluster, dest_cluster):
        pass

    def coherence(self, ts, track, kind, line, targets):
        pass

    def fault(self, ts, track, kind, target, phase):
        pass

    def vector_occupancy(self, ts, track, occupied_vcs, active_lanes):
        pass


class NullTracer(Tracer):
    """Disabled tracer; use the module singleton :data:`NULL_TRACER`."""


NULL_TRACER = NullTracer()


class RingTracer(Tracer):
    """Records typed events into a bounded ring with drop counting.

    Events are ``(ts, kind, track_id, *payload)`` tuples.  Once ``limit``
    events are held, the oldest are overwritten and ``dropped`` counts
    the overwrites.  Tracks suppressed by the ``component_filter`` glob
    record nothing (and are not counted as drops).
    """

    enabled = True

    def __init__(self, limit: int = 1_000_000, component_filter: Optional[str] = None):
        if limit <= 0:
            raise ValueError("trace limit must be positive")
        self.limit = limit
        self.component_filter = component_filter
        self.dropped = 0
        self._events: list[tuple] = []
        self._head = 0  # overwrite cursor once the ring is full
        self._track_names: list[str] = []
        self._track_on: list[bool] = []
        self._track_ids: dict[str, int] = {}

    # -- track registry (construction-time, not hot) --------------------

    def track(self, name: str) -> int:
        tid = self._track_ids.get(name)
        if tid is None:
            tid = len(self._track_names)
            self._track_ids[name] = tid
            self._track_names.append(name)
            self._track_on.append(
                self.component_filter is None
                or fnmatchcase(name, self.component_filter)
            )
        return tid

    def tracks(self) -> list[str]:
        return list(self._track_names)

    def track_enabled(self, track: int) -> bool:
        return self._track_on[track]

    # -- ring ------------------------------------------------------------

    def _append(self, event: tuple) -> None:
        events = self._events
        if len(events) < self.limit:
            events.append(event)
        else:
            events[self._head] = event
            self._head += 1
            if self._head == self.limit:
                self._head = 0
            self.dropped += 1

    @property
    def recorded(self) -> int:
        return len(self._events)

    def events(self) -> Iterator[tuple]:
        """Surviving events, oldest first."""
        events = self._events
        head = self._head
        yield from events[head:]
        yield from events[:head]

    # -- probe methods ----------------------------------------------------

    def packet_inject(self, ts, track, packet):
        if self._track_on[track]:
            self._append(
                (
                    ts,
                    PACKET_INJECT,
                    track,
                    packet.packet_id,
                    tuple(packet.src),
                    tuple(packet.dest),
                    packet.size_flits,
                    packet.message_class.value,
                )
            )

    def packet_hop(self, ts, track, packet_id, out_port, out_vc):
        if self._track_on[track]:
            self._append((ts, PACKET_HOP, track, packet_id, out_port, out_vc))

    def packet_eject(self, ts, track, packet_id, latency):
        if self._track_on[track]:
            self._append((ts, PACKET_EJECT, track, packet_id, latency))

    def link_transfer(self, ts, track, packet_id, vc):
        if self._track_on[track]:
            self._append((ts, LINK_TRANSFER, track, packet_id, vc))

    def bus_grant(self, ts, track, packet_id, src_layer, dest_layer, vc):
        if self._track_on[track]:
            self._append(
                (ts, BUS_GRANT, track, packet_id, src_layer, dest_layer, vc)
            )

    def bus_frame(self, ts, track, old_size, new_size):
        if self._track_on[track]:
            self._append((ts, BUS_FRAME, track, old_size, new_size))

    def cache_search(self, ts, track, cpu, line, step, hit):
        if self._track_on[track]:
            self._append((ts, CACHE_SEARCH, track, cpu, line, step, hit))

    def search_plan(self, ts, track, cpu, step1_clusters, step2_clusters):
        if self._track_on[track]:
            self._append(
                (ts, SEARCH_PLAN, track, cpu, step1_clusters, step2_clusters)
            )

    def migration(self, ts, track, line, src_cluster, dest_cluster):
        if self._track_on[track]:
            self._append((ts, MIGRATION, track, line, src_cluster, dest_cluster))

    def coherence(self, ts, track, kind, line, targets):
        if self._track_on[track]:
            self._append((ts, COHERENCE, track, kind, line, targets))

    def fault(self, ts, track, kind, target, phase):
        if self._track_on[track]:
            self._append((ts, FAULT, track, kind, target, phase))

    def vector_occupancy(self, ts, track, occupied_vcs, active_lanes):
        if self._track_on[track]:
            self._append(
                (ts, VECTOR_OCCUPANCY, track, occupied_vcs, active_lanes)
            )


@dataclass(frozen=True)
class TraceSpec:
    """Declarative tracing request, embeddable in a frozen ``SimSpec``.

    ``format`` is ``"chrome"`` or ``"jsonl"``; ``limit`` bounds the event
    ring; ``component_filter`` is an fnmatch glob over track names (e.g.
    ``"pillar.*"``).
    """

    format: str = "chrome"
    limit: int = 1_000_000
    component_filter: Optional[str] = None

    FORMATS = ("chrome", "jsonl")

    def __post_init__(self) -> None:
        if self.format not in self.FORMATS:
            raise ValueError(
                f"unknown trace format {self.format!r}; "
                f"choose from {list(self.FORMATS)}"
            )
        if self.limit <= 0:
            raise ValueError("trace limit must be positive")

    def make_tracer(self) -> RingTracer:
        return RingTracer(limit=self.limit, component_filter=self.component_filter)

    def filename_suffix(self) -> str:
        return ".trace.json" if self.format == "chrome" else ".trace.jsonl"

    def to_dict(self) -> dict:
        data: dict = {"format": self.format, "limit": self.limit}
        if self.component_filter is not None:
            data["component_filter"] = self.component_filter
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        return cls(
            format=data.get("format", "chrome"),
            limit=data.get("limit", 1_000_000),
            component_filter=data.get("component_filter"),
        )


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

# How long each point event is drawn in the Chrome timeline, in cycles.
_SLICE_DUR = 1.0


def _chrome_slice(kind: int, payload: tuple) -> tuple[str, str, dict]:
    """(name, category, args) for one event's B/E slice."""
    args = dict(zip(_FIELDS[kind], payload))
    if kind == PACKET_INJECT:
        return f"inject p{payload[0]}", "packet", args
    if kind == PACKET_HOP:
        return f"p{payload[0]} -> {payload[1]}", "packet", args
    if kind == PACKET_EJECT:
        return f"eject p{payload[0]}", "packet", args
    if kind == LINK_TRANSFER:
        return f"link p{payload[0]}", "packet", args
    if kind == BUS_GRANT:
        return (
            f"slot p{payload[0]} L{payload[1]}->L{payload[2]}",
            "dtdma",
            args,
        )
    if kind == BUS_FRAME:
        return f"frame {payload[0]}->{payload[1]}", "dtdma", args
    if kind == CACHE_SEARCH:
        label = "hit" if payload[3] else "miss"
        return f"search cpu{payload[0]} step{payload[2]} {label}", "cache", args
    if kind == SEARCH_PLAN:
        return f"search_plan cpu{payload[0]}", "cache", args
    if kind == MIGRATION:
        return f"migrate {payload[1]}->{payload[2]}", "cache", args
    if kind == COHERENCE:
        return f"coherence {payload[0]}", "coherence", args
    if kind == FAULT:
        return f"fault {payload[0]} {payload[1]} {payload[2]}", "fault", args
    if kind == VECTOR_OCCUPANCY:
        return f"occ {payload[0]} lanes {payload[1]}", "noc", args
    raise ValueError(f"unknown event kind {kind}")


# Flow-event phase per packet-lifetime kind: "s" starts the flow at
# inject, "t" continues it at every hop, "f" finishes it at eject.
_FLOW_PHASE = {
    PACKET_INJECT: "s",
    PACKET_HOP: "t",
    LINK_TRANSFER: "t",
    BUS_GRANT: "t",
    PACKET_EJECT: "f",
}


def write_chrome_trace(tracer: RingTracer, stream: IO[str]) -> int:
    """Write a Chrome-trace-event JSON document; returns events written.

    One ``pid=1`` process with one thread per track; each simulator event
    becomes an adjacent ``B``/``E`` pair (balanced by construction) with a
    flow event bound inside the slice for packet-lifetime kinds.  Events
    are emitted track-by-track in non-decreasing ``ts`` order.
    """
    track_names = tracer.tracks()
    trace_events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for tid, name in enumerate(track_names):
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    per_track: dict[int, list[tuple]] = {}
    count = 0
    started_flows: set = set()
    for event in tracer.events():
        per_track.setdefault(event[2], []).append(event)
        count += 1
        if event[1] == PACKET_INJECT:
            started_flows.add(event[3])

    for tid in sorted(per_track):
        events = per_track[tid]
        # Append order is already chronological per time base; the stable
        # sort only repairs cross-time-base stragglers (e.g. a lazily
        # built search plan stamped at ts 0).
        events.sort(key=lambda event: event[0])
        for event in events:
            ts, kind = float(event[0]), event[1]
            payload = event[3:]
            name, category, args = _chrome_slice(kind, payload)
            trace_events.append(
                {
                    "ph": "B",
                    "name": name,
                    "cat": category,
                    "pid": 1,
                    "tid": tid,
                    "ts": ts,
                    "args": args,
                }
            )
            # A packet whose inject was overwritten in the ring has no
            # flow start; suppress its later flow steps so the document
            # stays strictly valid.
            flow_phase = _FLOW_PHASE.get(kind)
            if flow_phase is not None and payload[0] not in started_flows:
                flow_phase = None
            if flow_phase is not None:
                flow: dict = {
                    "ph": flow_phase,
                    "name": "packet",
                    "cat": "packet",
                    "pid": 1,
                    "tid": tid,
                    "ts": ts,
                    "id": payload[0],
                }
                if flow_phase == "f":
                    flow["bp"] = "e"
                trace_events.append(flow)
            trace_events.append(
                {
                    "ph": "E",
                    "pid": 1,
                    "tid": tid,
                    "ts": ts + _SLICE_DUR,
                }
            )

    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tracks": track_names,
            "recorded": tracer.recorded,
            "dropped": tracer.dropped,
        },
    }
    # dumps() (one-shot) takes the C-accelerated encoder; dump() streams
    # through the pure-Python encoder and is ~20x slower on big traces.
    # Compact separators save ~15% on multi-hundred-MB documents.
    stream.write(json.dumps(document, separators=(",", ":")))
    stream.write("\n")
    return count


def write_jsonl(tracer: RingTracer, stream: IO[str]) -> int:
    """Write one JSON object per event; returns events written.

    The first line is a header object carrying the track table and drop
    count, so a truncated ring is never mistaken for a complete run.
    """
    track_names = tracer.tracks()
    header = {
        "format": "repro-trace",
        "version": 1,
        "tracks": track_names,
        "recorded": tracer.recorded,
        "dropped": tracer.dropped,
    }
    stream.write(json.dumps(header) + "\n")
    count = 0
    for event in tracer.events():
        kind = event[1]
        record = {
            "ts": float(event[0]),
            "event": EVENT_NAMES[kind],
            "track": track_names[event[2]],
        }
        record.update(zip(_FIELDS[kind], event[3:]))
        stream.write(json.dumps(record) + "\n")
        count += 1
    return count


def write_trace(
    tracer: RingTracer, path: str, format: str = "chrome"
) -> tuple[int, int]:
    """Export ``tracer`` to ``path``; returns ``(written, dropped)``."""
    with open(path, "w", encoding="utf-8") as stream:
        if format == "chrome":
            written = write_chrome_trace(tracer, stream)
        elif format == "jsonl":
            written = write_jsonl(tracer, stream)
        else:
            raise ValueError(
                f"unknown trace format {format!r}; "
                f"choose from {list(TraceSpec.FORMATS)}"
            )
    return written, tracer.dropped


# ---------------------------------------------------------------------------
# Validation (used by tests and CI smoke checks)
# ---------------------------------------------------------------------------


def validate_chrome_trace(document: Union[dict, str]) -> dict:
    """Validate a Chrome-trace-event document; raises ValueError on defects.

    Checks the invariants the exporter promises: every ``B`` has a
    matching ``E`` on the same track (balanced, never left open), ``B``
    timestamps are non-decreasing per track, and every flow step/finish
    (``t``/``f``) refers to a flow id that some ``s`` event started.
    Returns summary info: track names, per-kind slice counts, flow ids.
    """
    if isinstance(document, str):
        document = json.loads(document)
    events = document["traceEvents"]
    track_names: dict[int, str] = {}
    open_slices: dict[int, int] = {}
    last_ts: dict[int, float] = {}
    started_flows: set = set()
    continued_flows: set = set()
    slice_count = 0
    for event in events:
        phase = event["ph"]
        tid = event.get("tid")
        if phase == "M":
            if event["name"] == "thread_name":
                track_names[tid] = event["args"]["name"]
            continue
        ts = event["ts"]
        if phase == "B":
            if ts < last_ts.get(tid, float("-inf")):
                raise ValueError(
                    f"track {tid} ts went backwards: {ts} after {last_ts[tid]}"
                )
            last_ts[tid] = ts
            open_slices[tid] = open_slices.get(tid, 0) + 1
            slice_count += 1
        elif phase == "E":
            if open_slices.get(tid, 0) <= 0:
                raise ValueError(f"track {tid}: E without matching B at ts {ts}")
            open_slices[tid] -= 1
        elif phase in ("s", "t", "f"):
            if phase == "s":
                started_flows.add(event["id"])
            else:
                continued_flows.add(event["id"])
        else:
            raise ValueError(f"unexpected phase {phase!r}")
    unclosed = {tid: n for tid, n in open_slices.items() if n}
    if unclosed:
        raise ValueError(f"unbalanced B/E pairs on tracks {unclosed}")
    orphans = continued_flows - started_flows
    if orphans:
        raise ValueError(f"flow steps without a start: {sorted(orphans)[:10]}")
    return {
        "tracks": track_names,
        "slices": slice_count,
        "flow_ids": started_flows,
    }

"""In-order single-issue CPU model and memory-reference traces.

The paper's cores are simple in-order, single-issue SPARC processors (like
the Niagara/Cell generation it cites).  For IPC purposes such a core is a
clock: one cycle per instruction, plus stall cycles whenever a load or
instruction fetch misses the L1 and must wait for the L2 (or memory).
Stores are write-through but buffered, so they do not stall the pipeline.
"""

from repro.cpu.trace import OP_READ, OP_WRITE, OP_IFETCH, TraceEvent, op_name
from repro.cpu.core import InOrderCore

__all__ = [
    "OP_READ",
    "OP_WRITE",
    "OP_IFETCH",
    "TraceEvent",
    "op_name",
    "InOrderCore",
]

"""Memory-reference trace representation.

A trace event is a plain tuple ``(gap, op, address)`` — the number of
non-memory instructions executed since the previous event, the operation
kind, and the byte address.  Tuples (rather than objects) keep the
generator and the simulation loop fast enough for the million-reference
runs the figure sweeps need.
"""

from __future__ import annotations

from typing import Iterable, Iterator

OP_READ = 0
OP_WRITE = 1
OP_IFETCH = 2

_OP_NAMES = {OP_READ: "read", OP_WRITE: "write", OP_IFETCH: "ifetch"}

# (gap instructions, op code, byte address)
TraceEvent = tuple[int, int, int]


def op_name(op: int) -> str:
    try:
        return _OP_NAMES[op]
    except KeyError:
        raise ValueError(f"unknown op code {op}") from None


def validate_trace(events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
    """Validate events lazily; raises on the first malformed one."""
    for event in events:
        gap, op, address = event
        if gap < 0:
            raise ValueError(f"negative instruction gap in {event}")
        if op not in _OP_NAMES:
            raise ValueError(f"unknown op code in {event}")
        if address < 0:
            raise ValueError(f"negative address in {event}")
        yield event

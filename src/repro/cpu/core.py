"""In-order single-issue core: the timing skeleton of one CPU.

The core consumes a memory-reference trace.  Between references it retires
``gap`` ordinary instructions at the base CPI; a reference that hits the
L1 costs one (pipelined) cycle; a read or ifetch that misses stalls the
core for the full L2 transaction latency; stores retire into the write
buffer without stalling (their L2 traffic is still generated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.trace import OP_WRITE


@dataclass
class InOrderCore:
    """Per-CPU clock and instruction accounting."""

    cpu_id: int
    cpi_base: float = 1.0
    clock: float = 0.0
    clock_at_reset: float = 0.0   # set when statistics are reset (warmup)
    instructions: float = 0.0
    memory_stall_cycles: float = 0.0
    l2_accesses: int = 0

    def reset_stats(self) -> None:
        """Zero the accounting while keeping the clock running (warmup)."""
        self.clock_at_reset = self.clock
        self.instructions = 0.0
        self.memory_stall_cycles = 0.0
        self.l2_accesses = 0

    def retire_gap(self, gap: int) -> None:
        """Execute ``gap`` non-memory instructions."""
        self.clock += gap * self.cpi_base
        self.instructions += gap

    def retire_reference(self, op: int, stall_cycles: float) -> None:
        """Execute one memory instruction with the given L2 stall.

        Stores never stall (buffered write-through); reads and fetches
        stall for the full transaction latency when ``stall_cycles`` > 0.
        """
        self.clock += self.cpi_base
        self.instructions += 1
        if op != OP_WRITE and stall_cycles > 0:
            self.clock += stall_cycles
            self.memory_stall_cycles += stall_cycles

    @property
    def measured_cycles(self) -> float:
        return self.clock - self.clock_at_reset

    @property
    def ipc(self) -> float:
        cycles = self.measured_cycles
        return self.instructions / cycles if cycles > 0 else 0.0

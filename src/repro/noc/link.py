"""Point-to-point link: a fixed-latency flit conduit.

Mesh links between routers are created by :func:`repro.noc.router.connect`;
this standalone class serves the places where a delayed flit hand-off is
needed outside a router-to-router connection (network interfaces and the
dTDMA bus transceivers).
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine
from repro.noc.flit import Flit


class Link:
    """Delivers flits to ``sink(flit, vc)`` after ``latency`` cycles.

    Activity contract: the link itself is stateless between transfers, so
    it never needs waking; it is the *sink* (``InputPort.accept``, a
    transceiver enqueue, a NIC ejection handler) that wakes its owning
    component when the delayed delivery lands.
    """

    def __init__(self, engine: Engine, sink: Callable[[Flit, int], None], latency: int = 1):
        if latency < 0:
            raise ValueError("link latency must be non-negative")
        self.engine = engine
        self.sink = sink
        self.latency = latency
        self.flits_carried = 0

    def send(self, flit: Flit, vc: int) -> None:
        self.flits_carried += 1
        if self.latency == 0:
            self.sink(flit, vc)
        else:
            self.engine.schedule(
                self.latency, lambda f=flit, v=vc: self.sink(f, v)
            )

"""Links and the hot-path transfer pipelines.

:class:`Link` is the standalone fixed-latency conduit used where a delayed
flit hand-off is needed outside a router-to-router connection.

:class:`LinkPipeline` and :class:`CreditPipeline` are the allocation-free
replacements for the ``engine.schedule(lambda: ...)`` per-hop pattern:
one shared calendar-ring pipeline carries every mesh link's in-flight
flits (one clocked component per network instead of one event per flit),
and credit returns ride the engine's post queue (one list append instead
of a closure plus a heap push).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import ClockedComponent, Engine
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.flit import Flit


class Link:
    """Delivers flits to ``sink(flit, vc)`` after ``latency`` cycles.

    Activity contract: the link itself is stateless between transfers, so
    it never needs waking; it is the *sink* (``InputPort.accept``, a
    transceiver enqueue, a NIC ejection handler) that wakes its owning
    component when the delayed delivery lands.
    """

    def __init__(
        self,
        engine: Engine,
        sink: Callable[[Flit, int], None],
        latency: int = 1,
        tracer: Optional[Tracer] = None,
        name: str = "link",
    ):
        if latency < 0:
            raise ValueError("link latency must be non-negative")
        self.engine = engine
        self.sink = sink
        self.latency = latency
        self.flits_carried = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._track = self._tracer.track(name)

    def send(self, flit: Flit, vc: int) -> None:
        self.flits_carried += 1
        tracer = self._tracer
        if tracer.enabled and flit.is_head:
            tracer.link_transfer(
                self.engine.cycle, self._track, flit.packet.packet_id, vc
            )
        if self.latency == 0:
            self.sink(flit, vc)
        else:
            self.engine.schedule(
                self.latency, lambda f=flit, v=vc: self.sink(f, v)
            )


class LinkPipeline(ClockedComponent):
    """Shared calendar ring carrying every in-flight mesh-link flit.

    One pipeline serves all of a network's multi-cycle links: a flit sent
    with ``latency`` L is appended to the bucket for cycle ``now + L`` and
    handed to its sink when that bucket's cycle arrives.  Buckets are
    flat ``[sink, flit, vc, sink, flit, vc, ...]`` lists that are cleared
    and reused, so steady-state transfer allocates nothing.

    Timing matches the event-based link it replaces: a flit sent during
    ``advance(K)`` with latency L is delivered in ``advance(K + L - 1)``,
    i.e. it lands in the downstream input buffer in the same cycle as the
    old ``schedule(L, ...)`` event (which fired at the top of step
    ``K + L``, before any ``evaluate``) — in both models the downstream
    router first arbitrates over it in cycle ``K + L``.  Delivering from
    the tail of ``advance`` vs. the top of ``step`` is unobservable because
    no component reads remote input buffers during ``advance``.

    Only latencies >= 2 may use the pipeline: a latency-1 due slot would be
    the cycle the send itself occurs in, after this pipeline may already
    have advanced.  Latency-1 transfers are delivered directly by the
    sender (see ``router.connect``), which the same argument proves
    equivalent.
    """

    def __init__(self, engine: Engine, max_latency: int = 2):
        self.engine = engine
        self._size = max(2, max_latency + 1)
        self._buckets: list[list[Any]] = [[] for __ in range(self._size)]
        self._in_flight = 0
        self.flits_carried = 0

    def reserve(self, latency: int) -> None:
        """Widen the ring so links of ``latency`` cycles fit.

        Must be called while the pipeline is empty (wiring time): resizing
        would re-home occupied buckets.
        """
        if latency < 2:
            raise ValueError(
                f"pipeline links need latency >= 2, got {latency}"
            )
        if latency + 1 > self._size:
            if self._in_flight:
                raise RuntimeError(
                    "cannot grow a LinkPipeline with flits in flight"
                )
            self._size = latency + 1
            self._buckets = [[] for __ in range(self._size)]

    def send(
        self,
        sink: Callable[[Flit, int], None],
        flit: Flit,
        vc: int,
        latency: int,
    ) -> None:
        """Enqueue ``flit`` for delivery to ``sink`` after ``latency`` cycles."""
        bucket = self._buckets[(self.engine.cycle + latency) % self._size]
        bucket.append(sink)
        bucket.append(flit)
        bucket.append(vc)
        self._in_flight += 1
        self.flits_carried += 1
        self.wake()

    def advance(self, cycle: int) -> None:
        # Deliver the flits due at cycle + 1 (they were sent L cycles before
        # that, during some advance phase, so they have been "on the wire"
        # for exactly L cycles when the downstream router evaluates next).
        bucket = self._buckets[(cycle + 1) % self._size]
        if bucket:
            for i in range(0, len(bucket), 3):
                bucket[i](bucket[i + 1], bucket[i + 2])
            self._in_flight -= len(bucket) // 3
            bucket.clear()

    def is_idle(self) -> bool:
        return self._in_flight == 0


class CreditPipeline:
    """One-cycle-delayed credit return via the engine's post queue.

    Calling the pipeline with a VC index posts ``return_credit(vc)`` to run
    at the top of the next executed step — the same instant the old
    ``schedule(1, lambda: ...)`` event fired, but with no closure or heap
    push.  The delay is load-bearing: senders (NIC, routers) read credit
    counts during their own ``advance``, so an immediate increment would
    let them transmit one cycle early.
    """

    __slots__ = ("_post", "_return_credit")

    def __init__(self, engine: Engine, return_credit: Callable[[int], None]):
        self._post = engine.post
        self._return_credit = return_credit

    def __call__(self, vc: int) -> None:
        self._post(self._return_credit, vc)

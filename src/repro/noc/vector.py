"""``FabricKind.VECTOR``: the whole 3D mesh as structure-of-arrays state.

Instead of ticking ~256 router/NIC/pillar Python objects per cycle, one
:class:`VectorFabric` component holds every input buffer, credit counter,
VC-allocation record, and link stage as flat numpy arrays indexed by a
``(router, port, vc)`` layout, and advances the entire mesh in a handful
of bulk array operations per cycle (the batch-simulation approach of
"Bufferless NOC Simulation of Large Multicore System on GPU Hardware").

Per-cycle cost scales with *occupancy*, not mesh size: an incremental
occupied-lane set (maintained on deposit, pruned lazily) feeds the mesh
step only the live (router, port, vc) indices, and at or below
``NetworkConfig.sparse_threshold`` occupied lanes the whole step drops
to a scalar per-flit path with identical outcomes.  A fully quiescent
fabric reports idle, so the engine's active-set machinery fast-forwards
vector cycles exactly as it does for the object fabrics.

Semantics match the object fabrics cycle-for-cycle on uncontended
traffic (identical zero-load latencies, identical credit round-trip
timing).  Under contention the arbitration *rotation* differs: the
object router rotates its input-port scan over the per-router insertion
order of whatever ports exist, while the vector fabric rotates a global
priority over the fixed ``PORT_INDEX`` space and resolves all routers at
once in two winner-selection passes (one winner per output port, then
one per input port).  Both are fair round-robin schemes, so results are
distribution-level equivalent rather than bit-identical — the
differential suite checks delivered counts and latency distributions
within tolerance instead of exact stats snapshots.

The dTDMA boundary stays event-driven: each pillar is a small Python
bridge (:class:`_VectorPillar`) fed through index queues, reusing the
exact :class:`~repro.dtdma.arbiter.DynamicTDMAArbiter` so bus grant
order is bit-identical to the object fabrics given the same offered
sequence.  At most ``pillars × 1`` flit crosses this boundary per cycle,
so the Python cost is negligible.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, TYPE_CHECKING

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - numpy is a core dependency
    raise ImportError(
        "FabricKind.VECTOR requires numpy; install numpy (or the 'vector' "
        "extra: pip install 'repro[vector]') or pick fabric='optimized'"
    ) from exc

from repro.sim.engine import ClockedComponent, Engine
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.dtdma.arbiter import DynamicTDMAArbiter
from repro.noc.routing import (
    OPPOSITE_PORT,
    PORT_INDEX,
    Port,
    compute_route_table,
)

if TYPE_CHECKING:
    from repro.noc.network import Network, NetworkConfig
    from repro.noc.packet import Packet

_LOCAL = PORT_INDEX[Port.LOCAL]
_VERTICAL = PORT_INDEX[Port.VERTICAL]
_NUM_PORTS = len(PORT_INDEX)
# The object NIC models ejection as a bottomless output port
# (downstream_depth=1_000_000, credits never returned); mirror it exactly
# so ejection is never the backpressure point in either fabric.
_EJECT_CREDITS = 1_000_000
_PRIO_MAX = 1 << 30


class _VectorPillar:
    """One dTDMA pillar bridged through index queues.

    TX side: the mesh step pushes ``(packet_index, flit_seq)`` pairs into
    per-(layer, vc) deques when a flit leaves a pillar router's VERTICAL
    output.  RX side: the granted flit is deposited straight into the
    destination router's VERTICAL input buffer (arbitrated next cycle),
    with the RX credit returned through the fabric's one-cycle staging
    lists — the same visibility timing as the object bus's
    CreditPipeline.
    """

    def __init__(
        self,
        fabric: "VectorFabric",
        xy: tuple[int, int],
        routers: list[int],
        num_vcs: int,
        vc_depth: int,
        active_vcs: int = 0,
    ):
        self.fabric = fabric
        self.xy = xy
        self.routers = routers  # flat router index per layer z
        self.num_vcs = num_vcs
        # Under the VC-class partition only class-A VCs [0, vc_split)
        # ever reach a VERTICAL output, so the bus need not scan (or
        # register arbiter clients for) the intra-layer class.  The
        # object bus keeps all clients but they are never deliverable —
        # the grant rotation over the active set is identical.
        self.active_vcs = active_vcs or num_vcs
        self.txq: list[list[deque]] = [
            [deque() for _ in range(num_vcs)] for _ in routers
        ]
        self.rx_credits = [[vc_depth] * num_vcs for _ in routers]
        # Bus-level VC ownership, held head flit through tail exactly as
        # on the object bus: key (dest_layer, vc) -> owning (src_layer, vc).
        self.vc_owner: dict[tuple[int, int], tuple[int, int] | None] = {
            (z, vc): None
            for z in range(len(routers))
            for vc in range(num_vcs)
        }
        clients = [
            (z, vc)
            for z in range(len(routers))
            for vc in range(self.active_vcs)
        ]
        # Same arbiter class as the object bus (identical rotation), but
        # with a private registry: the vector fabric does not report the
        # shared per-cycle "bus.*" counters (documented divergence).
        self.arbiter = DynamicTDMAArbiter(
            clients, stats=StatsRegistry(f"vector-pillar{xy}")
        )
        self.occupancy = 0
        self.transfers = 0

    def tx_push(self, z: int, vc: int, pkt: int, seq: int) -> None:
        self.txq[z][vc].append((pkt, seq))
        self.occupancy += 1
        self.fabric._pillar_occ += 1

    def step(self, cycle: int, rx_out: list) -> None:
        """One bus slot: offer deliverable heads, grant one, deliver it."""
        fabric = self.fabric
        active = set()
        for z, queues in enumerate(self.txq):
            for vc in range(self.active_vcs):
                queue = queues[vc]
                if not queue:
                    continue
                pkt, seq = queue[0]
                dest_z = int(fabric._pkt_dest_z[pkt])
                me = (z, vc)
                owner = self.vc_owner[(dest_z, vc)]
                if seq == 0:
                    if owner is not None and owner != me:
                        continue
                elif owner != me:
                    continue
                if self.rx_credits[dest_z][vc] <= 0:
                    continue
                active.add(me)
        granted = self.arbiter.grant(active, cycle)
        if granted is None:
            return
        z, vc = granted
        pkt, seq = self.txq[z][vc].popleft()
        self.occupancy -= 1
        fabric._pillar_occ -= 1
        # TX credit back to the source router's VERTICAL output port,
        # visible next cycle (the object transceiver's CreditPipeline).
        out = (self.routers[z] * _NUM_PORTS + _VERTICAL) * self.num_vcs + vc
        fabric._stage_out_scalar.append(out)
        dest_z = int(fabric._pkt_dest_z[pkt])
        self.rx_credits[dest_z][vc] -= 1
        if seq == 0:
            self.vc_owner[(dest_z, vc)] = (z, vc)
        if seq == int(fabric._pkt_last[pkt]):
            self.vc_owner[(dest_z, vc)] = None
        self.transfers += 1
        fabric.bus_transfers += 1
        flat_in = (
            self.routers[dest_z] * _NUM_PORTS + _VERTICAL
        ) * self.num_vcs + vc
        rx_out.append((flat_in, pkt, seq))


class VectorFabric(ClockedComponent):
    """One batched component advancing every router/link/NIC per cycle.

    All state lives in flat numpy arrays; ``advance`` runs six bulk
    phases in an order that reproduces the object fabrics' two-phase
    timing (see DESIGN.md "Vector fabric" for the cycle-by-cycle
    correspondence):

    1. apply credits staged last cycle (the CreditPipeline delay),
    2. pillar bus slots (which see TX queues as of end of last cycle),
    3. mesh arbitration + commit over every occupied input VC at once,
    4. link-stage delivery of flits sent ``link_latency - 1`` cycles ago,
    5. NIC injection (VC acquisition then one flit per node), and
    6. pillar RX deposits (arbitrated next cycle).
    """

    def __init__(
        self,
        network: "Network",
        config: "NetworkConfig",
        engine: Engine,
        stats: StatsRegistry,
    ):
        self.network = network
        self.config = config
        self.engine = engine
        self.stats = stats
        self._on_packet: Callable[["Packet"], None] = network._on_packet

        width, height, layers = config.width, config.height, config.layers
        self._n2d = width * height
        num_routers = self._R = self._n2d * layers
        ports = self._P = _NUM_PORTS
        vcs = self._V = config.num_vcs
        depth = self._D = config.vc_depth
        self._PV = ports * vcs
        self._width = width

        self._route2d = compute_route_table(width, height).astype(np.int64)

        # --- input buffers: per-(router, port, vc) ring buffers ---------
        size = num_routers * ports * vcs
        self._buf_pkt = np.full(size * depth, -1, np.int64)
        self._buf_seq = np.zeros(size * depth, np.int64)
        self._buf_head = np.zeros(size, np.int64)
        self._buf_cnt = np.zeros(size, np.int64)
        # Incremental occupied set: every flat index with buf_cnt > 0 is
        # in ``_occ`` (sorted) or staged in ``_occ_new``/``_occ_new_scalar``
        # (appended on deposit, merged and pruned by _compact_occupied at
        # the top of each mesh step).  ``_in_occ[i]`` means "i is already
        # somewhere in the set", so deposits append each index at most
        # once.  This keeps the per-cycle mesh cost proportional to the
        # live traffic instead of the mesh size (see DESIGN.md
        # "Occupancy-adaptive vector advance").
        self._occ = np.empty(0, np.int64)
        self._occ_new: list = []          # staged index arrays
        self._occ_new_scalar: list = []   # staged scalar indexes
        self._in_occ = np.zeros(size, bool)
        # Dense mode: above ~1/8 mesh occupancy the incremental
        # bookkeeping (membership gathers on every deposit, sorted-merge
        # compaction) costs more than the full contiguous rescan it
        # avoids.  While the flag is set deposits skip membership
        # maintenance entirely and _compact_occupied rescans; membership
        # is rebuilt once on the dense->sparse transition.
        self._occ_dense = False
        self._sparse_threshold = config.sparse_threshold
        # Switch/VC allocation held by the in-transit packet (the object
        # InputVC's route_port / out_vc), -1 when unallocated.  int64 so
        # the per-cycle gathers need no widening conversion.
        self._in_route = np.full(size, -1, np.int64)
        self._in_outvc = np.full(size, -1, np.int64)
        # Whether the packet at the front of each VC still needs its
        # vertical hop (set with the route, read by the VC-class
        # partition of NetworkConfig.vc_split).
        self._in_cross = np.zeros(size, bool)
        self._vc_split = config.vc_split
        # Derived per-buffer state maintained alongside the route so the
        # eligibility pass is pure gathers: the flat output (router, port)
        # and the VC-pick table key (class/preferred already folded in).
        self._in_outrp = np.zeros(size, np.int64)
        self._in_key = np.zeros(size, np.int64)

        # --- output ports: downstream credits + VC-busy ----------------
        self._out_credits = np.zeros(size, np.int64)
        self._out_busy = np.zeros(size, bool)

        # --- topology ---------------------------------------------------
        self._link_dest = np.full((num_routers, ports), -1, np.int64)
        self._opposite = np.zeros(ports, np.int64)
        for port, opp in OPPOSITE_PORT.items():
            self._opposite[PORT_INDEX[port]] = PORT_INDEX[opp]
        idx = np.arange(num_routers)
        x = idx % width
        y = (idx // width) % height
        east, west = x + 1 < width, x > 0
        north, south = y + 1 < height, y > 0
        self._link_dest[east, PORT_INDEX[Port.EAST]] = idx[east] + 1
        self._link_dest[west, PORT_INDEX[Port.WEST]] = idx[west] - 1
        self._link_dest[north, PORT_INDEX[Port.NORTH]] = idx[north] + width
        self._link_dest[south, PORT_INDEX[Port.SOUTH]] = idx[south] - width
        credits_3d = self._out_credits.reshape(num_routers, ports, vcs)
        for port_index in (
            PORT_INDEX[Port.EAST],
            PORT_INDEX[Port.WEST],
            PORT_INDEX[Port.NORTH],
            PORT_INDEX[Port.SOUTH],
        ):
            has = self._link_dest[:, port_index] >= 0
            credits_3d[has, port_index, :] = depth
        credits_3d[:, _LOCAL, :] = _EJECT_CREDITS

        # --- pillars ----------------------------------------------------
        self._pillars: list[_VectorPillar] = []
        self._pillar_at: dict[int, tuple[_VectorPillar, int]] = {}
        if layers > 1:
            for px, py in config.pillar_locations:
                routers = [
                    z * self._n2d + py * width + px for z in range(layers)
                ]
                pillar = _VectorPillar(
                    (self), (px, py), routers, vcs, depth,
                    active_vcs=self._vc_split,
                )
                self._pillars.append(pillar)
                for z, router in enumerate(routers):
                    self._pillar_at[router] = (pillar, z)
                    credits_3d[router, _VERTICAL, :] = depth

        # --- NICs -------------------------------------------------------
        self._nic_credits = np.full(num_routers * vcs, depth, np.int64)
        self._nic_credits_2d = self._nic_credits.reshape(num_routers, vcs)
        self._nic_busy = np.zeros((num_routers, vcs), bool)
        self._nic_busy_flat = self._nic_busy.reshape(-1)
        self._inj_pkt = np.full(num_routers, -1, np.int64)
        self._inj_seq = np.zeros(num_routers, np.int64)
        self._inj_vc = np.zeros(num_routers, np.int64)
        self._inj_queues: list[deque] = [deque() for _ in range(num_routers)]
        self._queue_len = np.zeros(num_routers, np.int64)
        self._inj_pending = 0
        # Active-NIC set, same lazy scheme as the occupied set: a router
        # enters on inject and leaves (at compaction) once its queue is
        # empty and no injection is mid-flight.
        self._nic_act = np.empty(0, np.int64)
        self._nic_act_new: list[int] = []
        self._nic_in_act = np.zeros(num_routers, bool)
        self._nic_dense = False

        # --- link stage: one batch per cycle in flight ------------------
        self._stage_depth = max(0, config.link_latency - 1)
        self._link_stage: deque = deque([None] * self._stage_depth)
        self._links_in_flight = 0

        # --- credit staging (applied at the top of the next advance) ----
        self._stage_out: list = []   # flat (router, port, vc) output idx
        self._stage_out_scalar: list = []  # same, scalar ints (pillar TX)
        self._stage_nic: list = []   # flat (router, vc) NIC credit idx
        self._stage_rx: list = []    # (pillar, layer, vc) triples

        # --- packet side table ------------------------------------------
        # Pure SoA: destination, pillar, length, and lifecycle cycles per
        # packet index.  ``Network.send`` packets additionally carry a
        # Python ``Packet`` in ``_pkt_obj`` (callers hold a reference to
        # it); the batched injection path registers rows only, so the
        # saturation benchmark never touches a per-packet object.
        capacity = 1024
        self._pkt_dest_xy = np.zeros(capacity, np.int64)
        self._pkt_dest_z = np.zeros(capacity, np.int64)
        self._pkt_pillar_xy = np.full(capacity, -1, np.int64)
        self._pkt_last = np.zeros(capacity, np.int64)
        self._pkt_created = np.zeros(capacity, np.int64)
        self._pkt_done = np.zeros(capacity, bool)
        self._pkt_n = 0
        self._pkt_obj: dict[int, "Packet"] = {}
        self._pillar_flat = np.array(
            [py * width + px for px, py in config.pillar_locations],
            np.int64,
        )
        # In-flight age accounting: packet indexes are issued in creation
        # order, so the oldest live packet is found by advancing a cursor
        # over the done flags (amortized O(1) per packet).
        self._done_count = 0
        self._oldest_alive = 0
        self._inflight_created_sum = 0

        self._total_buffered = 0
        self._pillar_occ = 0
        self.flits_forwarded = 0
        self.bus_transfers = 0
        scope = stats.scope("nic")
        self._injected = scope.counter("packets_injected")
        self._received = scope.counter("packets_received")
        self._latency_hist = scope.histogram("packet_latency")
        # Per-mesh-cycle occupancy observability (drives the scalar/
        # batched threshold choice): candidate lanes after compaction and
        # lanes actually advanced.  Means are exact; bucket widths only
        # bound the distribution resolution on big meshes.
        vec_scope = stats.scope("noc.vector")
        self._occ_hist = vec_scope.histogram(
            "occupied_vcs", bucket_width=8.0
        )
        self._lanes_hist = vec_scope.histogram("active_lanes")
        # Occupancy trace probe: NULL_TRACER by default (guard-on-bool,
        # zero cost); attach_tracer installs a live one.
        self._tracer: Tracer = NULL_TRACER
        self._trace_track = 0
        self._scratch = np.full(num_routers * ports, _PRIO_MAX, np.int64)
        # Constant decompositions of the flat (router, port, vc) index,
        # gathered instead of recomputed on the hot path, plus one
        # priority table per arbitration rotation: row ``off`` holds
        # ((in_port + off) % ports) * vcs + in_vc for every buffer.
        idx = np.arange(size, dtype=np.int64)
        self._router_of = idx // self._PV
        self._in_port_of = (idx // vcs) % ports
        self._in_vc_of = idx % vcs
        self._in_rp_of = idx // vcs
        self._rp_base = self._router_of * ports
        self._prio_table = np.stack(
            [
                ((self._in_port_of + off) % ports) * vcs + self._in_vc_of
                for off in range(ports)
            ]
        )
        # Output-VC allocation as one table lookup.  A fresh head's chosen
        # VC depends only on (its class, its input VC, which output VCs
        # are free), so precompute the rotating first-free scan — the
        # object free_vc(preferred, lo, hi) — for every combination:
        # row key ((class * vcs + preferred) << vcs) | free_bitmask,
        # value the chosen VC or -1 when the class window has none free.
        # Doubles as the eligibility check (pick >= 0).
        split = self._vc_split
        pick = np.full((2, vcs, 1 << vcs), -1, np.int64)
        for cls in range(2):
            if split:
                lo, hi = (0, split) if cls else (split, vcs)
            else:
                lo, hi = 0, vcs
            span = hi - lo
            for pref in range(vcs):
                for mask in range(1 << vcs):
                    vc = lo + pref % span
                    for _ in range(span):
                        if mask >> vc & 1:
                            pick[cls, pref, mask] = vc
                            break
                        vc += 1
                        if vc == hi:
                            vc = lo
        self._vc_pick = pick.reshape(-1)
        self._vc_bits = 1 << np.arange(vcs, dtype=np.int64)
        self._vc_iota = np.arange(vcs, dtype=np.int64)
        # key = keybase[flat] + cross * cross_term + bits[out_rp]
        self._keybase = self._in_vc_of << vcs
        self._cross_term = vcs << vcs
        # Fresh-head routing looks up layer/xy by flat index.
        self._layer_of = self._router_of // self._n2d
        self._xy_of = self._router_of % self._n2d
        # Credit-return plumbing per input buffer is topology, so bake it:
        # kind 0 = mesh (return to the upstream router's output port),
        # 1 = NIC (return to the local injection interface), 2 = pillar
        # RX (return through the bus's staged rx_credits).
        self._ret_kind = np.zeros(size, np.int64)
        self._ret_kind[self._in_port_of == _LOCAL] = 1
        self._ret_kind[self._in_port_of == _VERTICAL] = 2
        self._ret_idx = np.zeros(size, np.int64)
        for flat in range(size):
            router = int(self._router_of[flat])
            port = int(self._in_port_of[flat])
            in_vc = int(self._in_vc_of[flat])
            if port == _LOCAL:
                self._ret_idx[flat] = router * vcs + in_vc
            elif port != _VERTICAL:
                up = int(self._link_dest[router, port])
                if up >= 0:
                    self._ret_idx[flat] = (
                        up * ports + int(self._opposite[port])
                    ) * vcs + in_vc
        # Downstream deposit base per (router, port): add the output VC
        # to get the neighbour's flat input-buffer index.
        self._dest_in_base = np.zeros(num_routers * ports, np.int64)
        for rp in range(num_routers * ports):
            router, port = rp // ports, rp % ports
            down = int(self._link_dest[router, port])
            if down >= 0:
                self._dest_in_base[rp] = (
                    down * ports + int(self._opposite[port])
                ) * vcs

    def attach_tracer(self, tracer: Tracer) -> None:
        """Install the aggregate occupancy trace probe.

        ``Network`` refuses enabled tracers for the vector fabric (there
        are no per-router probe points), so this is the one trace hook
        the batched fabric offers: one ``vector_occupancy`` event per
        mesh cycle, guarded on ``tracer.enabled`` like every probe site.
        """
        self._tracer = tracer
        self._trace_track = tracer.track("noc.vector")

    # -- component protocol --------------------------------------------------

    def is_idle(self) -> bool:
        return (
            self._total_buffered == 0
            and self._links_in_flight == 0
            and self._pillar_occ == 0
            and self._inj_pending == 0
            and not self._stage_out
            and not self._stage_out_scalar
            and not self._stage_nic
            and not self._stage_rx
        )

    def evaluate(self, cycle: int) -> None:
        pass

    def advance(self, cycle: int) -> None:
        self._apply_staged_credits()
        rx_deposits: list = []
        if self._pillar_occ:
            for pillar in self._pillars:
                if pillar.occupancy:
                    pillar.step(cycle, rx_deposits)
        batch = self._mesh_step(cycle) if self._total_buffered else None
        if self._stage_depth:
            due = self._link_stage.popleft()
            self._link_stage.append(batch)
            if batch is not None:
                self._links_in_flight += len(batch[0])
            if due is not None:
                self._links_in_flight -= len(due[0])
                self._deposit(*due)
        if self._inj_pending:
            self._nic_step(cycle)
        for flat_in, pkt, seq in rx_deposits:
            self._deposit_one(flat_in, pkt, seq)

    # -- injection boundary ---------------------------------------------------

    def inject(self, packet: "Packet") -> None:
        cycle = self.engine.cycle
        packet.created_cycle = cycle
        pkt_index = self._pkt_n
        self._ensure_packet_capacity(pkt_index + 1)
        dest = packet.dest
        self._pkt_dest_xy[pkt_index] = dest.y * self._width + dest.x
        self._pkt_dest_z[pkt_index] = dest.z
        if packet.pillar_xy is not None:
            px, py = packet.pillar_xy
            self._pkt_pillar_xy[pkt_index] = py * self._width + px
        else:
            self._pkt_pillar_xy[pkt_index] = -1
        self._pkt_last[pkt_index] = packet.size_flits - 1
        self._pkt_created[pkt_index] = cycle
        self._pkt_done[pkt_index] = False
        self._pkt_n = pkt_index + 1
        self._pkt_obj[pkt_index] = packet
        self._inflight_created_sum += cycle
        src = packet.src
        router = src.z * self._n2d + src.y * self._width + src.x
        self._inj_queues[router].append(pkt_index)
        self._queue_len[router] += 1
        self._inj_pending += 1
        if not self._nic_dense and not self._nic_in_act[router]:
            self._nic_in_act[router] = True
            self._nic_act_new.append(router)
        self.wake()

    def inject_batch(self, src, dest, size_flits: int) -> int:
        """Register a batch of object-free packets, one row per index.

        ``src``/``dest`` are flat router indexes (the ``coords()``
        order); callers guarantee ``src != dest`` elementwise and that no
        packet callbacks need a ``Packet`` object.  Destinations,
        pillars, and timestamps are filled with array ops; the only
        per-packet Python work left is one deque append at the source
        NIC.
        """
        cycle = self.engine.cycle
        count = int(src.size)
        if count == 0:
            return 0
        start = self._pkt_n
        self._ensure_packet_capacity(start + count)
        stop = start + count
        n2d = self._n2d
        dest_xy = dest % n2d
        dest_z = dest // n2d
        self._pkt_dest_xy[start:stop] = dest_xy
        self._pkt_dest_z[start:stop] = dest_z
        cross = (src // n2d) != dest_z
        # Packet rows are written exactly once and the side tables are
        # allocated (and grown) filled with -1, so only the cross-layer
        # rows need a pillar assignment.
        if cross.any():
            choice = self.network._pillar_choice[
                src[cross] % n2d, dest_xy[cross]
            ]
            self._pkt_pillar_xy[start:stop][cross] = self._pillar_flat[choice]
        self._pkt_last[start:stop] = size_flits - 1
        self._pkt_created[start:stop] = cycle
        self._pkt_n = stop
        self._inflight_created_sum += cycle * count
        queues = self._inj_queues
        pid = start
        for router in src.tolist():
            queues[router].append(pid)
            pid += 1
        np.add.at(self._queue_len, src, 1)
        self._inj_pending += count
        if not self._nic_dense:
            fresh = np.unique(src)
            fresh = fresh[~self._nic_in_act[fresh]]
            if fresh.size:
                self._nic_in_act[fresh] = True
                self._nic_act_new.extend(fresh.tolist())
        self.wake()
        return count

    def _ensure_packet_capacity(self, needed: int) -> None:
        capacity = len(self._pkt_dest_xy)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in (
            "_pkt_dest_xy", "_pkt_dest_z", "_pkt_pillar_xy",
            "_pkt_last", "_pkt_created",
        ):
            old = getattr(self, name)
            new = np.full(capacity, -1, np.int64)
            new[: len(old)] = old
            setattr(self, name, new)
        done = np.zeros(capacity, bool)
        done[: len(self._pkt_done)] = self._pkt_done
        self._pkt_done = done

    # -- per-cycle phases -----------------------------------------------------

    def _apply_staged_credits(self) -> None:
        if self._stage_out:
            for indexes in self._stage_out:
                np.add.at(self._out_credits, indexes, 1)
            self._stage_out.clear()
        if self._stage_out_scalar:
            np.add.at(self._out_credits, self._stage_out_scalar, 1)
            self._stage_out_scalar.clear()
        if self._stage_nic:
            for indexes in self._stage_nic:
                np.add.at(self._nic_credits, indexes, 1)
            self._stage_nic.clear()
        if self._stage_rx:
            for pillar, layer, vc in self._stage_rx:
                pillar.rx_credits[layer][vc] += 1
            self._stage_rx.clear()

    def _compact_occupied(self):
        """Fold staged deposits into the sorted occupied set, drop drained.

        Returns exactly ``np.flatnonzero(self._buf_cnt)``: the staged
        appends cover every deposit since the last call, and an index
        leaves the set only here, once its buffer count is zero.  Keeping
        the set sorted makes the candidate order — and therefore
        arbitration, staging, and ejection order — identical to the full
        scan it replaces.
        """
        if self._occ_dense:
            occ = np.flatnonzero(self._buf_cnt)
            if occ.size * 8 < self._in_occ.size:
                # Leaving dense mode: deposits skipped membership while
                # it was set, so rebuild it before incremental staging
                # resumes.
                self._in_occ[:] = False
                self._in_occ[occ] = True
                self._occ_dense = False
            self._occ = occ
            return occ
        occ = self._occ
        new, new_scalar = self._occ_new, self._occ_new_scalar
        staged = len(new_scalar)
        for arr in new:
            staged += len(arr)
        # Above ~1/8 mesh occupancy a full contiguous rescan beats the
        # fancy-index merge (sort + insert reallocates O(occupied) every
        # cycle); the incremental path is for the sparse regime it
        # exists to serve.  Entering dense mode also turns off the
        # per-deposit membership bookkeeping until occupancy falls back.
        if (occ.size + staged) * 8 >= self._in_occ.size:
            new.clear()
            new_scalar.clear()
            occ = np.flatnonzero(self._buf_cnt)
            self._occ_dense = True
            self._occ = occ
            return occ
        if staged:
            if new_scalar:
                new.append(np.array(new_scalar, np.int64))
                new_scalar.clear()
            add = new[0] if len(new) == 1 else np.concatenate(new)
            new.clear()
            add.sort()
            occ = np.insert(occ, np.searchsorted(occ, add), add)
        if occ.size:
            live = self._buf_cnt[occ] > 0
            if not live.all():
                self._in_occ[occ[~live]] = False
                occ = occ[live]
        self._occ = occ
        return occ

    def occupied_lanes(self):
        """The exact occupied (router, port, vc) index set, sorted."""
        return self._compact_occupied()

    def _mesh_step(self, cycle: int):
        ports, vcs, depth = self._P, self._V, self._D
        cand = self._compact_occupied()
        self._occ_hist.add(cand.size)
        if cand.size <= self._sparse_threshold:
            return self._mesh_step_sparse(cycle, cand)
        route = self._in_route[cand]

        # Route computation for fresh heads (the object router memoizes
        # per destination; here it is one table gather).  Only the flits
        # that arrived since last cycle are unrouted.
        unrouted = route < 0
        if unrouted.any():
            fresh = cand[unrouted]
            pkt_n = self._buf_pkt[fresh * depth + self._buf_head[fresh]]
            same = self._layer_of[fresh] == self._pkt_dest_z[pkt_n]
            target = np.where(
                same, self._pkt_dest_xy[pkt_n], self._pkt_pillar_xy[pkt_n]
            )
            port_pick = self._route2d[self._xy_of[fresh], target]
            port_pick = np.where(
                ~same & (port_pick == _LOCAL), _VERTICAL, port_pick
            )
            self._in_route[fresh] = port_pick
            cross = ~same
            self._in_cross[fresh] = cross
            self._in_outrp[fresh] = self._rp_base[fresh] + port_pick
            self._in_key[fresh] = (
                self._keybase[fresh] + cross * self._cross_term
            )
            route[unrouted] = port_pick

        # Eligibility before any flit gathers: a buffer front is a head
        # iff its VC holds no output-VC allocation, so occupancy, route,
        # and the credit/busy arrays decide everything.  At saturation
        # this drops thousands of blocked VCs before the expensive part.
        # Fresh heads get their output VC straight from the precomputed
        # first-free table (class-windowed, rotated by input VC); the
        # lookup result doubles as the eligibility bit (pick >= 0).
        out_vc = self._in_outvc[cand]
        has_vc = out_vc >= 0
        out_rp = self._in_outrp[cand]
        # Free-VC bitmasks: gather per candidate output port when sparse
        # (occupancy-proportional), build the full-mesh mask with cheap
        # contiguous ops when the mesh is loaded — the (cand, vcs) fancy
        # gather overtakes the flat build past ~1/8 occupancy (the same
        # crossover as dense mode, measured on 4k-lane meshes).
        if cand.size * 8 >= self._in_occ.size:
            free = (~self._out_busy) & (self._out_credits > 0)
            bits = (free.view(np.uint8).reshape(-1, vcs) @ self._vc_bits)[
                out_rp
            ]
        else:
            vc_cols = out_rp[:, None] * vcs + self._vc_iota
            free = (~self._out_busy[vc_cols]) & (
                self._out_credits[vc_cols] > 0
            )
            bits = free.view(np.uint8) @ self._vc_bits
        pick = self._vc_pick[self._in_key[cand] + bits]
        # out_vc is -1 on fresh heads; the wrapped gather lands on a live
        # counter whose value is discarded by the ``where`` mask.
        eligible = np.where(
            has_vc,
            self._out_credits[out_rp * vcs + out_vc] > 0,
            pick >= 0,
        )
        sel = np.flatnonzero(eligible)
        if sel.size == 0:
            self._lanes_hist.add(0)
            if self._tracer.enabled:
                self._tracer.vector_occupancy(
                    cycle, self._trace_track, cand.size, 0
                )
            return None

        # Arbitration carries flat buffer indices only; per-flit state is
        # regathered for the (small) winner set afterwards.  Priority:
        # the port order rotates with the cycle, VCs keep fixed ascending
        # priority within a port — mirroring the object router's rotated
        # input-port scan (whose rotation runs over per-router port
        # insertion order instead; see DESIGN.md for why the two are
        # distribution-level equivalent).
        flat = cand[sel]
        out_rp = out_rp[sel]
        pick = pick[sel]
        prio = self._prio_table[(cycle + 1) % ports][flat]
        # Stage 1: one winner per output port (the switch).
        scratch = self._scratch
        scratch[out_rp] = _PRIO_MAX
        np.minimum.at(scratch, out_rp, prio)
        keep = scratch[out_rp] == prio
        flat, prio, pick = flat[keep], prio[keep], pick[keep]
        # Stage 2: one flit per input port per cycle.
        in_rp = self._in_rp_of[flat]
        scratch[in_rp] = _PRIO_MAX
        np.minimum.at(scratch, in_rp, prio)
        keep = scratch[in_rp] == prio
        win = flat[keep]
        pick = pick[keep]
        count = win.size
        self._lanes_hist.add(count)
        if self._tracer.enabled:
            self._tracer.vector_occupancy(
                cycle, self._trace_track, cand.size, count
            )

        # Winners only from here on: gather the actual flits.  The table
        # pick carried through arbitration is each fresh head's allocated
        # output VC (stage 1 guarantees one winner per output port, so no
        # two fresh heads claim the same VC).
        cand = win
        route = self._in_route[win]
        out_vc = self._in_outvc[win]
        has_vc = out_vc >= 0
        router = self._router_of[win]
        in_vc = self._in_vc_of[win]
        out_rp = self._in_outrp[win]
        head = self._buf_head[win]
        slot = win * depth + head
        pkt = self._buf_pkt[slot]
        seq = self._buf_seq[slot]
        out_vc = np.where(has_vc, out_vc, pick)

        # Commit: pop from input rings, spend credit, toggle VC-busy.
        self._buf_head[cand] = (head + 1) % depth
        self._buf_cnt[cand] -= 1
        self._total_buffered -= count
        self.flits_forwarded += count
        is_tail = seq == self._pkt_last[pkt]
        is_head = seq == 0
        out_fv = out_rp * vcs + out_vc
        self._out_credits[out_fv] -= 1
        toggled = is_head | is_tail
        if toggled.any():
            self._out_busy[out_fv[toggled]] = (is_head & ~is_tail)[toggled]
        self._in_outvc[cand] = np.where(is_tail, -1, out_vc)
        if is_tail.any():
            self._in_route[cand[is_tail]] = -1

        # Stage the freed-slot credit back to whatever feeds this input
        # (the return index per buffer is topology, precomputed).
        ret_kind = self._ret_kind[win]
        ret_idx = self._ret_idx[win]
        mesh_in = ret_kind == 0
        if mesh_in.any():
            self._stage_out.append(ret_idx[mesh_in])
        nic_in = ret_kind == 1
        if nic_in.any():
            self._stage_nic.append(ret_idx[nic_in])
        for i in np.flatnonzero(ret_kind == 2):
            pillar, layer = self._pillar_at[int(router[i])]
            self._stage_rx.append((pillar, layer, int(in_vc[i])))

        # Dispatch by output port kind.
        local_out = route == _LOCAL
        vert_out = route == _VERTICAL
        mesh_out = ~(local_out | vert_out)
        batch = None
        if mesh_out.any():
            flat_in = self._dest_in_base[out_rp[mesh_out]] + out_vc[mesh_out]
            if self._stage_depth == 0:
                self._deposit(flat_in, pkt[mesh_out], seq[mesh_out])
            else:
                batch = (flat_in, pkt[mesh_out], seq[mesh_out])
        for i in np.flatnonzero(vert_out):
            pillar, layer = self._pillar_at[int(router[i])]
            pillar.tx_push(layer, int(out_vc[i]), int(pkt[i]), int(seq[i]))
        done = pkt[local_out & is_tail]
        if done.size:
            self._finish_batch(done, cycle)
        return batch

    def _mesh_step_sparse(self, cycle: int, cand):
        """Per-flit mesh step for occupancies at or below the threshold.

        Scalar Python over the handful of occupied lanes beats the fixed
        overhead of the batched array pipeline.  Outcomes are identical
        to the batched path: arbitration priorities are unique within
        every output-port and input-port group (distinct (port, vc) of
        one router), so the dict-min selections below reproduce the
        ``np.minimum.at`` winners exactly, and winners commit in
        ascending flat order — the batched commit order.
        """
        ports, vcs, depth = self._P, self._V, self._D
        in_route = self._in_route
        out_credits = self._out_credits
        offset = (cycle + 1) % ports
        by_out: dict = {}
        for flat in cand.tolist():
            route = int(in_route[flat])
            if route < 0:
                head = int(self._buf_head[flat])
                pkt = int(self._buf_pkt[flat * depth + head])
                same = int(self._layer_of[flat]) == int(self._pkt_dest_z[pkt])
                target = (
                    int(self._pkt_dest_xy[pkt])
                    if same
                    else int(self._pkt_pillar_xy[pkt])
                )
                route = int(self._route2d[self._xy_of[flat], target])
                if not same and route == _LOCAL:
                    route = _VERTICAL
                in_route[flat] = route
                self._in_cross[flat] = not same
                self._in_outrp[flat] = int(self._rp_base[flat]) + route
                self._in_key[flat] = int(self._keybase[flat]) + (
                    0 if same else self._cross_term
                )
            out_rp = int(self._in_outrp[flat])
            out_vc = int(self._in_outvc[flat])
            if out_vc >= 0:
                if int(out_credits[out_rp * vcs + out_vc]) <= 0:
                    continue
            else:
                mask = 0
                base = out_rp * vcs
                for vc in range(vcs):
                    if (
                        not self._out_busy[base + vc]
                        and out_credits[base + vc] > 0
                    ):
                        mask |= 1 << vc
                out_vc = int(self._vc_pick[int(self._in_key[flat]) + mask])
                if out_vc < 0:
                    continue
            in_port = (flat // vcs) % ports
            prio = ((in_port + offset) % ports) * vcs + flat % vcs
            best = by_out.get(out_rp)
            if best is None or prio < best[0]:
                by_out[out_rp] = (prio, flat, out_vc)
        if not by_out:
            self._lanes_hist.add(0)
            if self._tracer.enabled:
                self._tracer.vector_occupancy(
                    cycle, self._trace_track, cand.size, 0
                )
            return None
        by_in: dict = {}
        for prio, flat, out_vc in by_out.values():
            in_rp = flat // vcs
            best = by_in.get(in_rp)
            if best is None or prio < best[0]:
                by_in[in_rp] = (prio, flat, out_vc)
        winners = sorted(
            (flat, out_vc) for __, flat, out_vc in by_in.values()
        )
        self._lanes_hist.add(len(winners))
        if self._tracer.enabled:
            self._tracer.vector_occupancy(
                cycle, self._trace_track, cand.size, len(winners)
            )
        batch_in: list[int] = []
        batch_pkt: list[int] = []
        batch_seq: list[int] = []
        for flat, out_vc in winners:
            head = int(self._buf_head[flat])
            slot = flat * depth + head
            pkt = int(self._buf_pkt[slot])
            seq = int(self._buf_seq[slot])
            route = int(in_route[flat])
            out_rp = int(self._in_outrp[flat])
            self._buf_head[flat] = (head + 1) % depth
            self._buf_cnt[flat] -= 1
            self._total_buffered -= 1
            self.flits_forwarded += 1
            is_tail = seq == int(self._pkt_last[pkt])
            is_head = seq == 0
            out_fv = out_rp * vcs + out_vc
            out_credits[out_fv] -= 1
            if is_head or is_tail:
                self._out_busy[out_fv] = is_head and not is_tail
            self._in_outvc[flat] = -1 if is_tail else out_vc
            if is_tail:
                in_route[flat] = -1
            kind = int(self._ret_kind[flat])
            if kind == 0:
                self._stage_out_scalar.append(int(self._ret_idx[flat]))
            elif kind == 1:
                self._stage_nic.append(int(self._ret_idx[flat]))
            else:
                pillar, layer = self._pillar_at[flat // self._PV]
                self._stage_rx.append((pillar, layer, flat % vcs))
            if route == _LOCAL:
                if is_tail:
                    self._finish(pkt, cycle)
            elif route == _VERTICAL:
                pillar, layer = self._pillar_at[flat // self._PV]
                pillar.tx_push(layer, out_vc, pkt, seq)
            else:
                flat_in = int(self._dest_in_base[out_rp]) + out_vc
                if self._stage_depth == 0:
                    self._deposit_one(flat_in, pkt, seq)
                else:
                    batch_in.append(flat_in)
                    batch_pkt.append(pkt)
                    batch_seq.append(seq)
        if batch_in:
            return (
                np.array(batch_in, np.int64),
                np.array(batch_pkt, np.int64),
                np.array(batch_seq, np.int64),
            )
        return None

    def _nic_step(self, cycle: int) -> None:
        # Compact the active-NIC set (same lazy scheme as the occupied
        # set): fold in routers that received injections, drop routers
        # with nothing queued and nothing mid-flight.
        if self._nic_dense:
            act = np.flatnonzero(
                (self._queue_len > 0) | (self._inj_pkt >= 0)
            )
            if act.size * 8 < self._nic_in_act.size:
                self._nic_in_act[:] = False
                self._nic_in_act[act] = True
                self._nic_dense = False
            self._nic_act = act
        elif (
            (self._nic_act.size + len(self._nic_act_new)) * 8
            >= self._nic_in_act.size
        ):
            # Loaded regime: a full rescan is two contiguous masks, and
            # dense mode turns off per-injection membership bookkeeping
            # until the active set shrinks back.
            self._nic_act_new.clear()
            act = np.flatnonzero(
                (self._queue_len > 0) | (self._inj_pkt >= 0)
            )
            self._nic_dense = True
            self._nic_act = act
        else:
            act = self._nic_act
            new = self._nic_act_new
            if new:
                add = np.array(new, np.int64)
                new.clear()
                add.sort()
                act = np.insert(act, np.searchsorted(act, add), add)
            if act.size:
                live = (self._queue_len[act] > 0) | (self._inj_pkt[act] >= 0)
                if not live.all():
                    self._nic_in_act[act[~live]] = False
                    act = act[live]
            self._nic_act = act
        if act.size == 0:
            return
        if act.size <= self._sparse_threshold:
            self._nic_step_sparse(cycle, act)
            return
        # Phase A: idle NICs with queued packets try to acquire an output
        # VC (first free in ascending order, the object free_vc()).
        acquire = act[(self._inj_pkt[act] < 0) & (self._queue_len[act] > 0)]
        if acquire.size:
            free = (~self._nic_busy[acquire]) & (
                self._nic_credits_2d[acquire] > 0
            )
            first = free.argmax(1)
            # argmax is 0 on an all-False row, so "the first free VC is
            # actually free" is exactly "the row has any free VC".
            starts = np.flatnonzero(free.any(1))
            queues = self._inj_queues
            lookup = self._pkt_obj.get if self._pkt_obj else None
            for k in starts.tolist():
                router = int(acquire[k])
                pkt_index = queues[router].popleft()
                self._queue_len[router] -= 1
                self._inj_pkt[router] = pkt_index
                self._inj_seq[router] = 0
                self._inj_vc[router] = first[k]
                if lookup is not None:
                    packet = lookup(pkt_index)
                    if packet is not None:
                        packet.injected_cycle = cycle
            if starts.size:
                self._injected.increment(starts.size)
        # Phase B: every mid-injection NIC sends one flit if it has a
        # credit on its acquired VC.
        active = act[self._inj_pkt[act] >= 0]
        if active.size == 0:
            return
        vc = self._inj_vc[active]
        nidx = active * self._V + vc
        can = self._nic_credits[nidx] > 0
        sender = active[can]
        if sender.size == 0:
            return
        vc = vc[can]
        nidx = nidx[can]
        pkt = self._inj_pkt[sender]
        seq = self._inj_seq[sender]
        flat_in = sender * self._PV + (_LOCAL * self._V) + vc
        self._deposit(flat_in, pkt, seq)
        self._nic_credits[nidx] -= 1
        is_head = seq == 0
        is_tail = seq == self._pkt_last[pkt]
        toggled = is_head | is_tail
        if toggled.any():
            self._nic_busy_flat[nidx[toggled]] = (is_head & ~is_tail)[toggled]
        self._inj_seq[sender] += 1
        done = np.flatnonzero(is_tail)
        if done.size:
            self._inj_pkt[sender[done]] = -1
            self._inj_pending -= done.size

    def _nic_step_sparse(self, cycle: int, act) -> None:
        """Scalar NIC phases for a handful of active routers.

        Per-router state is independent, so fusing phase A (VC
        acquisition) and phase B (send one flit) into one pass per router
        is exactly the batched two-phase result — the batched phase B
        already sees phase A's acquisitions in the same cycle.
        """
        vcs = self._V
        credits = self._nic_credits
        busy = self._nic_busy_flat
        for router in act.tolist():
            if self._inj_pkt[router] < 0:
                if self._queue_len[router] <= 0:
                    continue
                row = router * vcs
                for vc in range(vcs):
                    if not busy[row + vc] and credits[row + vc] > 0:
                        pkt_index = self._inj_queues[router].popleft()
                        self._queue_len[router] -= 1
                        self._inj_pkt[router] = pkt_index
                        self._inj_seq[router] = 0
                        self._inj_vc[router] = vc
                        self._injected.increment()
                        if self._pkt_obj:
                            packet = self._pkt_obj.get(pkt_index)
                            if packet is not None:
                                packet.injected_cycle = cycle
                        break
                else:
                    continue
            pkt = int(self._inj_pkt[router])
            vc = int(self._inj_vc[router])
            nidx = router * vcs + vc
            if credits[nidx] <= 0:
                continue
            seq = int(self._inj_seq[router])
            self._deposit_one(router * self._PV + _LOCAL * vcs + vc, pkt, seq)
            credits[nidx] -= 1
            is_head = seq == 0
            is_tail = seq == int(self._pkt_last[pkt])
            if is_head or is_tail:
                busy[nidx] = is_head and not is_tail
            self._inj_seq[router] = seq + 1
            if is_tail:
                self._inj_pkt[router] = -1
                self._inj_pending -= 1

    # -- buffer deposits ------------------------------------------------------

    def _deposit(self, flat_in, pkts, seqs) -> None:
        occupied = self._buf_cnt[flat_in]
        slot = flat_in * self._D + (self._buf_head[flat_in] + occupied) % self._D
        self._buf_pkt[slot] = pkts
        self._buf_seq[slot] = seqs
        self._buf_cnt[flat_in] = occupied + 1
        self._total_buffered += len(pkts)
        if self._occ_dense:
            return
        fresh = flat_in[~self._in_occ[flat_in]]
        if fresh.size:
            self._in_occ[fresh] = True
            self._occ_new.append(fresh)

    def _deposit_one(self, flat_in: int, pkt: int, seq: int) -> None:
        occupied = int(self._buf_cnt[flat_in])
        slot = flat_in * self._D + (
            int(self._buf_head[flat_in]) + occupied
        ) % self._D
        self._buf_pkt[slot] = pkt
        self._buf_seq[slot] = seq
        self._buf_cnt[flat_in] = occupied + 1
        self._total_buffered += 1
        if self._occ_dense:
            return
        if not self._in_occ[flat_in]:
            self._in_occ[flat_in] = True
            self._occ_new_scalar.append(flat_in)

    def _finish(self, pkt_index: int, cycle: int) -> None:
        self._pkt_done[pkt_index] = True
        self._done_count += 1
        self._inflight_created_sum -= int(self._pkt_created[pkt_index])
        self._received.increment()
        packet = self._pkt_obj.pop(pkt_index, None)
        if packet is not None:
            packet.ejected_cycle = cycle
            self._latency_hist.add(packet.latency)
            self._on_packet(packet)
        else:
            self._latency_hist.add(cycle - int(self._pkt_created[pkt_index]))
            self.network._on_packet_light()

    def _finish_batch(self, pkts, cycle: int) -> None:
        """Tail-flit ejections for a whole cycle in one pass.

        Equivalent to ``_finish`` per packet; the fast path (no Packet
        objects outstanding, the batched-injection regime) avoids the
        per-packet dict probe and callback plumbing.
        """
        created = self._pkt_created[pkts]
        self._pkt_done[pkts] = True
        self._done_count += pkts.size
        self._inflight_created_sum -= int(created.sum())
        self._received.increment(pkts.size)
        add = self._latency_hist.add
        if self._pkt_obj:
            pop = self._pkt_obj.pop
            for p, c in zip(pkts.tolist(), created.tolist()):
                packet = pop(p, None)
                if packet is not None:
                    packet.ejected_cycle = cycle
                    add(packet.latency)
                    self._on_packet(packet)
                else:
                    add(cycle - c)
                    self.network._on_packet_light()
        else:
            for c in created.tolist():
                add(cycle - c)
            self.network._on_packet_light_batch(pkts.size)

    def in_flight_ages(self) -> dict:
        """Age summary over every injected-but-undelivered packet."""
        now = self.engine.cycle
        count = self._pkt_n - self._done_count
        if count == 0:
            return {"count": 0, "mean_age": 0.0, "max_age": 0}
        oldest = self._oldest_alive
        done = self._pkt_done
        while done[oldest]:
            oldest += 1
        self._oldest_alive = oldest
        mean = (now * count - self._inflight_created_sum) / count
        return {
            "count": count,
            "mean_age": mean,
            "max_age": now - int(self._pkt_created[oldest]),
        }

    # -- introspection --------------------------------------------------------

    @property
    def buffered_flits(self) -> int:
        """Flits currently held in input buffers across the whole mesh."""
        return self._total_buffered

    def check_invariants(self) -> list[str]:
        """Verify credit conservation on every link; return violations.

        For each producer/consumer pair the sum of (available credits +
        occupied downstream slots + flits in flight on the link + credits
        staged for return) must equal the buffer depth at all times.
        Used by the unit tests; O(routers × ports × vcs), not called on
        the hot path.
        """
        ports, vcs, depth = self._P, self._V, self._D
        staged_out = np.zeros_like(self._out_credits)
        for indexes in self._stage_out:
            np.add.at(staged_out, np.asarray(indexes, np.int64), 1)
        if self._stage_out_scalar:
            np.add.at(
                staged_out, np.asarray(self._stage_out_scalar, np.int64), 1
            )
        staged_nic = np.zeros_like(self._nic_credits)
        for indexes in self._stage_nic:
            np.add.at(staged_nic, np.asarray(indexes, np.int64), 1)
        in_flight = np.zeros_like(self._buf_cnt)
        for batch in self._link_stage:
            if batch is not None:
                np.add.at(in_flight, batch[0], 1)
        errors: list[str] = []
        mesh_ports = [
            PORT_INDEX[p]
            for p in (Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH)
        ]
        for router in range(self._R):
            for port in mesh_ports:
                dest = int(self._link_dest[router, port])
                if dest < 0:
                    continue
                down_port = int(self._opposite[port])
                for vc in range(vcs):
                    out = (router * ports + port) * vcs + vc
                    down = (dest * ports + down_port) * vcs + vc
                    total = (
                        int(self._out_credits[out])
                        + int(self._buf_cnt[down])
                        + int(in_flight[down])
                        + int(staged_out[out])
                    )
                    if total != depth:
                        errors.append(
                            f"mesh link r{router} p{port} vc{vc}: {total}"
                        )
        for router in range(self._R):
            for vc in range(vcs):
                local_in = (router * ports + _LOCAL) * vcs + vc
                nic = router * vcs + vc
                total = (
                    int(self._nic_credits[nic])
                    + int(self._buf_cnt[local_in])
                    + int(staged_nic[nic])
                )
                if total != depth:
                    errors.append(f"nic link r{router} vc{vc}: {total}")
        staged_rx: dict[tuple[int, int, int], int] = {}
        for pillar, layer, vc in self._stage_rx:
            key = (id(pillar), layer, vc)
            staged_rx[key] = staged_rx.get(key, 0) + 1
        for pillar in self._pillars:
            for z, router in enumerate(pillar.routers):
                for vc in range(vcs):
                    out = (router * ports + _VERTICAL) * vcs + vc
                    total = (
                        int(self._out_credits[out])
                        + len(pillar.txq[z][vc])
                        + int(staged_out[out])
                    )
                    if total != depth:
                        errors.append(
                            f"pillar tx {pillar.xy} z{z} vc{vc}: {total}"
                        )
                    vert_in = (router * ports + _VERTICAL) * vcs + vc
                    total = (
                        pillar.rx_credits[z][vc]
                        + int(self._buf_cnt[vert_in])
                        + staged_rx.get((id(pillar), z, vc), 0)
                    )
                    if total != depth:
                        errors.append(
                            f"pillar rx {pillar.xy} z{z} vc{vc}: {total}"
                        )
        return errors

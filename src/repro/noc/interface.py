"""Network interface controller (NIC): packet injection and ejection.

Every node (cache bank, CPU, or tag-array logic block) talks to its router
through a NIC.  Injection segments packets into flits and feeds them into
the router's ``LOCAL`` input port under normal VC/credit rules; ejection
reassembles flits arriving on the ``LOCAL`` output port and fires a
completion callback with the whole packet.

Hot-path wiring: the injection "link" is one cycle, so the NIC deposits
directly into the router's LOCAL input buffer during its own ``advance``
(timing-equivalent to the event the naive NIC schedules — the router first
arbitrates over the flit in the following cycle either way), credits ride
the engine's post queue via :class:`~repro.noc.link.CreditPipeline`, and
ejected flits are recycled through the network's
:class:`~repro.noc.packet.FlitPool`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.sim.engine import ClockedComponent, Engine
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.flit import Flit
from repro.noc.link import CreditPipeline
from repro.noc.packet import FlitPool, Packet
from repro.noc.router import Router, OutputPort
from repro.noc.routing import Port


class NetworkInterface(ClockedComponent):
    """Injection/ejection endpoint attached to one router.

    Parameters
    ----------
    engine:
        Simulation engine (for link delays and credit returns).
    router:
        The router this NIC is the local client of.
    on_packet:
        Callback invoked with each fully ejected :class:`Packet`.
    pool:
        Optional :class:`FlitPool`; injected flits are drawn from it and
        ejected flits returned to it.
    """

    def __init__(
        self,
        engine: Engine,
        router: Router,
        on_packet: Optional[Callable[[Packet], None]] = None,
        stats: Optional[StatsRegistry] = None,
        pool: Optional[FlitPool] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.router = router
        self.on_packet = on_packet
        self.stats = stats or StatsRegistry(f"nic{router.coord}")
        self._pool = pool
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # Inject/eject events share the router's track: one timeline per
        # node shows the packet's whole residence there.
        coord = router.coord
        self._track = self._tracer.track(
            f"router.{coord.x}.{coord.y}.{coord.z}"
        )
        self._inject_queue: deque[Packet] = deque()
        self._current_flits: deque[Flit] = deque()
        self._current_vc: Optional[int] = None
        self._ejected_packets: list[Packet] = []
        scope = self.stats.scope("nic")
        self._latency_hist = scope.histogram("packet_latency")
        self._injected = scope.counter("packets_injected")
        self._received = scope.counter("packets_received")

        # Injection path: NIC output -> router LOCAL input, a one-cycle
        # hop deposited directly (see module docstring).
        local_input = router.add_input_port(Port.LOCAL)
        self._output = OutputPort(
            Port.LOCAL, router.num_vcs, router.vc_depth, local_input.accept
        )
        local_input.credit_return = CreditPipeline(
            engine, self._output.return_credit
        )

        # Ejection path: router LOCAL output -> NIC sink (always accepts).
        router.add_output_port(
            Port.LOCAL, downstream_depth=1_000_000, deliver=self._eject
        )

    # -- injection --------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Queue a packet for transmission; latency clock starts now."""
        packet.created_cycle = self.engine.cycle
        self._inject_queue.append(packet)
        self.wake()

    @property
    def pending_injections(self) -> int:
        return len(self._inject_queue) + len(self._current_flits)

    def is_idle(self) -> bool:
        """Idle iff nothing is queued or mid-segmentation for injection.

        Ejection needs no activity: the router delivers into :meth:`_eject`
        directly, so a NIC that is only receiving can stay retired.
        """
        return not self._current_flits and not self._inject_queue

    def evaluate(self, cycle: int) -> None:
        pass

    def advance(self, cycle: int) -> None:
        if not self._current_flits:
            if not self._inject_queue:
                return
            vc = self._output.free_vc()
            if vc is None:
                return
            packet = self._inject_queue.popleft()
            packet.injected_cycle = cycle
            self._current_flits = deque(packet.make_flits(self._pool))
            self._current_vc = vc
            self._injected.increment()
            tracer = self._tracer
            if tracer.enabled:
                tracer.packet_inject(cycle, self._track, packet)
        if self._output.credits[self._current_vc] > 0:
            flit = self._current_flits.popleft()
            flit.injected_cycle = cycle
            self._output.send(flit, self._current_vc)
            if not self._current_flits:
                self._current_vc = None

    # -- ejection ---------------------------------------------------------

    def _eject(self, flit: Flit, vc: int) -> None:
        if flit.is_tail:
            packet = flit.packet
            packet.ejected_cycle = self.engine.cycle
            self._received.increment()
            if packet.latency is not None:
                self._latency_hist.add(packet.latency)
            tracer = self._tracer
            if tracer.enabled:
                tracer.packet_eject(
                    packet.ejected_cycle,
                    self._track,
                    packet.packet_id,
                    packet.latency,
                )
            self._ejected_packets.append(packet)
            if self.on_packet is not None:
                self.on_packet(packet)
        if self._pool is not None:
            self._pool.release(flit)

    def drain_ejected(self) -> list[Packet]:
        """Return and clear the list of completed packets."""
        packets, self._ejected_packets = self._ejected_packets, []
        return packets

"""Single-stage wormhole router with virtual channels and credit flow control.

The router follows the paper's design point: a speculative single-stage
pipeline (route computation, virtual-channel allocation and switch
allocation resolved in the same cycle a flit is forwarded), three virtual
channels per physical channel, each one message (4 flits) deep.

Flow control is credit-based.  Each output port tracks, per downstream
virtual channel, (a) whether the VC is currently allocated to an in-flight
packet and (b) how many free buffer slots remain.  A head flit must win a
free downstream VC; body/tail flits inherit it; the tail flit releases it.

The two-phase engine contract: ``evaluate`` performs all arbitration against
the state committed last cycle, ``advance`` moves the granted flits.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, TYPE_CHECKING

from repro.sim.engine import ClockedComponent, Engine
from repro.sim.stats import StatsRegistry
from repro.noc.flit import Flit
from repro.noc.routing import Coord, Port, dimension_order_route

if TYPE_CHECKING:
    from repro.noc.packet import Packet


class InputVC:
    """One virtual-channel FIFO of an input port, plus its routing state."""

    __slots__ = ("buffer", "depth", "route_port", "out_vc")

    def __init__(self, depth: int):
        self.buffer: deque[Flit] = deque()
        self.depth = depth
        # Allocated output port / downstream VC for the packet currently
        # occupying this VC; cleared when its tail flit departs.
        self.route_port: Optional[Port] = None
        self.out_vc: Optional[int] = None

    @property
    def head(self) -> Optional[Flit]:
        return self.buffer[0] if self.buffer else None

    @property
    def occupancy(self) -> int:
        return len(self.buffer)


class InputPort:
    """Buffered input side of a physical channel.

    ``credit_return`` is wired to the upstream output port so that consuming
    a flit frees a buffer slot there after the credit round-trip delay.
    """

    def __init__(self, num_vcs: int, depth: int):
        self.vcs = [InputVC(depth) for __ in range(num_vcs)]
        self.depth = depth
        self.credit_return: Optional[Callable[[int], None]] = None
        # The router this port belongs to: an arriving flit bumps its
        # buffered-flit count and wakes it (activity-tracked kernel).
        self.owner: Optional["Router"] = None

    def accept(self, flit: Flit, vc: int) -> None:
        """Deposit a flit into virtual channel ``vc`` (called by the link)."""
        buffer = self.vcs[vc].buffer
        if len(buffer) >= self.depth:
            raise RuntimeError(
                f"input VC overflow (vc={vc}): credit protocol violated"
            )
        buffer.append(flit)
        owner = self.owner
        if owner is not None:
            owner._buffered += 1
            owner.wake()


class OutputPort:
    """Credit-tracking output side of a physical channel.

    ``deliver`` is the link transfer function: called with ``(flit, vc)``
    during ``advance``, it must hand the flit to the downstream input port
    after the link latency.  ``vc_busy`` is the output-VC allocation table.
    """

    def __init__(
        self,
        port: Port,
        num_vcs: int,
        downstream_depth: int,
        deliver: Callable[[Flit, int], None],
    ):
        self.port = port
        self.num_vcs = num_vcs
        self.vc_busy = [False] * num_vcs
        self.credits = [downstream_depth] * num_vcs
        self.deliver = deliver

    def free_vc(self, preferred: int = 0) -> Optional[int]:
        """A downstream VC that is unallocated and has buffer space."""
        for offset in range(self.num_vcs):
            vc = (preferred + offset) % self.num_vcs
            if not self.vc_busy[vc] and self.credits[vc] > 0:
                return vc
        return None

    def return_credit(self, vc: int) -> None:
        self.credits[vc] += 1

    def send(self, flit: Flit, vc: int) -> None:
        """Consume a credit and push the flit onto the link."""
        if self.credits[vc] <= 0:
            raise RuntimeError(f"credit underflow on {self.port} vc={vc}")
        self.credits[vc] -= 1
        if flit.is_head:
            self.vc_busy[vc] = True
        if flit.is_tail:
            self.vc_busy[vc] = False
        self.deliver(flit, vc)


class Router(ClockedComponent):
    """A mesh router at one node of the 3D chip.

    Pillar routers are ordinary routers whose port set includes
    ``Port.VERTICAL``; the hybridization with the dTDMA bus is entirely in
    what that port's :class:`OutputPort` delivers into (the bus transceiver)
    and what feeds its :class:`InputPort` (bus receptions).
    """

    def __init__(
        self,
        coord: Coord,
        num_vcs: int = 3,
        vc_depth: int = 4,
        stats: Optional[StatsRegistry] = None,
    ):
        self.coord = coord
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.stats = stats or StatsRegistry(f"router{coord}")
        self.input_ports: dict[Port, InputPort] = {}
        self.output_ports: dict[Port, OutputPort] = {}
        # Grants decided in evaluate(), committed in advance():
        # list of (input_port, vc_index, output_port_obj, out_vc)
        self._grants: list[tuple[Port, int, OutputPort, int]] = []
        self._rr_offset = 0
        # Running count of input-buffered flits, maintained by
        # InputPort.accept / advance so is_idle() is O(1).
        self._buffered = 0
        self._forwarded = self.stats.counter(f"router{coord}.flits_forwarded")
        self._blocked = self.stats.counter(f"router{coord}.cycles_blocked")

    # -- wiring ----------------------------------------------------------

    def add_input_port(self, port: Port) -> InputPort:
        input_port = InputPort(self.num_vcs, self.vc_depth)
        input_port.owner = self
        self.input_ports[port] = input_port
        return input_port

    def add_output_port(
        self,
        port: Port,
        downstream_depth: int,
        deliver: Callable[[Flit, int], None],
    ) -> OutputPort:
        output_port = OutputPort(port, self.num_vcs, downstream_depth, deliver)
        self.output_ports[port] = output_port
        return output_port

    @property
    def ports(self) -> set[Port]:
        return set(self.input_ports) | set(self.output_ports)

    def buffered_flits(self) -> int:
        """Total flits resident in this router's input buffers."""
        return sum(
            vc.occupancy
            for input_port in self.input_ports.values()
            for vc in input_port.vcs
        )

    def is_idle(self) -> bool:
        """Idle iff no input VC holds a flit and no grant is pending."""
        return self._buffered == 0 and not self._grants

    # -- routing ---------------------------------------------------------

    def _route(self, packet: "Packet") -> Port:
        return dimension_order_route(self.coord, packet.dest, packet.pillar_xy)

    # -- per-cycle operation ----------------------------------------------

    def evaluate(self, cycle: int) -> None:
        self._grants = []
        granted_outputs: set[Port] = set()
        granted_inputs: set[Port] = set()
        port_list = list(self.input_ports.items())
        if not port_list:
            return
        # Rotate arbitration priority so no input port starves.  Derived
        # from the cycle number (not a tick count) so the rotation is
        # identical whether or not idle cycles were skipped.
        self._rr_offset = (cycle + 1) % len(port_list)
        ordered = port_list[self._rr_offset:] + port_list[: self._rr_offset]
        any_blocked = False
        for port_name, input_port in ordered:
            if port_name in granted_inputs:
                continue
            for vc_index, vc in enumerate(input_port.vcs):
                head = vc.head
                if head is None:
                    continue
                if head.is_head and vc.route_port is None:
                    vc.route_port = self._route(head.packet)
                output_port = self.output_ports.get(vc.route_port)
                if output_port is None:
                    raise RuntimeError(
                        f"router {self.coord}: no output port "
                        f"{vc.route_port} for {head.packet}"
                    )
                if output_port.port in granted_outputs:
                    any_blocked = True
                    continue
                if head.is_head and vc.out_vc is None:
                    out_vc = output_port.free_vc(preferred=vc_index)
                    if out_vc is None:
                        any_blocked = True
                        continue
                    vc.out_vc = out_vc
                if output_port.credits[vc.out_vc] <= 0:
                    any_blocked = True
                    continue
                self._grants.append(
                    (port_name, vc_index, output_port, vc.out_vc)
                )
                granted_outputs.add(output_port.port)
                granted_inputs.add(port_name)
                break  # one flit per input port per cycle
        if any_blocked:
            self._blocked.increment()

    def advance(self, cycle: int) -> None:
        for port_name, vc_index, output_port, out_vc in self._grants:
            input_port = self.input_ports[port_name]
            vc = input_port.vcs[vc_index]
            flit = vc.buffer.popleft()
            self._buffered -= 1
            if flit.is_tail:
                vc.route_port = None
                vc.out_vc = None
            output_port.send(flit, out_vc)
            if input_port.credit_return is not None:
                input_port.credit_return(vc_index)
            self._forwarded.increment()
        self._grants = []


def connect(
    engine: Engine,
    upstream: Router,
    up_port: Port,
    downstream: Router,
    down_port: Port,
    link_latency: int = 1,
) -> None:
    """Wire ``upstream``'s ``up_port`` output to ``downstream``'s input.

    Creates the output port on the upstream router and the input port on the
    downstream one, with a link of ``link_latency`` cycles and a one-cycle
    credit return path.
    """
    input_port = downstream.add_input_port(down_port)

    def deliver(flit: Flit, vc: int) -> None:
        engine.schedule(link_latency, lambda: input_port.accept(flit, vc))

    output_port = upstream.add_output_port(
        up_port, downstream_depth=downstream.vc_depth, deliver=deliver
    )

    def credit_return(vc: int) -> None:
        engine.schedule(1, lambda: output_port.return_credit(vc))

    input_port.credit_return = credit_return

"""Single-stage wormhole router with virtual channels and credit flow control.

The router follows the paper's design point: a speculative single-stage
pipeline (route computation, virtual-channel allocation and switch
allocation resolved in the same cycle a flit is forwarded), three virtual
channels per physical channel, each one message (4 flits) deep.

Flow control is credit-based.  Each output port tracks, per downstream
virtual channel, (a) whether the VC is currently allocated to an in-flight
packet and (b) how many free buffer slots remain.  A head flit must win a
free downstream VC; body/tail flits inherit it; the tail flit releases it.

The two-phase engine contract: ``evaluate`` performs all arbitration against
the state committed last cycle, ``advance`` moves the granted flits.

Hot path
--------

``evaluate``/``advance`` run once per router per loaded cycle, so they are
written allocation-free: routes are memoized per ``(dest, pillar_xy)`` in a
route table, the rotated arbitration orders are precomputed (invalidated
when a port is added), granted-output tracking is an int bitmask, and the
grant list is a flat reused buffer.  The behaviour is bit-identical to the
frozen naive implementation in :mod:`repro.noc.reference`, which
``tests/integration/test_noc_differential.py`` asserts end to end.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.sim.engine import ClockedComponent, Engine
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.flit import Flit
from repro.noc.link import CreditPipeline, LinkPipeline
from repro.noc.routing import (
    Coord,
    PORT_INDEX,
    Port,
    dimension_order_route,
    fault_aware_route,
)

if TYPE_CHECKING:
    from repro.faults.state import FaultState
    from repro.noc.packet import Packet


class InputVC:
    """One virtual-channel FIFO of an input port, plus its routing state."""

    __slots__ = ("buffer", "depth", "route_port", "out_vc", "out_port")

    def __init__(self, depth: int):
        self.buffer: deque[Flit] = deque()
        self.depth = depth
        # Allocated output port / downstream VC for the packet currently
        # occupying this VC; cleared when its tail flit departs.  out_port
        # caches the resolved OutputPort object for route_port so body
        # flits skip the dict lookup.
        self.route_port: Optional[Port] = None
        self.out_vc: Optional[int] = None
        self.out_port: Optional["OutputPort"] = None

    @property
    def head(self) -> Optional[Flit]:
        return self.buffer[0] if self.buffer else None

    @property
    def occupancy(self) -> int:
        return len(self.buffer)


class InputPort:
    """Buffered input side of a physical channel.

    ``credit_return`` is wired to the upstream output port so that consuming
    a flit frees a buffer slot there after the credit round-trip delay.
    """

    def __init__(self, num_vcs: int, depth: int):
        self.vcs = [InputVC(depth) for __ in range(num_vcs)]
        self.depth = depth
        self.credit_return: Optional[Callable[[int], None]] = None
        # The router this port belongs to: an arriving flit bumps its
        # buffered-flit count and wakes it (activity-tracked kernel).
        self.owner: Optional["Router"] = None

    def accept(self, flit: Flit, vc: int) -> None:
        """Deposit a flit into virtual channel ``vc`` (called by the link)."""
        buffer = self.vcs[vc].buffer
        if len(buffer) >= self.depth:
            raise RuntimeError(
                f"input VC overflow (vc={vc}): credit protocol violated"
            )
        buffer.append(flit)
        owner = self.owner
        if owner is not None:
            owner._buffered += 1
            owner._eval_cached = False
            owner.wake()


class OutputPort:
    """Credit-tracking output side of a physical channel.

    ``deliver`` is the link transfer function: called with ``(flit, vc)``
    during ``advance``, it must hand the flit to the downstream input port
    after the link latency.  ``vc_busy`` is the output-VC allocation table.
    """

    def __init__(
        self,
        port: Port,
        num_vcs: int,
        downstream_depth: int,
        deliver: Callable[[Flit, int], None],
    ):
        self.port = port
        self.num_vcs = num_vcs
        self.vc_busy = [False] * num_vcs
        self.credits = [downstream_depth] * num_vcs
        self.deliver = deliver
        # Bit identifying this port in the router's granted-output mask.
        self.out_bit = 1 << PORT_INDEX[port]
        # The router transmitting through this port; a returning credit
        # changes what its next evaluate can grant, so it must drop the
        # blocked-evaluate cache.
        self.owner: Optional["Router"] = None

    def free_vc(
        self, preferred: int = 0, lo: int = 0, hi: Optional[int] = None
    ) -> Optional[int]:
        """A downstream VC in ``[lo, hi)`` that is unallocated and has
        buffer space.  The window defaults to every VC; routers narrow it
        to one VC class for the multi-layer deadlock partition."""
        vc_busy = self.vc_busy
        credits = self.credits
        if hi is None:
            hi = self.num_vcs
        span = hi - lo
        vc = lo + preferred % span
        for __ in range(span):
            if not vc_busy[vc] and credits[vc] > 0:
                return vc
            vc += 1
            if vc == hi:
                vc = lo
        return None

    def return_credit(self, vc: int) -> None:
        self.credits[vc] += 1
        owner = self.owner
        if owner is not None:
            owner._eval_cached = False

    def send(self, flit: Flit, vc: int) -> None:
        """Consume a credit and push the flit onto the link."""
        if self.credits[vc] <= 0:
            raise RuntimeError(f"credit underflow on {self.port} vc={vc}")
        self.credits[vc] -= 1
        if flit.is_head:
            self.vc_busy[vc] = True
        if flit.is_tail:
            self.vc_busy[vc] = False
        self.deliver(flit, vc)


class _DropLabel:
    """Port-name stand-in for the drop sink (``.port.name == "DROP"``)."""

    name = "DROP"


class _DropPort:
    """Pseudo output port that swallows flits of unreachable packets.

    Quacks enough like :class:`OutputPort` for the evaluate/advance hot
    path: ``out_bit`` 0 (never conflicts with a real grant and is never
    jam-checked), bottomless credits so every flit of a doomed packet is
    granted as it reaches the head of line, and a ``send`` that discards
    the flit with drop accounting.  Credits still return upstream via the
    normal grant path, so the mesh drains instead of backpressuring.
    """

    __slots__ = ("port", "num_vcs", "vc_busy", "credits", "out_bit", "_faults")

    def __init__(self, num_vcs: int, faults: "FaultState"):
        self.port = _DropLabel
        self.num_vcs = num_vcs
        self.vc_busy = [False] * num_vcs
        self.credits = [1 << 30] * num_vcs
        self.out_bit = 0
        self._faults = faults

    def send(self, flit: Flit, vc: int) -> None:
        self._faults.flit_dropped()


class Router(ClockedComponent):
    """A mesh router at one node of the 3D chip.

    Pillar routers are ordinary routers whose port set includes
    ``Port.VERTICAL``; the hybridization with the dTDMA bus is entirely in
    what that port's :class:`OutputPort` delivers into (the bus transceiver)
    and what feeds its :class:`InputPort` (bus receptions).
    """

    def __init__(
        self,
        coord: Coord,
        num_vcs: int = 3,
        vc_depth: int = 4,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.coord = coord
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.stats = stats or StatsRegistry(f"router{coord}")
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._track = self._tracer.track(
            f"router.{coord.x}.{coord.y}.{coord.z}"
        )
        self.input_ports: dict[Port, InputPort] = {}
        self.output_ports: dict[Port, OutputPort] = {}
        # Grants decided in evaluate(), committed in advance(): a flat
        # reused list of (input_port, vc, vc_index, output_port, out_vc)
        # records, five slots per grant.
        self._grants: list[Any] = []
        self._rr_offset = 0
        # Memoized dimension_order_route results, and the precomputed
        # arbitration rotations (one tuple of (port, InputPort, enumerated
        # VCs) per round-robin offset; rebuilt when a port is added).
        self._route_table: dict[
            tuple[Coord, Optional[tuple[int, int]]], Port
        ] = {}
        self._orders: Optional[list[tuple]] = None
        # Blocked-evaluate cache: True when the previous evaluate granted
        # nothing and no flit arrival / credit return / port change has
        # happened since.  Arbitration inputs are then bit-identical, and
        # with an empty grant mask the round-robin rotation cannot affect
        # any VC's outcome, so the whole scan can be skipped and only the
        # cached blocked-counter increment replayed.
        self._eval_cached = False
        self._cached_blocked = False
        # Running count of input-buffered flits, maintained by
        # InputPort.accept / advance so is_idle() is O(1).
        self._buffered = 0
        # VC class partition for multi-layer deadlock avoidance (set by
        # Network from NetworkConfig.vc_split): packets still headed for
        # a vertical hop may only win VCs [0, vc_split); packets on their
        # destination layer use [vc_split, num_vcs).  0 disables the
        # partition (single-layer meshes).
        self.vc_split = 0
        # Live fault map, set by Network.attach_fault_state when a fault
        # schedule is installed; None keeps the fault checks to a single
        # is-None branch on the hot path.
        self._faults: Optional["FaultState"] = None
        self._drop: Optional[_DropPort] = None
        scope = self.stats.scope(f"router{coord}")
        self._forwarded = scope.counter("flits_forwarded")
        self._blocked = scope.counter("cycles_blocked")

    # -- wiring ----------------------------------------------------------

    def add_input_port(self, port: Port) -> InputPort:
        input_port = InputPort(self.num_vcs, self.vc_depth)
        input_port.owner = self
        self.input_ports[port] = input_port
        self._orders = None
        self._eval_cached = False
        return input_port

    def add_output_port(
        self,
        port: Port,
        downstream_depth: int,
        deliver: Callable[[Flit, int], None],
    ) -> OutputPort:
        output_port = OutputPort(port, self.num_vcs, downstream_depth, deliver)
        output_port.owner = self
        self.output_ports[port] = output_port
        self._eval_cached = False
        return output_port

    @property
    def ports(self) -> set[Port]:
        return set(self.input_ports) | set(self.output_ports)

    def buffered_flits(self) -> int:
        """Total flits resident in this router's input buffers."""
        return sum(
            vc.occupancy
            for input_port in self.input_ports.values()
            for vc in input_port.vcs
        )

    @property
    def forwarded_flits(self) -> int:
        """Flits forwarded so far (liveness-watchdog progress signal)."""
        return self._forwarded.value

    def _drop_sink(self, faults: "FaultState") -> _DropPort:
        drop = self._drop
        if drop is None:
            drop = self._drop = _DropPort(self.num_vcs, faults)
        return drop

    def is_idle(self) -> bool:
        """Idle iff no input VC holds a flit and no grant is pending."""
        return self._buffered == 0 and not self._grants

    # -- routing ---------------------------------------------------------

    def _route(self, packet: "Packet") -> Port:
        """Route ``packet``, memoized per (dest, pillar) in the route table."""
        key = (packet.dest, packet.pillar_xy)
        port = self._route_table.get(key)
        if port is None:
            port = dimension_order_route(
                self.coord, packet.dest, packet.pillar_xy
            )
            self._route_table[key] = port
        return port

    def _build_orders(self) -> Optional[list[tuple]]:
        entries = [
            (input_port, tuple(enumerate(input_port.vcs)))
            for input_port in self.input_ports.values()
        ]
        if not entries:
            return None
        self._orders = [
            tuple(entries[offset:] + entries[:offset])
            for offset in range(len(entries))
        ]
        return self._orders

    # -- per-cycle operation ----------------------------------------------

    def evaluate(self, cycle: int) -> None:
        if self._eval_cached:
            # Bit-identical replay of the previous zero-grant evaluate.
            if self._cached_blocked:
                self._blocked.increment()
            return
        grants = self._grants
        del grants[:]
        orders = self._orders
        if orders is None:
            orders = self._build_orders()
            if orders is None:
                return
        # Rotate arbitration priority so no input port starves.  Derived
        # from the cycle number (not a tick count) so the rotation is
        # identical whether or not idle cycles were skipped.
        offset = (cycle + 1) % len(orders)
        self._rr_offset = offset
        granted_mask = 0
        any_blocked = False
        output_ports = self.output_ports
        route_table = self._route_table
        faults = self._faults
        vc_split = self.vc_split
        coord_z = self.coord.z
        for input_port, vcs in orders[offset]:
            for vc_index, vc in vcs:
                buffer = vc.buffer
                if not buffer:
                    continue
                head = buffer[0]
                out_port = vc.out_port
                if out_port is None:
                    if head.is_head and vc.route_port is None:
                        packet = head.packet
                        if faults is not None and faults.mesh_faulty:
                            # Fault-aware path: consult the live fault
                            # map, never memoized (links heal).
                            route_port = fault_aware_route(
                                self.coord,
                                packet.dest,
                                packet.pillar_xy,
                                faults.dead_links,
                            )
                            if route_port is None:
                                # Unreachable: swallow the packet flit by
                                # flit through the drop sink instead of
                                # wedging this VC forever.
                                faults.packet_unreachable(packet)
                                vc.route_port = Port.LOCAL
                                out_port = self._drop_sink(faults)
                                vc.out_port = out_port
                            else:
                                vc.route_port = route_port
                        else:
                            key = (packet.dest, packet.pillar_xy)
                            route_port = route_table.get(key)
                            if route_port is None:
                                route_port = dimension_order_route(
                                    self.coord, packet.dest, packet.pillar_xy
                                )
                                route_table[key] = route_port
                            vc.route_port = route_port
                    if out_port is None:
                        out_port = output_ports.get(vc.route_port)
                        if out_port is None:
                            raise RuntimeError(
                                f"router {self.coord}: no output port "
                                f"{vc.route_port} for {head.packet}"
                            )
                        vc.out_port = out_port
                if (
                    faults is not None
                    and faults.jammed_ports
                    and out_port.out_bit
                    and (self.coord, out_port.port) in faults.jammed_ports
                ):
                    any_blocked = True
                    continue
                if granted_mask & out_port.out_bit:
                    any_blocked = True
                    continue
                out_vc = vc.out_vc
                if out_vc is None and head.is_head:
                    # Inlined OutputPort.free_vc(preferred=vc_index): this
                    # runs every cycle a head flit waits for a downstream
                    # VC, which under load is most VCs most cycles.  The
                    # scan window is the packet's VC class: cross-layer
                    # packets that still need a vertical hop take
                    # [0, vc_split), everything else [vc_split, num_vcs)
                    # — the partition that keeps the pillar round trip
                    # deadlock-free (see NetworkConfig.vc_split).
                    vc_busy = out_port.vc_busy
                    credits = out_port.credits
                    num_vcs = out_port.num_vcs
                    if vc_split:
                        if head.packet.dest.z != coord_z:
                            lo, hi = 0, vc_split
                        else:
                            lo, hi = vc_split, num_vcs
                    else:
                        lo, hi = 0, num_vcs
                    span = hi - lo
                    candidate = lo + vc_index % span
                    for __ in range(span):
                        if not vc_busy[candidate] and credits[candidate] > 0:
                            out_vc = vc.out_vc = candidate
                            break
                        candidate += 1
                        if candidate == hi:
                            candidate = lo
                    else:
                        any_blocked = True
                        continue
                if out_port.credits[out_vc] <= 0:
                    any_blocked = True
                    continue
                grants.append(input_port)
                grants.append(vc)
                grants.append(vc_index)
                grants.append(out_port)
                grants.append(out_vc)
                granted_mask |= out_port.out_bit
                break  # one flit per input port per cycle
        if any_blocked:
            self._blocked.increment()
        if not grants:
            self._eval_cached = True
            self._cached_blocked = any_blocked

    def advance(self, cycle: int) -> None:
        grants = self._grants
        if not grants:
            return
        # Probe guard hoisted out of the loop: the disabled path costs one
        # attribute load + branch per advance, zero per grant.
        tracer = self._tracer
        traced = tracer.enabled
        for i in range(0, len(grants), 5):
            vc = grants[i + 1]
            flit = vc.buffer.popleft()
            if traced and flit.is_head:
                tracer.packet_hop(
                    cycle,
                    self._track,
                    flit.packet.packet_id,
                    grants[i + 3].port.name,
                    grants[i + 4],
                )
            if flit.is_tail:
                vc.route_port = None
                vc.out_vc = None
                vc.out_port = None
            grants[i + 3].send(flit, grants[i + 4])
            credit_return = grants[i].credit_return
            if credit_return is not None:
                credit_return(grants[i + 2])
        count = len(grants) // 5
        self._buffered -= count
        self._forwarded.increment(count)
        del grants[:]


def connect(
    engine: Engine,
    upstream: Router,
    up_port: Port,
    downstream: Router,
    down_port: Port,
    link_latency: int = 1,
    pipeline: Optional[LinkPipeline] = None,
) -> None:
    """Wire ``upstream``'s ``up_port`` output to ``downstream``'s input.

    Creates the output port on the upstream router and the input port on the
    downstream one, with a link of ``link_latency`` cycles and a one-cycle
    credit return path.

    One-cycle links deposit directly into the downstream buffer during the
    sender's ``advance`` — timing-equivalent to the event the naive fabric
    schedules, because the downstream router next arbitrates in the
    following cycle either way and the credit invariant rules out overflow.
    Longer links ride ``pipeline`` (a network-shared :class:`LinkPipeline`;
    a private one is created and registered when none is given).
    """
    input_port = downstream.add_input_port(down_port)

    if link_latency <= 1:
        deliver = input_port.accept
    else:
        if pipeline is None:
            pipeline = LinkPipeline(engine, link_latency)
            engine.register(pipeline)
        else:
            pipeline.reserve(link_latency)

        def deliver(
            flit: Flit,
            vc: int,
            _send=pipeline.send,
            _sink=input_port.accept,
            _latency=link_latency,
        ) -> None:
            _send(_sink, flit, vc, _latency)

    output_port = upstream.add_output_port(
        up_port, downstream_depth=downstream.vc_depth, deliver=deliver
    )
    input_port.credit_return = CreditPipeline(engine, output_port.return_credit)

"""Network assembly: 3D mesh-plus-pillars fabric construction.

Builds the complete interconnect of the Network-in-Memory architecture:
one wormhole mesh per device layer, a NIC at every node, and a dTDMA bus
pillar at each configured pillar location bridging all layers.  A
single-layer configuration (no pillars) is the conventional 2D NUCA
network the paper compares against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TYPE_CHECKING

from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.fabric import FABRIC_NAMES, FabricKind
from repro.noc.flit import IdScope
from repro.noc.link import LinkPipeline
from repro.noc.packet import FlitPool, Packet, MessageClass
from repro.noc.router import Router, connect
from repro.noc.routing import Coord, Port, best_pillar
from repro.noc.interface import NetworkInterface

if TYPE_CHECKING:
    from repro.faults.state import FaultState

# Backwards-compatible alias; FabricKind.parse is the validator now.
FABRICS = FABRIC_NAMES


@dataclass
class NetworkConfig:
    """Parameters of the interconnect fabric (paper Table 4 defaults)."""

    width: int = 16          # mesh columns (x) per layer
    height: int = 8          # mesh rows (y) per layer
    layers: int = 2          # device layers
    pillar_locations: tuple[tuple[int, int], ...] = ()
    num_vcs: int = 3         # virtual channels per physical channel
    vc_depth: int = 4        # flits per VC (one 4-flit message)
    # Mesh link traversal: one cycle in the router plus one on the wire.
    # At 70 nm a 64 KB bank tile is ~1.5 mm across, so the inter-router
    # wire is a full clock cycle — unlike the 10 um inter-layer vias,
    # whose traversal is folded into the dTDMA bus slot.  This asymmetry
    # is the physical basis of the 3D advantage.
    link_latency: int = 2
    flit_bits: int = 128     # link width
    packet_flits: int = 4    # flits per cache-line packet (64 B line)
    # FabricKind.VECTOR only: occupancy (occupied input VCs, or active
    # NICs) at or below which the fabric's mesh/NIC phases run the
    # scalar per-flit path instead of batched numpy arbitration.  The
    # two paths produce identical results; the default is the measured
    # crossover from BENCH_noc.json's sparse operating point.  0 forces
    # the batched path everywhere.  Object fabrics ignore it.
    sparse_threshold: int = 24

    def validate(self) -> None:
        if self.width < 1 or self.height < 1 or self.layers < 1:
            raise ValueError("network dimensions must be positive")
        if self.sparse_threshold < 0:
            raise ValueError("sparse_threshold must be non-negative")
        if self.layers > 1 and not self.pillar_locations:
            raise ValueError("multi-layer networks require pillars")
        for x, y in self.pillar_locations:
            if not (0 <= x < self.width and 0 <= y < self.height):
                raise ValueError(f"pillar ({x},{y}) outside the mesh")
        if len(set(self.pillar_locations)) != len(self.pillar_locations):
            raise ValueError("duplicate pillar locations")

    @property
    def vc_split(self) -> int:
        """First VC of the intra-layer class (0 disables partitioning).

        Multi-layer meshes partition the virtual channels into two
        classes to break the inter-layer credit cycle (mesh -> pillar TX
        -> bus -> pillar RX -> mesh on the other layer -> back): packets
        that still have to cross a pillar (``dest.z != here.z``) may only
        be allocated VCs ``[0, vc_split)``; packets already on their
        destination layer use ``[vc_split, num_vcs)``.  Post-crossing
        traffic then drains to ejection without ever waiting on a pillar,
        which makes the channel dependency graph acyclic (see DESIGN.md
        "Saturation and drain behaviour").  Single-layer meshes have no
        vertical hop, so the partition is disabled.
        """
        if self.layers > 1 and self.num_vcs >= 2:
            return self.num_vcs // 2
        return 0

    @property
    def nodes_per_layer(self) -> int:
        return self.width * self.height

    @property
    def total_nodes(self) -> int:
        return self.nodes_per_layer * self.layers


class Network:
    """The full interconnect: routers, links, NICs, and pillars.

    The network owns its :class:`~repro.sim.engine.Engine` unless one is
    passed in (so cache/CPU models can share the clock).
    """

    def __init__(
        self,
        config: NetworkConfig,
        engine: Optional[Engine] = None,
        stats: Optional[StatsRegistry] = None,
        activity_tracking: bool = True,
        fabric: "FabricKind | str" = FabricKind.OPTIMIZED,
        tracer: Optional[Tracer] = None,
    ):
        config.validate()
        self.config = config
        self.fabric = FabricKind.parse(fabric)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # ``activity_tracking`` selects the kernel for a self-owned engine
        # (ignored when an engine is supplied): the activity-tracked kernel
        # skips quiescent routers/NICs/pillars and produces bit-identical
        # results to the naive one.  ``fabric`` selects between the
        # allocation-free hot path ("optimized") and the frozen naive
        # implementation ("reference") that the differential test compares
        # it against; both produce bit-identical results.
        self.engine = engine or Engine("network", activity_tracking=activity_tracking)
        self.stats = stats or StatsRegistry("network")
        # Per-network id scope: packet/flit id sequences restart at zero
        # for every Network, so back-to-back simulations in one process
        # produce identical traces.
        self.ids = IdScope()
        self.flit_pool: Optional[FlitPool] = (
            FlitPool() if self.fabric is FabricKind.OPTIMIZED else None
        )
        self.routers: dict[Coord, Router] = {}
        self.nics: dict[Coord, NetworkInterface] = {}
        self.pillars: dict[tuple[int, int], "PillarBus"] = {}
        self._packet_callbacks: list[Callable[[Packet], None]] = []
        self._in_flight = 0
        # Monotonic count of packets that finished (delivered or lost);
        # the liveness watchdog's primary progress signal.
        self._completed = 0
        # Live fault map; stays None unless a fault schedule is
        # installed, keeping every fault check a single is-None branch.
        self._faults: Optional["FaultState"] = None
        # In-flight age accounting (the survivorship-bias companion to the
        # delivered-only latency histogram): packets in injection order
        # plus a running sum of their creation cycles.  The ring is
        # trimmed opportunistically as its head completes, so it stays
        # near the in-flight population, not the run total.
        self._age_ring: deque[Packet] = deque()
        self._inflight_created_sum = 0
        self._vector = None
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        if self.fabric is FabricKind.REFERENCE:
            self._build_reference()
        elif self.fabric is FabricKind.VECTOR:
            self._build_vector()
        else:
            self._build_optimized()

    def _build_vector(self) -> None:
        from repro.noc.vector import VectorFabric  # local: needs numpy

        if self.tracer.enabled:
            raise ValueError(
                "tracing requires an object fabric "
                "(fabric='optimized'); the vector fabric batches router "
                "state and has no per-object probe points"
            )
        self._link_pipeline = None
        self._vector = VectorFabric(self, self.config, self.engine, self.stats)
        self.engine.register(self._vector)
        if self.config.layers > 1:
            self._build_pillar_table()

    def _build_pillar_table(self) -> None:
        """Precompute ``best_pillar`` for every (src, dest) xy pair.

        The object fabrics call :func:`best_pillar` per packet (and must,
        because the live fault map can shrink the pillar set mid-run);
        the vector fabric never carries pillar faults, so the choice is a
        pure function of the two in-plane positions and one table gather
        replaces the per-packet ``min``.  The key encodes the exact
        ``best_pillar`` tie-break: total path length, then distance to
        the pillar, then pillar coordinate order.
        """
        import numpy as np

        cfg = self.config
        width, height = cfg.width, cfg.height
        flat = np.arange(width * height)
        fx, fy = flat % width, flat // width
        pillars = list(cfg.pillar_locations)
        by_coord = sorted(range(len(pillars)), key=lambda i: pillars[i])
        distance_scale = 4 * (width + height)
        best = np.full((flat.size, flat.size), 1 << 60, np.int64)
        choice = np.zeros((flat.size, flat.size), np.int64)
        for rank, index in enumerate(by_coord):
            px, py = pillars[index]
            to_pillar = (np.abs(fx - px) + np.abs(fy - py))[:, None]
            from_pillar = (np.abs(fx - px) + np.abs(fy - py))[None, :]
            key = (
                (to_pillar + from_pillar) * distance_scale + to_pillar
            ) * len(pillars) + rank
            better = key < best
            best = np.where(better, key, best)
            choice = np.where(better, index, choice)
        self._pillar_choice = choice.astype(np.int16)
        self._pillar_tuples = pillars

    def _build_optimized(self) -> None:
        cfg = self.config
        for coord in self.coords():
            router = Router(
                coord, cfg.num_vcs, cfg.vc_depth, stats=self.stats,
                tracer=self.tracer,
            )
            router.vc_split = cfg.vc_split
            self.routers[coord] = router
            self.engine.register(router)

        # Mesh links within each layer.  Multi-cycle links share one
        # calendar-ring pipeline for the whole network.
        pipeline = None
        if cfg.link_latency >= 2:
            pipeline = LinkPipeline(self.engine, cfg.link_latency)
            self.engine.register(pipeline)
        self._link_pipeline = pipeline
        for coord, router in self.routers.items():
            east = Coord(coord.x + 1, coord.y, coord.z)
            if east in self.routers:
                connect(self.engine, router, Port.EAST,
                        self.routers[east], Port.WEST, cfg.link_latency,
                        pipeline=pipeline)
                connect(self.engine, self.routers[east], Port.WEST,
                        router, Port.EAST, cfg.link_latency,
                        pipeline=pipeline)
            north = Coord(coord.x, coord.y + 1, coord.z)
            if north in self.routers:
                connect(self.engine, router, Port.NORTH,
                        self.routers[north], Port.SOUTH, cfg.link_latency,
                        pipeline=pipeline)
                connect(self.engine, self.routers[north], Port.SOUTH,
                        router, Port.NORTH, cfg.link_latency,
                        pipeline=pipeline)

        # NICs at every node.
        for coord, router in self.routers.items():
            nic = NetworkInterface(
                self.engine, router, on_packet=self._on_packet,
                stats=self.stats, pool=self.flit_pool,
                tracer=self.tracer,
            )
            self.nics[coord] = nic
            self.engine.register(nic)

        self._build_pillars(event_scheduling=False)

    def _build_reference(self) -> None:
        from repro.noc.reference import (  # local import: oracle only
            ReferenceNetworkInterface,
            ReferenceRouter,
            reference_connect,
        )

        cfg = self.config
        for coord in self.coords():
            router = ReferenceRouter(
                coord, cfg.num_vcs, cfg.vc_depth, stats=self.stats
            )
            router.vc_split = cfg.vc_split
            self.routers[coord] = router
            self.engine.register(router)

        self._link_pipeline = None
        for coord, router in self.routers.items():
            east = Coord(coord.x + 1, coord.y, coord.z)
            if east in self.routers:
                reference_connect(self.engine, router, Port.EAST,
                                  self.routers[east], Port.WEST,
                                  cfg.link_latency)
                reference_connect(self.engine, self.routers[east], Port.WEST,
                                  router, Port.EAST, cfg.link_latency)
            north = Coord(coord.x, coord.y + 1, coord.z)
            if north in self.routers:
                reference_connect(self.engine, router, Port.NORTH,
                                  self.routers[north], Port.SOUTH,
                                  cfg.link_latency)
                reference_connect(self.engine, self.routers[north], Port.SOUTH,
                                  router, Port.NORTH, cfg.link_latency)

        for coord, router in self.routers.items():
            nic = ReferenceNetworkInterface(
                self.engine, router, on_packet=self._on_packet,
                stats=self.stats,
            )
            self.nics[coord] = nic
            self.engine.register(nic)

        self._build_pillars(event_scheduling=True)

    def _build_pillars(self, event_scheduling: bool) -> None:
        cfg = self.config
        if cfg.layers > 1:
            from repro.dtdma.bus import PillarBus  # local import: avoid cycle

            for xy in cfg.pillar_locations:
                pillar_routers = {
                    z: self.routers[Coord(xy[0], xy[1], z)]
                    for z in range(cfg.layers)
                }
                bus = PillarBus(
                    self.engine, xy, pillar_routers, stats=self.stats,
                    event_scheduling=event_scheduling,
                    tracer=self.tracer,
                )
                self.pillars[xy] = bus
                self.engine.register(bus)

    def coords(self) -> Iterator[Coord]:
        cfg = self.config
        for z in range(cfg.layers):
            for y in range(cfg.height):
                for x in range(cfg.width):
                    yield Coord(x, y, z)

    # -- fault tolerance ----------------------------------------------------

    def attach_fault_state(self, state: "FaultState") -> None:
        """Wire a live fault map through the fabric.

        Routers consult it for fault-aware routing and jam checks,
        :meth:`send` for pillar selection, and its lost-packet hook
        drains this network's in-flight accounting.  Only called when a
        non-empty fault schedule is installed — fault-free runs never
        carry the state, so they stay bit-identical to the pre-fault
        fabric.
        """
        if self.fabric is FabricKind.REFERENCE:
            raise ValueError(
                "fault injection requires the optimized fabric; the frozen "
                "reference is the zero-fault differential oracle"
            )
        if self.fabric is FabricKind.VECTOR:
            raise ValueError(
                "pillar/link/router_port faults require fabric='optimized' "
                "(the vector fabric batches router and pillar state and "
                "honors only bank faults)"
            )
        self._faults = state
        state.on_packet_lost = self._on_packet_lost
        state.add_listener(self._on_fault_change)
        for router in self.routers.values():
            router._faults = state

    def _on_fault_change(self, kind: str, target: tuple, phase: str) -> None:
        # Mesh topology changed under the routers' feet: their
        # blocked-evaluate caches may encode decisions (jammed port,
        # dead link) that no longer hold, so drop them and re-arm.
        if kind in ("link", "router_port"):
            for router in self.routers.values():
                router._eval_cached = False
                router.wake()

    def _on_packet_lost(self, packet: Packet) -> None:
        self._in_flight -= 1
        self._completed += 1
        self._retire_age(packet)

    # -- traffic -------------------------------------------------------------

    def add_packet_callback(self, callback: Callable[[Packet], None]) -> None:
        self._packet_callbacks.append(callback)

    def _on_packet(self, packet: Packet) -> None:
        self._in_flight -= 1
        self._completed += 1
        self._retire_age(packet)
        for callback in self._packet_callbacks:
            callback(packet)

    def _retire_age(self, packet: Packet) -> None:
        if self._vector is not None:
            return  # the fabric's side table tracks ages
        self._inflight_created_sum -= packet.created_cycle
        ring = self._age_ring
        while ring and (ring[0].ejected_cycle is not None or ring[0].lost):
            ring.popleft()

    def send(
        self,
        src: Coord,
        dest: Coord,
        size_flits: Optional[int] = None,
        message_class: MessageClass = MessageClass.SYNTHETIC,
        payload: object = None,
    ) -> Packet:
        """Create and inject a packet from ``src`` to ``dest``.

        With faults installed, inter-layer packets route via the best
        *surviving* pillar; if none survives the packet is refused at
        the boundary — returned with ``lost=True``, counted under
        ``faults.unreachable``, and never injected — so callers observe
        accounted loss instead of a hang.
        """
        if src == dest:
            raise ValueError("source and destination must differ")
        if self._vector is not None:
            if not (self._valid_coord(src) and self._valid_coord(dest)):
                raise ValueError(f"unknown endpoint {src} or {dest}")
        elif src not in self.nics or dest not in self.routers:
            raise ValueError(f"unknown endpoint {src} or {dest}")
        faults = self._faults
        pillar_xy = None
        if src.z != dest.z and self._vector is not None:
            # Fault-free by construction (the vector fabric refuses
            # mesh/pillar fault schedules), so the precomputed table is
            # always valid.
            width = self.config.width
            pillar_xy = self._pillar_tuples[
                self._pillar_choice[
                    src.y * width + src.x, dest.y * width + dest.x
                ]
            ]
        elif src.z != dest.z:
            pillars = list(self.config.pillar_locations)
            if faults is not None and faults.dead_pillars:
                pillars = [
                    pillar for pillar in pillars
                    if pillar not in faults.dead_pillars
                ]
                if not pillars:
                    packet = Packet(
                        src,
                        dest,
                        size_flits or self.config.packet_flits,
                        message_class,
                        None,
                        payload,
                        ids=self.ids,
                    )
                    faults.packet_unreachable(packet, in_network=False)
                    return packet
            pillar_xy = best_pillar(src, dest, pillars)
        packet = Packet(
            src,
            dest,
            size_flits or self.config.packet_flits,
            message_class,
            pillar_xy,
            payload,
            ids=self.ids,
        )
        self._in_flight += 1
        if self._vector is not None:
            # The fabric's SoA side table handles age accounting.
            self._vector.inject(packet)
        else:
            self.nics[src].inject(packet)
            self._age_ring.append(packet)
            self._inflight_created_sum += packet.created_cycle
        return packet

    def try_send_batch(self, src_index, dest_index, size_flits=None):
        """Batched object-free injection; ``None`` when unavailable.

        ``src_index``/``dest_index`` are parallel integer arrays of flat
        node indexes (the :meth:`coords` order) with ``src != dest``
        elementwise.  Only the vector fabric supports it, and only while
        no packet callbacks are registered (callbacks receive ``Packet``
        objects, which this path never creates) — callers fall back to
        scalar :meth:`send` on ``None``.
        """
        if self._vector is None or self._packet_callbacks:
            return None
        count = self._vector.inject_batch(
            src_index, dest_index, size_flits or self.config.packet_flits
        )
        self._in_flight += count
        return count

    def _on_packet_light(self) -> None:
        """Delivery of a batch-injected packet (no object, no callbacks)."""
        self._in_flight -= 1
        self._completed += 1

    def _on_packet_light_batch(self, count: int) -> None:
        """Bulk form of :meth:`_on_packet_light` for the vector fabric."""
        self._in_flight -= count
        self._completed += count

    def _valid_coord(self, coord: Coord) -> bool:
        cfg = self.config
        return (
            0 <= coord.x < cfg.width
            and 0 <= coord.y < cfg.height
            and 0 <= coord.z < cfg.layers
        )

    @property
    def in_flight(self) -> int:
        """Packets injected but not yet fully ejected."""
        return self._in_flight

    @property
    def completed_packets(self) -> int:
        """Packets that finished — delivered or dropped by a fault."""
        return self._completed

    @property
    def vector_fabric(self):
        """The batched SoA component, or ``None`` on object fabrics."""
        return self._vector

    def quiesce(self, max_cycles: int = 1_000_000) -> int:
        """Run the clock until every in-flight packet is delivered."""
        return self.engine.run_until(
            lambda: self._in_flight == 0, max_cycles=max_cycles
        )

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Deliver every in-flight packet with injection stopped.

        Returns the number of cycles the drain took.  Callers must have
        silenced their traffic sources first (e.g. set a generator's
        ``injection_rate`` to 0); the network itself injects nothing.
        Raises :class:`~repro.sim.engine.SimulationStallError` if the
        backlog fails to empty within ``max_cycles`` — a saturated mesh
        holds a large post-pillar backlog (see DESIGN.md "Saturation and
        drain behaviour") but always drains; a non-converging drain is a
        flow-control bug.
        """
        start = self.engine.cycle
        self.quiesce(max_cycles=max_cycles)
        return self.engine.cycle - start

    # -- reporting -------------------------------------------------------------

    def mean_packet_latency(self) -> float:
        """Mean end-to-end packet latency (all NICs share one histogram)."""
        hist = self.stats.scope("nic").histogram("packet_latency")
        return hist.mean

    def delivered_fraction(self) -> float:
        """Delivered share of all packets ever injected (1.0 when empty).

        The complement of the latency histogram's survivorship bias: at
        saturation the histogram covers only the few packets that made
        it out, while this ratio exposes the stuck majority.
        """
        total = self._completed + self._in_flight
        if total == 0:
            return 1.0
        delivered = self.stats.scope("nic").counter("packets_received").value
        return delivered / total

    def in_flight_ages(self) -> dict:
        """Age summary of packets injected but not yet delivered.

        Returns ``{"count", "mean_age", "max_age"}`` in cycles as of the
        engine's current cycle.  Together with
        :meth:`delivered_fraction` this is the unbiased view of a
        congested run: delivered-only latency falls at saturation while
        these ages grow without bound.
        """
        if self._vector is not None:
            return self._vector.in_flight_ages()
        now = self.engine.cycle
        ring = self._age_ring
        while ring and (ring[0].ejected_cycle is not None or ring[0].lost):
            ring.popleft()
        count = self._in_flight
        if count == 0 or not ring:
            return {"count": count, "mean_age": 0.0, "max_age": 0}
        mean = (now * count - self._inflight_created_sum) / count
        return {
            "count": count,
            "mean_age": mean,
            "max_age": now - ring[0].created_cycle,
        }

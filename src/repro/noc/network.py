"""Network assembly: 3D mesh-plus-pillars fabric construction.

Builds the complete interconnect of the Network-in-Memory architecture:
one wormhole mesh per device layer, a NIC at every node, and a dTDMA bus
pillar at each configured pillar location bridging all layers.  A
single-layer configuration (no pillars) is the conventional 2D NUCA
network the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TYPE_CHECKING

from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.fabric import FABRIC_NAMES, FabricKind
from repro.noc.flit import IdScope
from repro.noc.link import LinkPipeline
from repro.noc.packet import FlitPool, Packet, MessageClass
from repro.noc.router import Router, connect
from repro.noc.routing import Coord, Port, best_pillar
from repro.noc.interface import NetworkInterface

if TYPE_CHECKING:
    from repro.faults.state import FaultState

# Backwards-compatible alias; FabricKind.parse is the validator now.
FABRICS = FABRIC_NAMES


@dataclass
class NetworkConfig:
    """Parameters of the interconnect fabric (paper Table 4 defaults)."""

    width: int = 16          # mesh columns (x) per layer
    height: int = 8          # mesh rows (y) per layer
    layers: int = 2          # device layers
    pillar_locations: tuple[tuple[int, int], ...] = ()
    num_vcs: int = 3         # virtual channels per physical channel
    vc_depth: int = 4        # flits per VC (one 4-flit message)
    # Mesh link traversal: one cycle in the router plus one on the wire.
    # At 70 nm a 64 KB bank tile is ~1.5 mm across, so the inter-router
    # wire is a full clock cycle — unlike the 10 um inter-layer vias,
    # whose traversal is folded into the dTDMA bus slot.  This asymmetry
    # is the physical basis of the 3D advantage.
    link_latency: int = 2
    flit_bits: int = 128     # link width
    packet_flits: int = 4    # flits per cache-line packet (64 B line)

    def validate(self) -> None:
        if self.width < 1 or self.height < 1 or self.layers < 1:
            raise ValueError("network dimensions must be positive")
        if self.layers > 1 and not self.pillar_locations:
            raise ValueError("multi-layer networks require pillars")
        for x, y in self.pillar_locations:
            if not (0 <= x < self.width and 0 <= y < self.height):
                raise ValueError(f"pillar ({x},{y}) outside the mesh")
        if len(set(self.pillar_locations)) != len(self.pillar_locations):
            raise ValueError("duplicate pillar locations")

    @property
    def nodes_per_layer(self) -> int:
        return self.width * self.height

    @property
    def total_nodes(self) -> int:
        return self.nodes_per_layer * self.layers


class Network:
    """The full interconnect: routers, links, NICs, and pillars.

    The network owns its :class:`~repro.sim.engine.Engine` unless one is
    passed in (so cache/CPU models can share the clock).
    """

    def __init__(
        self,
        config: NetworkConfig,
        engine: Optional[Engine] = None,
        stats: Optional[StatsRegistry] = None,
        activity_tracking: bool = True,
        fabric: "FabricKind | str" = FabricKind.OPTIMIZED,
        tracer: Optional[Tracer] = None,
    ):
        config.validate()
        self.config = config
        self.fabric = FabricKind.parse(fabric)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # ``activity_tracking`` selects the kernel for a self-owned engine
        # (ignored when an engine is supplied): the activity-tracked kernel
        # skips quiescent routers/NICs/pillars and produces bit-identical
        # results to the naive one.  ``fabric`` selects between the
        # allocation-free hot path ("optimized") and the frozen naive
        # implementation ("reference") that the differential test compares
        # it against; both produce bit-identical results.
        self.engine = engine or Engine("network", activity_tracking=activity_tracking)
        self.stats = stats or StatsRegistry("network")
        # Per-network id scope: packet/flit id sequences restart at zero
        # for every Network, so back-to-back simulations in one process
        # produce identical traces.
        self.ids = IdScope()
        self.flit_pool: Optional[FlitPool] = (
            FlitPool() if self.fabric is FabricKind.OPTIMIZED else None
        )
        self.routers: dict[Coord, Router] = {}
        self.nics: dict[Coord, NetworkInterface] = {}
        self.pillars: dict[tuple[int, int], "PillarBus"] = {}
        self._packet_callbacks: list[Callable[[Packet], None]] = []
        self._in_flight = 0
        # Monotonic count of packets that finished (delivered or lost);
        # the liveness watchdog's primary progress signal.
        self._completed = 0
        # Live fault map; stays None unless a fault schedule is
        # installed, keeping every fault check a single is-None branch.
        self._faults: Optional["FaultState"] = None
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        if self.fabric is FabricKind.REFERENCE:
            self._build_reference()
        else:
            self._build_optimized()

    def _build_optimized(self) -> None:
        cfg = self.config
        for coord in self.coords():
            router = Router(
                coord, cfg.num_vcs, cfg.vc_depth, stats=self.stats,
                tracer=self.tracer,
            )
            self.routers[coord] = router
            self.engine.register(router)

        # Mesh links within each layer.  Multi-cycle links share one
        # calendar-ring pipeline for the whole network.
        pipeline = None
        if cfg.link_latency >= 2:
            pipeline = LinkPipeline(self.engine, cfg.link_latency)
            self.engine.register(pipeline)
        self._link_pipeline = pipeline
        for coord, router in self.routers.items():
            east = Coord(coord.x + 1, coord.y, coord.z)
            if east in self.routers:
                connect(self.engine, router, Port.EAST,
                        self.routers[east], Port.WEST, cfg.link_latency,
                        pipeline=pipeline)
                connect(self.engine, self.routers[east], Port.WEST,
                        router, Port.EAST, cfg.link_latency,
                        pipeline=pipeline)
            north = Coord(coord.x, coord.y + 1, coord.z)
            if north in self.routers:
                connect(self.engine, router, Port.NORTH,
                        self.routers[north], Port.SOUTH, cfg.link_latency,
                        pipeline=pipeline)
                connect(self.engine, self.routers[north], Port.SOUTH,
                        router, Port.NORTH, cfg.link_latency,
                        pipeline=pipeline)

        # NICs at every node.
        for coord, router in self.routers.items():
            nic = NetworkInterface(
                self.engine, router, on_packet=self._on_packet,
                stats=self.stats, pool=self.flit_pool,
                tracer=self.tracer,
            )
            self.nics[coord] = nic
            self.engine.register(nic)

        self._build_pillars(event_scheduling=False)

    def _build_reference(self) -> None:
        from repro.noc.reference import (  # local import: oracle only
            ReferenceNetworkInterface,
            ReferenceRouter,
            reference_connect,
        )

        cfg = self.config
        for coord in self.coords():
            router = ReferenceRouter(
                coord, cfg.num_vcs, cfg.vc_depth, stats=self.stats
            )
            self.routers[coord] = router
            self.engine.register(router)

        self._link_pipeline = None
        for coord, router in self.routers.items():
            east = Coord(coord.x + 1, coord.y, coord.z)
            if east in self.routers:
                reference_connect(self.engine, router, Port.EAST,
                                  self.routers[east], Port.WEST,
                                  cfg.link_latency)
                reference_connect(self.engine, self.routers[east], Port.WEST,
                                  router, Port.EAST, cfg.link_latency)
            north = Coord(coord.x, coord.y + 1, coord.z)
            if north in self.routers:
                reference_connect(self.engine, router, Port.NORTH,
                                  self.routers[north], Port.SOUTH,
                                  cfg.link_latency)
                reference_connect(self.engine, self.routers[north], Port.SOUTH,
                                  router, Port.NORTH, cfg.link_latency)

        for coord, router in self.routers.items():
            nic = ReferenceNetworkInterface(
                self.engine, router, on_packet=self._on_packet,
                stats=self.stats,
            )
            self.nics[coord] = nic
            self.engine.register(nic)

        self._build_pillars(event_scheduling=True)

    def _build_pillars(self, event_scheduling: bool) -> None:
        cfg = self.config
        if cfg.layers > 1:
            from repro.dtdma.bus import PillarBus  # local import: avoid cycle

            for xy in cfg.pillar_locations:
                pillar_routers = {
                    z: self.routers[Coord(xy[0], xy[1], z)]
                    for z in range(cfg.layers)
                }
                bus = PillarBus(
                    self.engine, xy, pillar_routers, stats=self.stats,
                    event_scheduling=event_scheduling,
                    tracer=self.tracer,
                )
                self.pillars[xy] = bus
                self.engine.register(bus)

    def coords(self) -> Iterator[Coord]:
        cfg = self.config
        for z in range(cfg.layers):
            for y in range(cfg.height):
                for x in range(cfg.width):
                    yield Coord(x, y, z)

    # -- fault tolerance ----------------------------------------------------

    def attach_fault_state(self, state: "FaultState") -> None:
        """Wire a live fault map through the fabric.

        Routers consult it for fault-aware routing and jam checks,
        :meth:`send` for pillar selection, and its lost-packet hook
        drains this network's in-flight accounting.  Only called when a
        non-empty fault schedule is installed — fault-free runs never
        carry the state, so they stay bit-identical to the pre-fault
        fabric.
        """
        if self.fabric is FabricKind.REFERENCE:
            raise ValueError(
                "fault injection requires the optimized fabric; the frozen "
                "reference is the zero-fault differential oracle"
            )
        self._faults = state
        state.on_packet_lost = self._on_packet_lost
        state.add_listener(self._on_fault_change)
        for router in self.routers.values():
            router._faults = state

    def _on_fault_change(self, kind: str, target: tuple, phase: str) -> None:
        # Mesh topology changed under the routers' feet: their
        # blocked-evaluate caches may encode decisions (jammed port,
        # dead link) that no longer hold, so drop them and re-arm.
        if kind in ("link", "router_port"):
            for router in self.routers.values():
                router._eval_cached = False
                router.wake()

    def _on_packet_lost(self, packet: Packet) -> None:
        self._in_flight -= 1
        self._completed += 1

    # -- traffic -------------------------------------------------------------

    def add_packet_callback(self, callback: Callable[[Packet], None]) -> None:
        self._packet_callbacks.append(callback)

    def _on_packet(self, packet: Packet) -> None:
        self._in_flight -= 1
        self._completed += 1
        for callback in self._packet_callbacks:
            callback(packet)

    def send(
        self,
        src: Coord,
        dest: Coord,
        size_flits: Optional[int] = None,
        message_class: MessageClass = MessageClass.SYNTHETIC,
        payload: object = None,
    ) -> Packet:
        """Create and inject a packet from ``src`` to ``dest``.

        With faults installed, inter-layer packets route via the best
        *surviving* pillar; if none survives the packet is refused at
        the boundary — returned with ``lost=True``, counted under
        ``faults.unreachable``, and never injected — so callers observe
        accounted loss instead of a hang.
        """
        if src == dest:
            raise ValueError("source and destination must differ")
        if src not in self.nics or dest not in self.routers:
            raise ValueError(f"unknown endpoint {src} or {dest}")
        faults = self._faults
        pillar_xy = None
        if src.z != dest.z:
            pillars = list(self.config.pillar_locations)
            if faults is not None and faults.dead_pillars:
                pillars = [
                    pillar for pillar in pillars
                    if pillar not in faults.dead_pillars
                ]
                if not pillars:
                    packet = Packet(
                        src,
                        dest,
                        size_flits or self.config.packet_flits,
                        message_class,
                        None,
                        payload,
                        ids=self.ids,
                    )
                    faults.packet_unreachable(packet, in_network=False)
                    return packet
            pillar_xy = best_pillar(src, dest, pillars)
        packet = Packet(
            src,
            dest,
            size_flits or self.config.packet_flits,
            message_class,
            pillar_xy,
            payload,
            ids=self.ids,
        )
        self._in_flight += 1
        self.nics[src].inject(packet)
        return packet

    @property
    def in_flight(self) -> int:
        """Packets injected but not yet fully ejected."""
        return self._in_flight

    @property
    def completed_packets(self) -> int:
        """Packets that finished — delivered or dropped by a fault."""
        return self._completed

    def quiesce(self, max_cycles: int = 1_000_000) -> int:
        """Run the clock until every in-flight packet is delivered."""
        return self.engine.run_until(
            lambda: self._in_flight == 0, max_cycles=max_cycles
        )

    # -- reporting -------------------------------------------------------------

    def mean_packet_latency(self) -> float:
        """Mean end-to-end packet latency (all NICs share one histogram)."""
        hist = self.stats.scope("nic").histogram("packet_latency")
        return hist.mean

"""Frozen pre-optimisation fabric: the bit-exactness oracle for the hot path.

This module is a verbatim copy of the wormhole router, link wiring, and NIC
as they stood *before* the allocation-free hot-path rewrite (cached route
tables, link/credit pipelines, flit pooling).  It is deliberately naive:
per-hop heap events with closure callbacks, per-cycle list/set allocation
in ``evaluate``, enum-property ``is_head``/``is_tail`` chains.

Do not "improve" this code.  Its entire value is that it does not change:
``tests/integration/test_noc_differential.py`` builds one network from this
module and one from the optimized ``repro.noc`` classes and asserts
bit-identical packet counts, latencies, counters, and histograms.  After
touching anything in ``repro.noc`` or the dTDMA bus hot path, re-run that
test (all three injection rates) to re-verify exactness.

Select it end to end with ``Network(..., fabric="reference")``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, TYPE_CHECKING

from repro.sim.engine import ClockedComponent, Engine
from repro.sim.stats import StatsRegistry
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.routing import Coord, Port, dimension_order_route

if TYPE_CHECKING:
    pass


class ReferenceInputVC:
    """One virtual-channel FIFO of an input port, plus its routing state."""

    __slots__ = ("buffer", "depth", "route_port", "out_vc")

    def __init__(self, depth: int):
        self.buffer: deque[Flit] = deque()
        self.depth = depth
        # Allocated output port / downstream VC for the packet currently
        # occupying this VC; cleared when its tail flit departs.
        self.route_port: Optional[Port] = None
        self.out_vc: Optional[int] = None

    @property
    def head(self) -> Optional[Flit]:
        return self.buffer[0] if self.buffer else None

    @property
    def occupancy(self) -> int:
        return len(self.buffer)


class ReferenceInputPort:
    """Buffered input side of a physical channel (frozen copy)."""

    def __init__(self, num_vcs: int, depth: int):
        self.vcs = [ReferenceInputVC(depth) for __ in range(num_vcs)]
        self.depth = depth
        self.credit_return: Optional[Callable[[int], None]] = None
        self.owner: Optional["ReferenceRouter"] = None

    def accept(self, flit: Flit, vc: int) -> None:
        """Deposit a flit into virtual channel ``vc`` (called by the link)."""
        buffer = self.vcs[vc].buffer
        if len(buffer) >= self.depth:
            raise RuntimeError(
                f"input VC overflow (vc={vc}): credit protocol violated"
            )
        buffer.append(flit)
        owner = self.owner
        if owner is not None:
            owner._buffered += 1
            owner.wake()


class ReferenceOutputPort:
    """Credit-tracking output side of a physical channel (frozen copy)."""

    def __init__(
        self,
        port: Port,
        num_vcs: int,
        downstream_depth: int,
        deliver: Callable[[Flit, int], None],
    ):
        self.port = port
        self.num_vcs = num_vcs
        self.vc_busy = [False] * num_vcs
        self.credits = [downstream_depth] * num_vcs
        self.deliver = deliver

    def free_vc(
        self, preferred: int = 0, lo: int = 0, hi: Optional[int] = None
    ) -> Optional[int]:
        """A downstream VC in ``[lo, hi)`` that is unallocated and has
        buffer space (the window is the packet's VC class)."""
        if hi is None:
            hi = self.num_vcs
        span = hi - lo
        for offset in range(span):
            vc = lo + (preferred + offset) % span
            if not self.vc_busy[vc] and self.credits[vc] > 0:
                return vc
        return None

    def return_credit(self, vc: int) -> None:
        self.credits[vc] += 1

    def send(self, flit: Flit, vc: int) -> None:
        """Consume a credit and push the flit onto the link."""
        if self.credits[vc] <= 0:
            raise RuntimeError(f"credit underflow on {self.port} vc={vc}")
        self.credits[vc] -= 1
        if flit.is_head:
            self.vc_busy[vc] = True
        if flit.is_tail:
            self.vc_busy[vc] = False
        self.deliver(flit, vc)


class ReferenceRouter(ClockedComponent):
    """The pre-rewrite mesh router: recomputed routes, per-cycle allocation.

    Every ``evaluate`` allocates a fresh grants list, two sets, a port list
    and its two rotation slices, and recomputes dimension-order routing for
    each head flit — exactly the behaviour the optimized router must match
    bit for bit while doing none of that work.
    """

    def __init__(
        self,
        coord: Coord,
        num_vcs: int = 3,
        vc_depth: int = 4,
        stats: Optional[StatsRegistry] = None,
    ):
        self.coord = coord
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.stats = stats or StatsRegistry(f"router{coord}")
        self.input_ports: dict[Port, ReferenceInputPort] = {}
        self.output_ports: dict[Port, ReferenceOutputPort] = {}
        # Grants decided in evaluate(), committed in advance():
        # list of (input_port, vc_index, output_port_obj, out_vc)
        self._grants: list[tuple[Port, int, ReferenceOutputPort, int]] = []
        self._rr_offset = 0
        self._buffered = 0
        # Multi-layer VC class partition (set by Network from
        # NetworkConfig.vc_split); part of the wormhole protocol, so the
        # oracle carries it too — without it the fabric deadlocks on the
        # inter-layer credit cycle and so would the oracle.
        self.vc_split = 0
        scope = self.stats.scope(f"router{coord}")
        self._forwarded = scope.counter("flits_forwarded")
        self._blocked = scope.counter("cycles_blocked")

    # -- wiring ----------------------------------------------------------

    def add_input_port(self, port: Port) -> ReferenceInputPort:
        input_port = ReferenceInputPort(self.num_vcs, self.vc_depth)
        input_port.owner = self
        self.input_ports[port] = input_port
        return input_port

    def add_output_port(
        self,
        port: Port,
        downstream_depth: int,
        deliver: Callable[[Flit, int], None],
    ) -> ReferenceOutputPort:
        output_port = ReferenceOutputPort(
            port, self.num_vcs, downstream_depth, deliver
        )
        self.output_ports[port] = output_port
        return output_port

    @property
    def ports(self) -> set[Port]:
        return set(self.input_ports) | set(self.output_ports)

    def buffered_flits(self) -> int:
        """Total flits resident in this router's input buffers."""
        return sum(
            vc.occupancy
            for input_port in self.input_ports.values()
            for vc in input_port.vcs
        )

    def is_idle(self) -> bool:
        """Idle iff no input VC holds a flit and no grant is pending."""
        return self._buffered == 0 and not self._grants

    # -- routing ---------------------------------------------------------

    def _route(self, packet: "Packet") -> Port:
        return dimension_order_route(self.coord, packet.dest, packet.pillar_xy)

    # -- per-cycle operation ----------------------------------------------

    def evaluate(self, cycle: int) -> None:
        self._grants = []
        granted_outputs: set[Port] = set()
        granted_inputs: set[Port] = set()
        port_list = list(self.input_ports.items())
        if not port_list:
            return
        # Rotate arbitration priority so no input port starves.  Derived
        # from the cycle number (not a tick count) so the rotation is
        # identical whether or not idle cycles were skipped.
        self._rr_offset = (cycle + 1) % len(port_list)
        ordered = port_list[self._rr_offset:] + port_list[: self._rr_offset]
        any_blocked = False
        for port_name, input_port in ordered:
            if port_name in granted_inputs:
                continue
            for vc_index, vc in enumerate(input_port.vcs):
                head = vc.head
                if head is None:
                    continue
                if head.is_head and vc.route_port is None:
                    vc.route_port = self._route(head.packet)
                output_port = self.output_ports.get(vc.route_port)
                if output_port is None:
                    raise RuntimeError(
                        f"router {self.coord}: no output port "
                        f"{vc.route_port} for {head.packet}"
                    )
                if output_port.port in granted_outputs:
                    any_blocked = True
                    continue
                if head.is_head and vc.out_vc is None:
                    if self.vc_split and head.packet.dest.z != self.coord.z:
                        lo, hi = 0, self.vc_split
                    elif self.vc_split:
                        lo, hi = self.vc_split, self.num_vcs
                    else:
                        lo, hi = 0, self.num_vcs
                    out_vc = output_port.free_vc(
                        preferred=vc_index, lo=lo, hi=hi
                    )
                    if out_vc is None:
                        any_blocked = True
                        continue
                    vc.out_vc = out_vc
                if output_port.credits[vc.out_vc] <= 0:
                    any_blocked = True
                    continue
                self._grants.append(
                    (port_name, vc_index, output_port, vc.out_vc)
                )
                granted_outputs.add(output_port.port)
                granted_inputs.add(port_name)
                break  # one flit per input port per cycle
        if any_blocked:
            self._blocked.increment()

    def advance(self, cycle: int) -> None:
        for port_name, vc_index, output_port, out_vc in self._grants:
            input_port = self.input_ports[port_name]
            vc = input_port.vcs[vc_index]
            flit = vc.buffer.popleft()
            self._buffered -= 1
            if flit.is_tail:
                vc.route_port = None
                vc.out_vc = None
            output_port.send(flit, out_vc)
            if input_port.credit_return is not None:
                input_port.credit_return(vc_index)
            self._forwarded.increment()
        self._grants = []


def reference_connect(
    engine: Engine,
    upstream: ReferenceRouter,
    up_port: Port,
    downstream: ReferenceRouter,
    down_port: Port,
    link_latency: int = 1,
) -> None:
    """Frozen link wiring: two heap events + two closures per forwarded flit."""
    input_port = downstream.add_input_port(down_port)

    def deliver(flit: Flit, vc: int) -> None:
        engine.schedule(link_latency, lambda: input_port.accept(flit, vc))

    output_port = upstream.add_output_port(
        up_port, downstream_depth=downstream.vc_depth, deliver=deliver
    )

    def credit_return(vc: int) -> None:
        engine.schedule(1, lambda: output_port.return_credit(vc))

    input_port.credit_return = credit_return


class ReferenceNetworkInterface(ClockedComponent):
    """The pre-rewrite NIC: event-scheduled injection link, fresh flits."""

    def __init__(
        self,
        engine: Engine,
        router: ReferenceRouter,
        on_packet: Optional[Callable[[Packet], None]] = None,
        stats: Optional[StatsRegistry] = None,
    ):
        self.engine = engine
        self.router = router
        self.on_packet = on_packet
        self.stats = stats or StatsRegistry(f"nic{router.coord}")
        self._inject_queue: deque[Packet] = deque()
        self._current_flits: deque[Flit] = deque()
        self._current_vc: Optional[int] = None
        self._ejected_packets: list[Packet] = []
        scope = self.stats.scope("nic")
        self._latency_hist = scope.histogram("packet_latency")
        self._injected = scope.counter("packets_injected")
        self._received = scope.counter("packets_received")

        # Injection path: NIC output -> router LOCAL input.
        local_input = router.add_input_port(Port.LOCAL)

        def deliver(flit: Flit, vc: int) -> None:
            engine.schedule(1, lambda: local_input.accept(flit, vc))

        self._output = ReferenceOutputPort(
            Port.LOCAL, router.num_vcs, router.vc_depth, deliver
        )

        def credit_return(vc: int) -> None:
            engine.schedule(1, lambda: self._output.return_credit(vc))

        local_input.credit_return = credit_return

        # Ejection path: router LOCAL output -> NIC sink (always accepts).
        router.add_output_port(
            Port.LOCAL, downstream_depth=1_000_000, deliver=self._eject
        )

    # -- injection --------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Queue a packet for transmission; latency clock starts now."""
        packet.created_cycle = self.engine.cycle
        self._inject_queue.append(packet)
        self.wake()

    @property
    def pending_injections(self) -> int:
        return len(self._inject_queue) + len(self._current_flits)

    def is_idle(self) -> bool:
        return not self._current_flits and not self._inject_queue

    def evaluate(self, cycle: int) -> None:
        pass

    def advance(self, cycle: int) -> None:
        if not self._current_flits:
            if not self._inject_queue:
                return
            vc = self._output.free_vc()
            if vc is None:
                return
            packet = self._inject_queue.popleft()
            packet.injected_cycle = cycle
            self._current_flits = deque(packet.make_flits())
            self._current_vc = vc
            self._injected.increment()
        if self._output.credits[self._current_vc] > 0:
            flit = self._current_flits.popleft()
            flit.injected_cycle = cycle
            self._output.send(flit, self._current_vc)
            if not self._current_flits:
                self._current_vc = None

    # -- ejection ---------------------------------------------------------

    def _eject(self, flit: Flit, vc: int) -> None:
        if flit.is_tail:
            packet = flit.packet
            packet.ejected_cycle = self.engine.cycle
            self._received.increment()
            if packet.latency is not None:
                self._latency_hist.add(packet.latency)
            self._ejected_packets.append(packet)
            if self.on_packet is not None:
                self.on_packet(packet)

    def drain_ejected(self) -> list[Packet]:
        """Return and clear the list of completed packets."""
        packets, self._ejected_packets = self._ejected_packets, []
        return packets

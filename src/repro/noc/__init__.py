"""Cycle-accurate wormhole network-on-chip substrate.

Implements the network fabric the paper builds on: a 2D mesh per device
layer with single-stage speculative routers (1-cycle), 3 virtual channels
per physical channel, 4-flit packets of 128-bit flits, credit-based flow
control, and dimension-order routing.  The third dimension is provided not
by extra mesh links but by dTDMA bus pillars (:mod:`repro.dtdma`) attached
to a subset of routers via a sixth physical channel.
"""

from repro.noc.flit import Flit, FlitType
from repro.noc.packet import Packet, MessageClass
from repro.noc.routing import Coord, Port, OPPOSITE_PORT, dimension_order_route
from repro.noc.router import Router, InputVC, OutputPort
from repro.noc.link import Link
from repro.noc.interface import NetworkInterface
from repro.noc.network import Network, NetworkConfig
from repro.noc.traffic import (
    TrafficGenerator,
    UniformRandomTraffic,
    HotspotTraffic,
    TransposeTraffic,
)

__all__ = [
    "Flit",
    "FlitType",
    "Packet",
    "MessageClass",
    "Coord",
    "Port",
    "OPPOSITE_PORT",
    "dimension_order_route",
    "Router",
    "InputVC",
    "OutputPort",
    "Link",
    "NetworkInterface",
    "Network",
    "NetworkConfig",
    "TrafficGenerator",
    "UniformRandomTraffic",
    "HotspotTraffic",
    "TransposeTraffic",
]

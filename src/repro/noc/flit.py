"""Flit: the unit of network transfer.

Packets are segmented into flits for wormhole switching.  The paper uses
128-bit flits and 4-flit packets so that one 64-byte cache line fits in a
single packet.

Hot-path notes: ``is_head``/``is_tail`` are plain attributes computed once
at construction (the router checks them per flit per hop, so an enum
property chain there is measurable), and ids are drawn from a per-network
:class:`IdScope` so back-to-back simulations in one process produce
identical flit ids and reprs.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.noc.packet import Packet


class IdScope:
    """Flit/packet id counters scoped to one network instance.

    A module-global ``itertools.count()`` would make ids depend on every
    simulation run earlier in the process, breaking trace diffing and the
    sweep orchestrator's in-process reruns.  Each :class:`~repro.noc.network.Network`
    owns one scope; loose packets built without a network fall back to the
    shared :data:`DEFAULT_IDS`.
    """

    __slots__ = ("_next_flit", "_next_packet")

    def __init__(self) -> None:
        self._next_flit = 0
        self._next_packet = 0

    def next_flit_id(self) -> int:
        flit_id = self._next_flit
        self._next_flit = flit_id + 1
        return flit_id

    def next_packet_id(self) -> int:
        packet_id = self._next_packet
        self._next_packet = packet_id + 1
        return packet_id


DEFAULT_IDS = IdScope()


class FlitType(enum.Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"  # single-flit packet

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


class Flit:
    """One flow-control unit of a packet.

    Flits carry a reference to their parent packet (for routing state) and
    their position within it, plus bookkeeping timestamps used to compute
    network latency statistics.
    """

    __slots__ = (
        "packet",
        "flit_type",
        "index",
        "flit_id",
        "injected_cycle",
        "is_head",
        "is_tail",
    )

    def __init__(self, packet: "Packet", flit_type: FlitType, index: int):
        self.packet = packet
        self.flit_type = flit_type
        self.index = index
        self.flit_id = packet.ids.next_flit_id()
        self.injected_cycle: int | None = None
        self.is_head = flit_type is FlitType.HEAD or flit_type is FlitType.HEAD_TAIL
        self.is_tail = flit_type is FlitType.TAIL or flit_type is FlitType.HEAD_TAIL

    def __repr__(self) -> str:
        return (
            f"Flit(pkt={self.packet.packet_id}, {self.flit_type.value}, "
            f"idx={self.index})"
        )

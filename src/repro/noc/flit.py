"""Flit: the unit of network transfer.

Packets are segmented into flits for wormhole switching.  The paper uses
128-bit flits and 4-flit packets so that one 64-byte cache line fits in a
single packet.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.noc.packet import Packet

_flit_ids = itertools.count()


class FlitType(enum.Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"  # single-flit packet

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


class Flit:
    """One flow-control unit of a packet.

    Flits carry a reference to their parent packet (for routing state) and
    their position within it, plus bookkeeping timestamps used to compute
    network latency statistics.
    """

    __slots__ = ("packet", "flit_type", "index", "flit_id", "injected_cycle")

    def __init__(self, packet: "Packet", flit_type: FlitType, index: int):
        self.packet = packet
        self.flit_type = flit_type
        self.index = index
        self.flit_id = next(_flit_ids)
        self.injected_cycle: int | None = None

    @property
    def is_head(self) -> bool:
        return self.flit_type.is_head

    @property
    def is_tail(self) -> bool:
        return self.flit_type.is_tail

    def __repr__(self) -> str:
        return (
            f"Flit(pkt={self.packet.packet_id}, {self.flit_type.value}, "
            f"idx={self.index})"
        )

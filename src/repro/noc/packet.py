"""Packets: multi-flit network messages.

A packet knows its source and destination node coordinates and, when the
route crosses layers, which communication pillar it will use for the
vertical hop.  Message classes distinguish the cache-protocol traffic types
so statistics can be broken out per class.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.noc.flit import DEFAULT_IDS, Flit, FlitType, IdScope
from repro.noc.routing import Coord


class MessageClass(enum.Enum):
    """Protocol-level classification of a packet (for statistics only)."""

    REQUEST = "request"          # tag search / read request (1 flit header-only)
    DATA = "data"                # cache-line transfer (4 flits)
    COHERENCE = "coherence"      # invalidations, acks
    MIGRATION = "migration"      # cache-line migration transfer
    SYNTHETIC = "synthetic"      # microbenchmark traffic


class Packet:
    """A network message segmented into wormhole flits.

    Parameters
    ----------
    src, dest:
        Node coordinates.
    size_flits:
        Number of flits; the paper's cache-line packet is 4 flits of
        128 bits (64 B line).
    message_class:
        Traffic type for statistics.
    pillar_xy:
        ``(x, y)`` of the vertical pillar this packet will use when
        ``src.z != dest.z``.  Chosen by the network at injection time.
    ids:
        The :class:`IdScope` to draw packet/flit ids from.  Networks pass
        their own scope so id sequences restart per simulation; loose
        packets share the process-wide default scope.
    """

    __slots__ = (
        "packet_id",
        "ids",
        "src",
        "dest",
        "size_flits",
        "message_class",
        "pillar_xy",
        "created_cycle",
        "injected_cycle",
        "ejected_cycle",
        "lost",
        "payload",
    )

    def __init__(
        self,
        src: Coord,
        dest: Coord,
        size_flits: int = 4,
        message_class: MessageClass = MessageClass.SYNTHETIC,
        pillar_xy: Optional[tuple[int, int]] = None,
        payload: object = None,
        ids: Optional[IdScope] = None,
    ):
        if size_flits < 1:
            raise ValueError("packet must contain at least one flit")
        self.ids = ids if ids is not None else DEFAULT_IDS
        self.packet_id = self.ids.next_packet_id()
        self.src = src
        self.dest = dest
        self.size_flits = size_flits
        self.message_class = message_class
        self.pillar_xy = pillar_xy
        self.created_cycle: Optional[int] = None
        self.injected_cycle: Optional[int] = None
        self.ejected_cycle: Optional[int] = None
        # Set by the fault subsystem when the packet is dropped (dead
        # pillar blackhole or unreachable destination); a lost packet
        # never ejects, so completion predicates must test both fields.
        self.lost = False
        self.payload = payload

    def make_flits(self, pool: Optional["FlitPool"] = None) -> list[Flit]:
        """Segment the packet into its wormhole flits.

        With ``pool``, flit objects are drawn from its free list instead of
        constructed; ids and timestamps are reinitialised either way.
        """
        acquire = pool.acquire if pool is not None else Flit
        if self.size_flits == 1:
            return [acquire(self, FlitType.HEAD_TAIL, 0)]
        flits = [acquire(self, FlitType.HEAD, 0)]
        flits.extend(
            acquire(self, FlitType.BODY, index)
            for index in range(1, self.size_flits - 1)
        )
        flits.append(acquire(self, FlitType.TAIL, self.size_flits - 1))
        return flits

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency (creation to tail ejection), if complete."""
        if self.ejected_cycle is None or self.created_cycle is None:
            return None
        return self.ejected_cycle - self.created_cycle

    @property
    def network_latency(self) -> Optional[int]:
        """In-network latency (injection to tail ejection), if complete."""
        if self.ejected_cycle is None or self.injected_cycle is None:
            return None
        return self.ejected_cycle - self.injected_cycle

    def __repr__(self) -> str:
        return (
            f"Packet({self.packet_id}: {self.src}->{self.dest}, "
            f"{self.size_flits}f, {self.message_class.value})"
        )


class FlitPool:
    """LIFO free list of :class:`Flit` objects.

    The loaded mesh churns through four flit objects per packet; recycling
    them removes the dominant allocation in the injection path.  A released
    flit is fully reinitialised on acquire — including a fresh ``flit_id``
    from the packet's scope — so pooled and unpooled runs produce identical
    ids, reprs, and statistics.
    """

    __slots__ = ("_free",)

    def __init__(self) -> None:
        self._free: list[Flit] = []

    def acquire(self, packet: Packet, flit_type: FlitType, index: int) -> Flit:
        free = self._free
        if not free:
            return Flit(packet, flit_type, index)
        flit = free.pop()
        flit.packet = packet
        flit.flit_type = flit_type
        flit.index = index
        flit.flit_id = packet.ids.next_flit_id()
        flit.injected_cycle = None
        flit.is_head = flit_type is FlitType.HEAD or flit_type is FlitType.HEAD_TAIL
        flit.is_tail = flit_type is FlitType.TAIL or flit_type is FlitType.HEAD_TAIL
        return flit

    def release(self, flit: Flit) -> None:
        """Return an ejected flit to the free list.

        The caller must be done with the flit entirely; the packet
        reference is dropped so pooled flits never pin completed packets.
        """
        flit.packet = None
        self._free.append(flit)

    def __len__(self) -> int:
        return len(self._free)

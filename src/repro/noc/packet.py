"""Packets: multi-flit network messages.

A packet knows its source and destination node coordinates and, when the
route crosses layers, which communication pillar it will use for the
vertical hop.  Message classes distinguish the cache-protocol traffic types
so statistics can be broken out per class.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.noc.flit import Flit, FlitType
from repro.noc.routing import Coord

_packet_ids = itertools.count()


class MessageClass(enum.Enum):
    """Protocol-level classification of a packet (for statistics only)."""

    REQUEST = "request"          # tag search / read request (1 flit header-only)
    DATA = "data"                # cache-line transfer (4 flits)
    COHERENCE = "coherence"      # invalidations, acks
    MIGRATION = "migration"      # cache-line migration transfer
    SYNTHETIC = "synthetic"      # microbenchmark traffic


class Packet:
    """A network message segmented into wormhole flits.

    Parameters
    ----------
    src, dest:
        Node coordinates.
    size_flits:
        Number of flits; the paper's cache-line packet is 4 flits of
        128 bits (64 B line).
    message_class:
        Traffic type for statistics.
    pillar_xy:
        ``(x, y)`` of the vertical pillar this packet will use when
        ``src.z != dest.z``.  Chosen by the network at injection time.
    """

    __slots__ = (
        "packet_id",
        "src",
        "dest",
        "size_flits",
        "message_class",
        "pillar_xy",
        "created_cycle",
        "injected_cycle",
        "ejected_cycle",
        "payload",
    )

    def __init__(
        self,
        src: Coord,
        dest: Coord,
        size_flits: int = 4,
        message_class: MessageClass = MessageClass.SYNTHETIC,
        pillar_xy: Optional[tuple[int, int]] = None,
        payload: object = None,
    ):
        if size_flits < 1:
            raise ValueError("packet must contain at least one flit")
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dest = dest
        self.size_flits = size_flits
        self.message_class = message_class
        self.pillar_xy = pillar_xy
        self.created_cycle: Optional[int] = None
        self.injected_cycle: Optional[int] = None
        self.ejected_cycle: Optional[int] = None
        self.payload = payload

    def make_flits(self) -> list[Flit]:
        """Segment the packet into its wormhole flits."""
        if self.size_flits == 1:
            return [Flit(self, FlitType.HEAD_TAIL, 0)]
        flits = [Flit(self, FlitType.HEAD, 0)]
        flits.extend(
            Flit(self, FlitType.BODY, index)
            for index in range(1, self.size_flits - 1)
        )
        flits.append(Flit(self, FlitType.TAIL, self.size_flits - 1))
        return flits

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency (creation to tail ejection), if complete."""
        if self.ejected_cycle is None or self.created_cycle is None:
            return None
        return self.ejected_cycle - self.created_cycle

    @property
    def network_latency(self) -> Optional[int]:
        """In-network latency (injection to tail ejection), if complete."""
        if self.ejected_cycle is None or self.injected_cycle is None:
            return None
        return self.ejected_cycle - self.injected_cycle

    def __repr__(self) -> str:
        return (
            f"Packet({self.packet_id}: {self.src}->{self.dest}, "
            f"{self.size_flits}f, {self.message_class.value})"
        )

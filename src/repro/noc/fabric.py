"""Fabric selection: which NoC implementation a network is built from.

``FabricKind`` replaces the stringly-typed ``Network(fabric=...)`` /
``SystemConfig.noc_fabric`` selector.  :meth:`FabricKind.parse` is the
single validator: plain strings are still accepted at the CLI/spec
boundary, and anything else raises a ``ValueError`` naming the invalid
value and listing the valid choices.
"""

from __future__ import annotations

import enum
from typing import Union


class FabricKind(enum.Enum):
    """Which interconnect implementation to build."""

    # The allocation-free hot path (PR 3): cached route tables, shared
    # link pipeline, posted credits, flit pooling, blocked-evaluate cache.
    OPTIMIZED = "optimized"
    # The frozen pre-PR-3 fabric kept verbatim as a differential oracle.
    REFERENCE = "reference"
    # The batched structure-of-arrays fabric: the whole 3D mesh held as
    # numpy state and advanced in bulk array operations once per cycle.
    # Distribution-level equivalent to the object fabrics (arbitration
    # rotation differs under contention — see DESIGN.md "Vector fabric").
    VECTOR = "vector"

    @classmethod
    def parse(cls, value: Union["FabricKind", str]) -> "FabricKind":
        """Coerce a string or enum to a ``FabricKind``.

        The single point of fabric validation: ``Network`` and
        ``SystemConfig`` both funnel through here.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                pass
        choices = [kind.value for kind in cls]
        raise ValueError(f"unknown fabric {value!r}; choose from {choices}")


# Valid fabric names, for help strings and backwards compatibility.
FABRIC_NAMES = tuple(kind.value for kind in FabricKind)

"""Fabric selection: which NoC implementation a network is built from.

``FabricKind`` replaces the stringly-typed ``Network(fabric=...)`` /
``SystemConfig.noc_fabric`` selector.  :meth:`FabricKind.parse` is the
single validator: plain strings are still accepted at the CLI/spec
boundary, and anything else raises a ``ValueError`` naming the invalid
value and listing the valid choices.
"""

from __future__ import annotations

import enum
from typing import Union


class FabricKind(enum.Enum):
    """Which interconnect implementation to build."""

    # The allocation-free hot path (PR 3): cached route tables, shared
    # link pipeline, posted credits, flit pooling, blocked-evaluate cache.
    OPTIMIZED = "optimized"
    # The frozen pre-PR-3 fabric kept verbatim as a differential oracle.
    REFERENCE = "reference"
    # The batched structure-of-arrays fabric: the whole 3D mesh held as
    # numpy state and advanced in bulk array operations once per cycle.
    # Distribution-level equivalent to the object fabrics (arbitration
    # rotation differs under contention — see DESIGN.md "Vector fabric").
    VECTOR = "vector"

    @classmethod
    def parse(cls, value: Union["FabricKind", str]) -> "FabricKind":
        """Coerce a string or enum to a ``FabricKind``.

        The single point of fabric validation: ``Network`` and
        ``SystemConfig`` both funnel through here.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                pass
        choices = [kind.value for kind in cls]
        raise ValueError(f"unknown fabric {value!r}; choose from {choices}")


# Valid fabric names, for help strings and backwards compatibility.
FABRIC_NAMES = tuple(kind.value for kind in FabricKind)

#: CLI/spec sentinel resolved by :func:`resolve_fabric` before it ever
#: reaches ``FabricKind.parse`` (and therefore before serialization, so
#: spec hashes only ever name concrete fabrics).
AUTO_FABRIC = "auto"


def resolve_fabric(mode: str) -> tuple[str, str]:
    """Resolve the ``"auto"`` fabric selector to a concrete name.

    Returns ``(fabric_name, reason)``.  Vector is the universal default
    for cycle-mode whenever numpy imports — its occupancy-adaptive
    advance matches the object fabrics at sparse load and wins ≥10x at
    saturation — while model-mode specs and numpy-less environments fall
    back to the optimized object fabric.
    """
    if mode != "cycle":
        return (
            FabricKind.OPTIMIZED.value,
            f"mode={mode!r} is not cycle-accurate; "
            "recording the optimized default",
        )
    try:
        import numpy  # noqa: F401
    except ImportError:
        return (
            FabricKind.OPTIMIZED.value,
            "numpy unavailable; the vector fabric requires it",
        )
    return (
        FabricKind.VECTOR.value,
        "cycle mode with numpy available",
    )

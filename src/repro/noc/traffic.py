"""Synthetic traffic generators for network characterization.

These drive the cycle-accurate fabric directly (no cache model) and are
used by the microbenchmarks and by the calibration of the contention-aware
latency model: uniform random, hotspot (a fraction of traffic targets a
small set of nodes — the pillar-congestion scenario of Section 3.3), and
transpose permutation traffic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.engine import ClockedComponent
from repro.sim.rng import make_rng
from repro.noc.network import Network
from repro.noc.packet import MessageClass
from repro.noc.routing import Coord


class TrafficGenerator(ClockedComponent):
    """Bernoulli packet injection at every node.

    Each cycle, each node independently injects a packet with probability
    ``injection_rate`` (packets/node/cycle) toward a destination chosen by
    :meth:`pick_destination`.
    """

    def __init__(
        self,
        network: Network,
        injection_rate: float,
        seed: int = 1,
        size_flits: Optional[int] = None,
        warmup_cycles: int = 0,
    ):
        if not 0 <= injection_rate <= 1:
            raise ValueError("injection rate must be in [0, 1]")
        self.network = network
        self.injection_rate = injection_rate
        self.size_flits = size_flits
        self.warmup_cycles = warmup_cycles
        self.rng = make_rng(seed, f"traffic.{type(self).__name__}")
        self.sources = list(network.coords())
        self.packets_sent = 0
        network.engine.register(self)

    @property
    def injection_rate(self) -> float:
        return self._injection_rate

    @injection_rate.setter
    def injection_rate(self, rate: float) -> None:
        self._injection_rate = rate
        if rate > 0:
            self.wake()

    def is_idle(self) -> bool:
        """Idle iff injection is switched off (rate 0 draws no randoms)."""
        return self._injection_rate <= 0

    def pick_destination(self, src: Coord) -> Coord:
        raise NotImplementedError

    def evaluate(self, cycle: int) -> None:
        pass

    def advance(self, cycle: int) -> None:
        if self._injection_rate <= 0:
            # Skip the Bernoulli draws entirely so the RNG stream is
            # identical whether idle cycles are ticked or skipped.
            return
        # One vectorized draw per cycle: numpy's Generator produces the
        # same variates for random(n) as for n scalar random() calls, so
        # this consumes the identical stream at a fraction of the cost.
        draws = self.rng.random(len(self.sources))
        for index in np.flatnonzero(draws < self._injection_rate):
            src = self.sources[index]
            dest = self.pick_destination(src)
            if dest == src:
                continue
            self.network.send(
                src,
                dest,
                size_flits=self.size_flits,
                message_class=MessageClass.SYNTHETIC,
            )
            self.packets_sent += 1

    def run(self, cycles: int) -> None:
        """Inject for ``cycles`` cycles, then drain the network."""
        self.network.engine.run(cycles)
        self.injection_rate, saved = 0.0, self.injection_rate
        self.network.quiesce()
        self.injection_rate = saved


class UniformRandomTraffic(TrafficGenerator):
    """Destinations drawn uniformly over all other nodes."""

    def pick_destination(self, src: Coord) -> Coord:
        nodes = self.sources
        while True:
            dest = nodes[int(self.rng.integers(len(nodes)))]
            if dest != src:
                return dest

    def advance(self, cycle: int) -> None:
        # Batched override of the generic per-source loop: one uniform
        # destination draw for all of this cycle's injectors, with a
        # vectorized rejection pass for src==dest collisions (the same
        # distribution as pick_destination's scalar rejection loop, a
        # different consumption of the RNG stream).  At saturation this
        # is ~50 sends/cycle, and the draw cost stops scaling with mesh
        # size.
        if self._injection_rate <= 0:
            return
        sources = self.sources
        count = len(sources)
        draws = self.rng.random(count)
        hits = np.flatnonzero(draws < self._injection_rate)
        if hits.size == 0:
            return
        dests = self.rng.integers(count, size=hits.size)
        collide = np.flatnonzero(dests == hits)
        while collide.size:
            redraw = self.rng.integers(count, size=collide.size)
            dests[collide] = redraw
            collide = collide[redraw == hits[collide]]
        sent = self.network.try_send_batch(
            hits, dests, size_flits=self.size_flits
        )
        if sent is not None:
            self.packets_sent += sent
            return
        send = self.network.send
        for src_index, dest_index in zip(hits.tolist(), dests.tolist()):
            send(
                sources[src_index],
                sources[dest_index],
                size_flits=self.size_flits,
                message_class=MessageClass.SYNTHETIC,
            )
            self.packets_sent += 1


class HotspotTraffic(TrafficGenerator):
    """A fraction of packets target designated hotspot nodes.

    Models the pillar-contention scenario: when CPUs share a pillar, the
    pillar router receives a disproportionate share of traffic.
    """

    def __init__(
        self,
        network: Network,
        injection_rate: float,
        hotspots: list[Coord],
        hotspot_fraction: float = 0.5,
        seed: int = 1,
        size_flits: Optional[int] = None,
    ):
        super().__init__(network, injection_rate, seed, size_flits)
        if not hotspots:
            raise ValueError("need at least one hotspot node")
        if not 0 <= hotspot_fraction <= 1:
            raise ValueError("hotspot fraction must be in [0, 1]")
        self.hotspots = hotspots
        self.hotspot_fraction = hotspot_fraction

    def pick_destination(self, src: Coord) -> Coord:
        if self.rng.random() < self.hotspot_fraction:
            choices = [h for h in self.hotspots if h != src]
            if choices:
                return choices[int(self.rng.integers(len(choices)))]
        return UniformRandomTraffic.pick_destination(self, src)


class TransposeTraffic(TrafficGenerator):
    """Matrix-transpose permutation: node (x, y) sends to (y, x)."""

    def pick_destination(self, src: Coord) -> Coord:
        cfg = self.network.config
        x = src.y % cfg.width
        y = src.x % cfg.height
        return Coord(x, y, src.z)

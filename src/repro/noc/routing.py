"""Node coordinates, router ports, and dimension-order routing.

Routing is deterministic dimension-order (X then Y within a layer).  Layer
changes never use mesh links: a packet whose destination lies on another
layer first routes in-plane to its assigned pillar, takes the dTDMA bus
vertically (the ``VERTICAL`` port), and then routes in-plane on the
destination layer.  This mirrors the paper's hybrid NoC/bus fabric, where
the bus provides single-hop inter-layer transfer.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional


class Coord(NamedTuple):
    """Node coordinate: ``x`` (column), ``y`` (row), ``z`` (layer)."""

    x: int
    y: int
    z: int = 0

    def manhattan_2d(self, other: "Coord") -> int:
        """In-plane Manhattan distance, ignoring the layer."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def same_layer(self, other: "Coord") -> bool:
        return self.z == other.z


class Port(enum.Enum):
    """Physical channels of a router.

    The generic router has five (the paper's Table 1 router); pillar
    routers gain the sixth ``VERTICAL`` channel for the dTDMA bus.
    """

    LOCAL = "local"
    NORTH = "north"
    SOUTH = "south"
    EAST = "east"
    WEST = "west"
    VERTICAL = "vertical"


# Stable small-integer index per port, for bitmask arbitration state in the
# router's allocation-free evaluate loop.
PORT_INDEX = {port: index for index, port in enumerate(Port)}

# Direction a flit leaving via a port arrives on at the neighbouring router.
OPPOSITE_PORT = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
}

# Grid convention: +x is EAST, +y is NORTH.
PORT_DELTA = {
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
    Port.NORTH: (0, 1),
    Port.SOUTH: (0, -1),
}


def xy_route(current: Coord, target_x: int, target_y: int) -> Port:
    """One dimension-order (X-first) routing step within a layer."""
    if current.x < target_x:
        return Port.EAST
    if current.x > target_x:
        return Port.WEST
    if current.y < target_y:
        return Port.NORTH
    if current.y > target_y:
        return Port.SOUTH
    return Port.LOCAL


def dimension_order_route(
    current: Coord,
    dest: Coord,
    pillar_xy: Optional[tuple[int, int]] = None,
) -> Port:
    """Select the output port for a packet at ``current`` heading to ``dest``.

    If the destination is on a different layer, the packet is steered to
    ``pillar_xy`` and then onto the ``VERTICAL`` port; ``pillar_xy`` must be
    provided in that case.
    """
    if current.z != dest.z:
        if pillar_xy is None:
            raise ValueError(
                f"inter-layer route {current}->{dest} requires a pillar"
            )
        pillar_x, pillar_y = pillar_xy
        if (current.x, current.y) == (pillar_x, pillar_y):
            return Port.VERTICAL
        return xy_route(current, pillar_x, pillar_y)
    return xy_route(current, dest.x, dest.y)


def route_hop_count(
    src: Coord,
    dest: Coord,
    pillar_xy: Optional[tuple[int, int]] = None,
) -> int:
    """Number of router-to-router hops on the dimension-order path.

    The vertical bus transfer counts as one hop.  Used by the analytic
    latency model and by tests validating the cycle-accurate simulator.
    """
    if src.z == dest.z:
        return src.manhattan_2d(dest)
    if pillar_xy is None:
        raise ValueError("inter-layer hop count requires a pillar")
    pillar_x, pillar_y = pillar_xy
    to_pillar = abs(src.x - pillar_x) + abs(src.y - pillar_y)
    from_pillar = abs(dest.x - pillar_x) + abs(dest.y - pillar_y)
    return to_pillar + 1 + from_pillar


def fault_aware_route(
    current: Coord,
    dest: Coord,
    pillar_xy: Optional[tuple[int, int]],
    dead: "frozenset[tuple[Coord, Port]] | set[tuple[Coord, Port]]",
) -> Optional[Port]:
    """Dimension-order routing step that avoids dead mesh links.

    ``dead`` is the live fault map: directed ``(router, output port)``
    pairs that new traffic must not use.  The preferred X-first port is
    taken when alive; otherwise the packet is minimally misrouted onto
    the other productive dimension (never away from the target, so the
    path length stays minimal and the scheme cannot livelock).  Returns
    ``None`` when no productive port survives — the destination is
    unreachable and the caller must drop the packet with accounting
    instead of letting it hang.

    With an empty fault map this is exactly
    :func:`dimension_order_route`.
    """
    if current.z != dest.z:
        if pillar_xy is None:
            raise ValueError(
                f"inter-layer route {current}->{dest} requires a pillar"
            )
        target_x, target_y = pillar_xy
        if (current.x, current.y) == (target_x, target_y):
            return Port.VERTICAL
    else:
        target_x, target_y = dest.x, dest.y
    if current.x < target_x:
        x_port: Optional[Port] = Port.EAST
    elif current.x > target_x:
        x_port = Port.WEST
    else:
        x_port = None
    if current.y < target_y:
        y_port: Optional[Port] = Port.NORTH
    elif current.y > target_y:
        y_port = Port.SOUTH
    else:
        y_port = None
    if x_port is None and y_port is None:
        return Port.LOCAL
    # X-first preference, matching the fault-free dimension order.
    if x_port is not None and (current, x_port) not in dead:
        return x_port
    if y_port is not None and (current, y_port) not in dead:
        return y_port
    return None


def compute_route_table(width: int, height: int):
    """Dense in-plane routing table as a numpy ``int8`` array.

    ``table[cur, tgt]`` is the ``PORT_INDEX`` of
    ``xy_route(cur, tgt_x, tgt_y)`` with both nodes addressed by their
    flat in-plane index ``y * width + x``.  The vector fabric looks up
    every head flit's next port with one fancy-indexed gather instead of
    calling :func:`dimension_order_route` per flit; callers steering a
    cross-layer packet pass the pillar's flat index as ``tgt`` and remap
    a ``LOCAL`` result (at the pillar) to ``VERTICAL`` themselves.

    numpy is imported lazily so this module stays importable without it;
    the error message mirrors the vector fabric's.
    """
    try:
        import numpy as np
    except ImportError as exc:  # pragma: no cover - numpy is a core dep
        raise ImportError(
            "compute_route_table requires numpy (used by the vector "
            "fabric); install numpy or the 'vector' extra"
        ) from exc
    nodes = width * height
    flat = np.arange(nodes)
    cur_x, cur_y = (flat % width)[:, None], (flat // width)[:, None]
    tgt_x, tgt_y = (flat % width)[None, :], (flat // width)[None, :]
    table = np.full((nodes, nodes), PORT_INDEX[Port.LOCAL], dtype=np.int8)
    # Y-ports first, then X-first preference overwrites where x differs.
    table[cur_y < tgt_y] = PORT_INDEX[Port.NORTH]
    table[cur_y > tgt_y] = PORT_INDEX[Port.SOUTH]
    table[cur_x < tgt_x] = PORT_INDEX[Port.EAST]
    table[cur_x > tgt_x] = PORT_INDEX[Port.WEST]
    return table


def best_pillar(
    src: Coord,
    dest: Coord,
    pillars: list[tuple[int, int]],
    dead: "frozenset[tuple[int, int]] | set[tuple[int, int]]" = frozenset(),
) -> tuple[int, int]:
    """Pillar minimizing total path length for an inter-layer route.

    Ties break toward the pillar closest to the source, then by coordinate
    so the choice is deterministic.  Pillars in ``dead`` (the live fault
    map) are excluded; if no pillar survives, ``ValueError`` is raised and
    the caller must take the unreachable-destination accounting path.
    """
    if dead:
        pillars = [pillar for pillar in pillars if pillar not in dead]
    if not pillars:
        raise ValueError("no pillars available for inter-layer routing")

    def cost(pillar: tuple[int, int]) -> tuple[int, int, tuple[int, int]]:
        px, py = pillar
        to_pillar = abs(src.x - px) + abs(src.y - py)
        from_pillar = abs(dest.x - px) + abs(dest.y - py)
        return (to_pillar + from_pillar, to_pillar, pillar)

    return min(pillars, key=cost)

"""Network-in-Memory: 3D chip-multiprocessor NUCA L2 simulation.

A reproduction of Li, Nicopoulos, Richardson, Xie, Narayanan & Kandemir,
"Design and Management of 3D Chip Multiprocessors Using Network-in-Memory"
(ISCA 2006).

Quick start::

    from repro import NetworkInMemory, SystemConfig, Scheme
    from repro.workloads import SyntheticWorkload

    system = NetworkInMemory(SystemConfig(scheme=Scheme.CMP_DNUCA_3D))
    stats = system.run_trace(SyntheticWorkload("swim").traces())
    print(stats.avg_l2_hit_latency, stats.ipc)

Subpackages: :mod:`repro.core` (the 3D architecture), :mod:`repro.noc`
(cycle-accurate wormhole NoC), :mod:`repro.dtdma` (vertical bus pillars),
:mod:`repro.cache` (NUCA L2), :mod:`repro.coherence` (L1 + MSI directory),
:mod:`repro.cpu` (in-order cores), :mod:`repro.workloads` (synthetic SPEC
OMP), :mod:`repro.thermal` (3D thermal solver), :mod:`repro.models`
(area/power/latency analytic models), :mod:`repro.experiments` (the
table/figure reproduction harness).
"""

from repro.core.system import NetworkInMemory, SystemConfig, RunStats
from repro.core.schemes import Scheme
from repro.core.chip import ChipConfig

__version__ = "1.0.0"

__all__ = [
    "NetworkInMemory",
    "SystemConfig",
    "RunStats",
    "Scheme",
    "ChipConfig",
    "__version__",
]

"""Async HTTP/JSON front end for the sweep service.

``python -m repro serve`` boots one :class:`SweepServer` over a
:class:`~repro.serve.scheduler.JobStore`.  The surface is deliberately
small and stdlib-only:

==============================  ================================================
``GET  /healthz``               liveness + role, pool state, protocol version
``GET  /stats``                 store-wide counters (dedup, cache, leases)
``POST /jobs``                  submit a grid (:class:`SubmitRequest`)
                                -> 202 :class:`JobSnapshot`, or 429 + Retry-After
``GET  /jobs/<id>``             job status snapshot (per-cell states, health)
``GET  /jobs/<id>/events``      NDJSON stream: replay + follow until job end
``GET  /jobs/<id>/results``     delivered stats + structured failures
``GET  /cells/<hash>``          the raw cached artifact for one spec hash
``POST /leases``                worker pull (:class:`LeaseRequest`) -> 201
                                :class:`LeaseGrant` (200 + empty grant if idle)
``POST /leases/<id>/heartbeat`` extend the lease -> :class:`HeartbeatAck`
``POST /leases/<id>/results``   push outcomes (:class:`ResultPush`) ->
                                :class:`ResultAck`
``POST /leases/<id>/release``   drain: give unstarted cells back
                                (:class:`LeaseRelease`) -> :class:`ReleaseAck`
==============================  ================================================

Request/response bodies are the frozen dataclasses of
:mod:`repro.serve.protocol`, each stamped with ``protocol_version``; a
submission or lease call from a different protocol revision is rejected
with a structured 400 ``protocol_mismatch`` error so head/worker skew
fails loudly.  Submissions go through the :func:`repro.api.submit`
facade — the server is just HTTP framing around it.  Tenants identify
themselves via the ``"tenant"`` body field or the ``X-Repro-Tenant``
header; there is no authentication (the service is a lab-cluster tool,
bind it accordingly).

Error responses are :class:`~repro.serve.protocol.ErrorBody` JSON::

    {"error": {"kind": "queue_full", "message": "...", "retry_after_s": 2.0},
     "protocol_version": 1}

with cell-level failures inside job results carrying the PR-5
``CellFailure`` kinds ("error" | "timeout" | "crash" | "stall" |
"deadlock" | "worker_lost").
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from typing import Callable, Optional

from repro import api
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorBody,
    HeartbeatAck,
    HeartbeatRequest,
    LeaseCell,
    LeaseGrant,
    LeaseRelease,
    LeaseRequest,
    JobResults,
    JobSnapshot,
    ProtocolError,
    ReleaseAck,
    Request,
    ResultAck,
    ResultPush,
    SubmitRequest,
    VersionMismatchError,
    read_request,
    render_response,
    render_stream_head,
)
from repro.serve.scheduler import (
    JobStore,
    QueueFullError,
    UnknownLeaseError,
)

SERVER_NAME = "repro-serve/1"

#: Poll hint handed to workers when the queues are empty.
IDLE_RETRY_S = 0.5


def _json_body(obj: dict) -> bytes:
    return (json.dumps(obj) + "\n").encode("utf-8")


def _error_body(kind: str, message: str, **extra) -> bytes:
    return _json_body(ErrorBody(kind=kind, message=message, **extra).to_dict())


class SweepServer:
    """One asyncio HTTP server bound to one job store."""

    def __init__(
        self, store: JobStore, host: str = "127.0.0.1", port: int = 0
    ):
        self.store = store
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> int:
        """Bind and listen; returns the actual port (useful with port 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(render_response(
                    exc.status, _error_body("bad_request", exc.message)
                ))
            except asyncio.IncompleteReadError:
                request = None
            else:
                if request is not None:
                    await self._dispatch(request, writer)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # never let a handler kill the server
            with contextlib.suppress(Exception):
                writer.write(render_response(
                    500,
                    _error_body(
                        "internal", f"{type(exc).__name__}: {exc}"
                    ),
                ))
                await writer.drain()
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        segments = request.segments
        if segments == ["healthz"] and request.method == "GET":
            return self._reply(writer, 200, self._health())
        if segments == ["stats"] and request.method == "GET":
            return self._reply(writer, 200, self.store.stats_dict())
        if segments == ["jobs"]:
            if request.method != "POST":
                return self._method_not_allowed(writer, "POST")
            return await self._submit(request, writer)
        if len(segments) >= 2 and segments[0] == "jobs":
            if request.method != "GET":
                return self._method_not_allowed(writer, "GET")
            return await self._job_route(request, writer, segments)
        if (
            len(segments) == 2
            and segments[0] == "cells"
            and request.method == "GET"
        ):
            return self._artifact(writer, segments[1])
        if segments and segments[0] == "leases":
            if request.method != "POST":
                return self._method_not_allowed(writer, "POST")
            return self._lease_route(request, writer, segments)
        writer.write(render_response(
            404, _error_body("not_found", f"no route for {request.path}")
        ))

    def _reply(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        obj: dict,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        writer.write(render_response(
            status,
            _json_body(obj),
            extra_headers=(("Server", SERVER_NAME),) + extra_headers,
        ))

    def _method_not_allowed(
        self, writer: asyncio.StreamWriter, allowed: str
    ) -> None:
        writer.write(render_response(
            405,
            _error_body("method_not_allowed", f"use {allowed}"),
            extra_headers=(("Allow", allowed),),
        ))

    def _parse_body(self, request: Request, message_cls):
        """Parse + validate a typed request body.

        Returns the parsed message, or ``None`` after writing the
        structured 400 (``protocol_mismatch`` for version skew,
        ``bad_request`` for anything else malformed).
        """
        try:
            data = json.loads(request.body or b"{}")
            return message_cls.from_dict(data), None
        except VersionMismatchError as exc:
            return None, ErrorBody(
                kind="protocol_mismatch",
                message=exc.message,
                expected_version=exc.expected,
                got_version=exc.got if isinstance(exc.got, int) else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            return None, ErrorBody(
                kind="bad_request",
                message=f"invalid {message_cls.__name__} body: {exc}",
            )

    # -- endpoints -------------------------------------------------------------

    def _health(self) -> dict:
        return {
            "status": "ok",
            "server": SERVER_NAME,
            "protocol_version": PROTOCOL_VERSION,
            "role": "head" if self.store.workers == 0 else "head+local",
            "workers": self.store.workers,
            "executor": self.store.executor_kind,
            "pending_cells": self.store.pending_cells,
            "max_pending": self.store.max_pending,
            "leases_open": len(self.store._leases),
        }

    async def _submit(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        submit, error = self._parse_body(request, SubmitRequest)
        if submit is None:
            return self._reply(writer, 400, error.to_dict())
        tenant = (
            submit.tenant
            or request.headers.get("x-repro-tenant")
            or "default"
        )
        try:
            job = await api.submit(
                list(submit.specs), tenant=tenant, store=self.store
            )
        except QueueFullError as exc:
            busy = ErrorBody(
                kind="queue_full",
                message=str(exc),
                pending=exc.pending,
                limit=exc.limit,
                retry_after_s=exc.retry_after_s,
            )
            return self._reply(
                writer,
                429,
                busy.to_dict(),
                extra_headers=(
                    ("Retry-After", f"{max(1, round(exc.retry_after_s))}"),
                ),
            )
        self._reply(writer, 202, JobSnapshot.from_job(job).to_dict())

    async def _job_route(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        segments: list[str],
    ) -> None:
        job = self.store.get_job(segments[1])
        if job is None:
            return self._reply(writer, 404, ErrorBody(
                kind="unknown_job", message=f"no job {segments[1]!r}"
            ).to_dict())
        tail = segments[2:]
        if tail == []:
            detail = request.query.get("detail", ["1"])[0] != "0"
            snapshot = JobSnapshot.from_job(job, detail=detail)
            return self._reply(writer, 200, snapshot.to_dict())
        if tail == ["results"]:
            return self._reply(
                writer, 200, JobResults.from_job(job).to_dict()
            )
        if tail == ["events"]:
            writer.write(render_stream_head(
                extra_headers=(("Server", SERVER_NAME),)
            ))
            await writer.drain()
            async for event in job.events():
                writer.write(_json_body(event))
                await writer.drain()
            return
        self._reply(writer, 404, ErrorBody(
            kind="not_found", message=f"no job route {'/'.join(tail)!r}"
        ).to_dict())

    def _artifact(self, writer: asyncio.StreamWriter, spec_hash: str) -> None:
        cache = self.store.cache
        artifact = (
            cache.read_artifact(spec_hash) if cache is not None else None
        )
        if artifact is None:
            return self._reply(writer, 404, ErrorBody(
                kind="unknown_artifact",
                message=(
                    "result cache disabled" if cache is None
                    else f"no artifact for {spec_hash!r}"
                ),
            ).to_dict())
        self._reply(writer, 200, artifact)

    # -- lease endpoints -------------------------------------------------------

    def _lease_route(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        segments: list[str],
    ) -> None:
        if segments == ["leases"]:
            return self._grant(request, writer)
        if len(segments) == 3 and segments[2] == "heartbeat":
            return self._heartbeat(request, writer, segments[1])
        if len(segments) == 3 and segments[2] == "results":
            return self._push_results(request, writer, segments[1])
        if len(segments) == 3 and segments[2] == "release":
            return self._release(request, writer, segments[1])
        self._reply(writer, 404, ErrorBody(
            kind="not_found", message=f"no lease route {request.path!r}"
        ).to_dict())

    def _grant(self, request: Request, writer: asyncio.StreamWriter) -> None:
        ask, error = self._parse_body(request, LeaseRequest)
        if ask is None:
            return self._reply(writer, 400, error.to_dict())
        lease = self.store.grant_lease(ask.worker_id, ask.max_cells)
        if lease is None:
            empty = LeaseGrant(
                lease_id="", token="", ttl_s=self.store.lease_ttl_s,
                cells=(), retry_after_s=IDLE_RETRY_S,
            )
            return self._reply(writer, 200, empty.to_dict())
        grant = LeaseGrant(
            lease_id=lease.lease_id,
            token=lease.token,
            ttl_s=lease.ttl_s,
            cells=tuple(
                LeaseCell(
                    spec=entry.spec,
                    spec_hash=entry.spec_hash,
                    tenant=entry.tenant,
                    attempt=entry.worker_attempts,
                )
                for entry in lease.entries.values()
            ),
        )
        self._reply(writer, 201, grant.to_dict())

    def _heartbeat(
        self, request: Request, writer: asyncio.StreamWriter, lease_id: str
    ) -> None:
        beat, error = self._parse_body(request, HeartbeatRequest)
        if beat is None:
            return self._reply(writer, 400, error.to_dict())
        try:
            lease = self.store.heartbeat(lease_id, beat.token)
        except UnknownLeaseError as exc:
            return self._reply(writer, 404, ErrorBody(
                kind="unknown_lease", message=str(exc)
            ).to_dict())
        ack = HeartbeatAck(
            lease_id=lease.lease_id,
            ttl_s=lease.ttl_s,
            expires_in_s=max(0.0, lease.deadline - time.monotonic()),
            cells_outstanding=len(lease.entries),
        )
        self._reply(writer, 200, ack.to_dict())

    def _push_results(
        self, request: Request, writer: asyncio.StreamWriter, lease_id: str
    ) -> None:
        push, error = self._parse_body(request, ResultPush)
        if push is None:
            return self._reply(writer, 400, error.to_dict())
        try:
            outcome = self.store.push_results(
                lease_id,
                push.token,
                [
                    {
                        "spec_hash": item.spec_hash,
                        "stats": item.stats,
                        "error": item.error,
                        "simulated": item.simulated,
                    }
                    for item in push.outcomes
                ],
                worker_id=push.worker_id,
            )
        except UnknownLeaseError as exc:
            return self._reply(writer, 404, ErrorBody(
                kind="unknown_lease", message=str(exc)
            ).to_dict())
        self._reply(writer, 200, ResultAck(**outcome).to_dict())

    def _release(
        self, request: Request, writer: asyncio.StreamWriter, lease_id: str
    ) -> None:
        release, error = self._parse_body(request, LeaseRelease)
        if release is None:
            return self._reply(writer, 400, error.to_dict())
        try:
            outcome = self.store.release_cells(
                lease_id,
                release.token,
                spec_hashes=release.spec_hashes or None,
            )
        except UnknownLeaseError as exc:
            return self._reply(writer, 404, ErrorBody(
                kind="unknown_lease", message=str(exc)
            ).to_dict())
        self._reply(writer, 200, ReleaseAck(**outcome).to_dict())


async def serve_forever(
    store: JobStore,
    host: str = "127.0.0.1",
    port: int = 8731,
    ready: Optional[Callable[[int], None]] = None,
) -> None:
    """Start the store and server, then run until cancelled (CLI body)."""
    await store.start()
    server = SweepServer(store, host, port)
    bound_port = await server.start()
    if ready is not None:
        ready(bound_port)
    try:
        await asyncio.Event().wait()
    finally:
        await server.close()
        await store.close()

"""Async HTTP/JSON front end for the sweep service.

``python -m repro serve`` boots one :class:`SweepServer` over a
:class:`~repro.serve.scheduler.JobStore`.  The surface is deliberately
small and stdlib-only:

==========================  ====================================================
``GET  /healthz``           liveness + worker-pool state
``GET  /stats``             store-wide counters (dedup, cache, failure kinds)
``POST /jobs``              submit a grid: ``{"specs": [spec...], "tenant"?}``
                            -> 202 with the job snapshot, or 429 + Retry-After
``GET  /jobs/<id>``         job status snapshot (per-cell states, health)
``GET  /jobs/<id>/events``  NDJSON stream: replay + follow until the job ends
``GET  /jobs/<id>/results`` delivered stats + structured failures
``GET  /cells/<hash>``      the raw cached artifact for one spec hash
==========================  ====================================================

Submissions go through the :func:`repro.api.submit` facade — the server
is just HTTP framing around it.  Tenants identify themselves via the
``"tenant"`` body field or the ``X-Repro-Tenant`` header; there is no
authentication (the service is a lab-cluster tool, bind it accordingly).

Error responses are structured JSON bodies::

    {"error": {"kind": "queue_full", "message": "...", "retry_after_s": 2.0}}

with cell-level failures inside job results carrying the PR-5
``CellFailure`` kinds ("error" | "timeout" | "crash" | "stall" |
"deadlock").
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Callable, Optional

from repro import api
from repro.experiments.spec import SimSpec
from repro.serve.protocol import (
    ProtocolError,
    Request,
    read_request,
    render_response,
    render_stream_head,
)
from repro.serve.scheduler import JobStore, QueueFullError

SERVER_NAME = "repro-serve/1"


def _json_body(obj: dict) -> bytes:
    return (json.dumps(obj) + "\n").encode("utf-8")


def _error_body(kind: str, message: str, **extra) -> bytes:
    return _json_body({"error": {"kind": kind, "message": message, **extra}})


class SweepServer:
    """One asyncio HTTP server bound to one job store."""

    def __init__(
        self, store: JobStore, host: str = "127.0.0.1", port: int = 0
    ):
        self.store = store
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> int:
        """Bind and listen; returns the actual port (useful with port 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(render_response(
                    exc.status, _error_body("bad_request", exc.message)
                ))
            except asyncio.IncompleteReadError:
                request = None
            else:
                if request is not None:
                    await self._dispatch(request, writer)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # never let a handler kill the server
            with contextlib.suppress(Exception):
                writer.write(render_response(
                    500,
                    _error_body(
                        "internal", f"{type(exc).__name__}: {exc}"
                    ),
                ))
                await writer.drain()
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        segments = request.segments
        if segments == ["healthz"] and request.method == "GET":
            return self._reply(writer, 200, self._health())
        if segments == ["stats"] and request.method == "GET":
            return self._reply(writer, 200, self.store.stats_dict())
        if segments == ["jobs"]:
            if request.method != "POST":
                return self._method_not_allowed(writer, "POST")
            return await self._submit(request, writer)
        if len(segments) >= 2 and segments[0] == "jobs":
            if request.method != "GET":
                return self._method_not_allowed(writer, "GET")
            return await self._job_route(request, writer, segments)
        if (
            len(segments) == 2
            and segments[0] == "cells"
            and request.method == "GET"
        ):
            return self._artifact(writer, segments[1])
        writer.write(render_response(
            404, _error_body("not_found", f"no route for {request.path}")
        ))

    def _reply(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        obj: dict,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        writer.write(render_response(
            status,
            _json_body(obj),
            extra_headers=(("Server", SERVER_NAME),) + extra_headers,
        ))

    def _method_not_allowed(
        self, writer: asyncio.StreamWriter, allowed: str
    ) -> None:
        writer.write(render_response(
            405,
            _error_body("method_not_allowed", f"use {allowed}"),
            extra_headers=(("Allow", allowed),),
        ))

    # -- endpoints -------------------------------------------------------------

    def _health(self) -> dict:
        return {
            "status": "ok",
            "server": SERVER_NAME,
            "workers": self.store.workers,
            "executor": self.store.executor_kind,
            "pending_cells": self.store.pending_cells,
            "max_pending": self.store.max_pending,
        }

    async def _submit(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        try:
            body = json.loads(request.body or b"{}")
            raw_specs = body["specs"]
            if not isinstance(raw_specs, list):
                raise TypeError("'specs' must be a list of spec objects")
            specs = [SimSpec.from_dict(item) for item in raw_specs]
        except (KeyError, TypeError, ValueError) as exc:
            return self._reply(writer, 400, {
                "error": {
                    "kind": "bad_request",
                    "message": f"invalid submission: {exc}",
                }
            })
        tenant = (
            body.get("tenant")
            or request.headers.get("x-repro-tenant")
            or "default"
        )
        try:
            job = await api.submit(specs, tenant=tenant, store=self.store)
        except QueueFullError as exc:
            return self._reply(
                writer,
                429,
                {
                    "error": {
                        "kind": "queue_full",
                        "message": str(exc),
                        "pending": exc.pending,
                        "limit": exc.limit,
                        "retry_after_s": exc.retry_after_s,
                    }
                },
                extra_headers=(
                    ("Retry-After", f"{max(1, round(exc.retry_after_s))}"),
                ),
            )
        self._reply(writer, 202, job.snapshot(detail=False))

    async def _job_route(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        segments: list[str],
    ) -> None:
        job = self.store.get_job(segments[1])
        if job is None:
            return self._reply(writer, 404, {
                "error": {
                    "kind": "unknown_job",
                    "message": f"no job {segments[1]!r}",
                }
            })
        tail = segments[2:]
        if tail == []:
            detail = request.query.get("detail", ["1"])[0] != "0"
            return self._reply(writer, 200, job.snapshot(detail=detail))
        if tail == ["results"]:
            return self._reply(writer, 200, job.results_dict())
        if tail == ["events"]:
            writer.write(render_stream_head(
                extra_headers=(("Server", SERVER_NAME),)
            ))
            await writer.drain()
            async for event in job.events():
                writer.write(_json_body(event))
                await writer.drain()
            return
        self._reply(writer, 404, {
            "error": {
                "kind": "not_found",
                "message": f"no job route {'/'.join(tail)!r}",
            }
        })

    def _artifact(self, writer: asyncio.StreamWriter, spec_hash: str) -> None:
        cache = self.store.cache
        artifact = (
            cache.read_artifact(spec_hash) if cache is not None else None
        )
        if artifact is None:
            return self._reply(writer, 404, {
                "error": {
                    "kind": "unknown_artifact",
                    "message": (
                        "result cache disabled" if cache is None
                        else f"no artifact for {spec_hash!r}"
                    ),
                }
            })
        self._reply(writer, 200, artifact)


async def serve_forever(
    store: JobStore,
    host: str = "127.0.0.1",
    port: int = 8731,
    ready: Optional[Callable[[int], None]] = None,
) -> None:
    """Start the store and server, then run until cancelled (CLI body)."""
    await store.start()
    server = SweepServer(store, host, port)
    bound_port = await server.start()
    if ready is not None:
        ready(bound_port)
    try:
        await asyncio.Event().wait()
    finally:
        await server.close()
        await store.close()

"""``repro.serve``: the multi-tenant, multi-node sweep service.

Turns the CLI batch tool into an async simulation server:

* :mod:`repro.serve.scheduler` — the :class:`~repro.serve.scheduler.JobStore`
  core: per-tenant fair queuing, in-flight dedup by ``spec_hash``,
  bounded worker pool over the PR-2 process-per-cell fan-out,
  backpressure via :class:`~repro.serve.scheduler.QueueFullError`, and
  the remote-lease table (grant / heartbeat / reap-and-requeue) behind
  distributed workers.
* :mod:`repro.serve.journal` — the durable head journal: an append-only
  JSONL write-ahead log under the cache dir that lets a killed head
  recover its jobs, queues, and open leases on restart.
* :mod:`repro.serve.protocol` — stdlib HTTP framing plus the versioned
  typed wire messages (``protocol_version``-stamped frozen dataclasses)
  every peer shares; version skew fails loudly with a structured 400.
* :mod:`repro.serve.server` — a stdlib-only asyncio HTTP/JSON front end
  (submit grids, stream NDJSON progress, fetch results and cached
  artifacts, grant leases) started by ``python -m repro serve``.
* :mod:`repro.serve.worker` — the remote worker pull loop
  (``repro serve --role worker --head URL``): lease a batch, heartbeat,
  execute via :func:`~repro.experiments.orchestrator.execute_cell`,
  push results back for artifact replication; rides out head restarts
  with jittered backoff and drains gracefully on ``SIGTERM``.
* :mod:`repro.serve.client` — sync and async clients raising one typed
  :class:`~repro.serve.client.ServeError` hierarchy; ``repro sweep
  --server URL`` routes an ordinary sweep through a running head.
* :mod:`repro.serve.backoff` — the shared full-jitter backoff helper
  used by clients and workers.
* :mod:`repro.serve.chaos` — deterministic fault injection (dropped /
  duplicated RPCs, heartbeat blackouts, head kills) for crash-safety
  testing.

Everything rides on the content-addressed ``.repro_cache`` store, so a
head, its workers, and local sweeps sharing a cache directory also
share results.
"""

from repro.serve.backoff import Backoff, jittered
from repro.serve.chaos import ChaosClient, ChaosSchedule, RestartableHead
from repro.serve.client import AsyncServeClient, ServeClient, ServeError
from repro.serve.journal import Journal
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.scheduler import (
    Job,
    JobStore,
    Lease,
    QueueFullError,
    UnknownLeaseError,
)
from repro.serve.server import SweepServer
from repro.serve.worker import WorkerNode

__all__ = [
    "AsyncServeClient",
    "Backoff",
    "ChaosClient",
    "ChaosSchedule",
    "Job",
    "JobStore",
    "Journal",
    "Lease",
    "PROTOCOL_VERSION",
    "QueueFullError",
    "RestartableHead",
    "ServeClient",
    "ServeError",
    "SweepServer",
    "UnknownLeaseError",
    "WorkerNode",
    "jittered",
]

"""``repro.serve``: the multi-tenant sweep service.

Turns the CLI batch tool into an async simulation server:

* :mod:`repro.serve.scheduler` — the :class:`~repro.serve.scheduler.JobStore`
  core: per-tenant fair queuing, in-flight dedup by ``spec_hash``,
  bounded worker pool over the PR-2 process-per-cell fan-out, and
  backpressure via :class:`~repro.serve.scheduler.QueueFullError`.
* :mod:`repro.serve.server` — a stdlib-only asyncio HTTP/JSON front end
  (submit grids, stream NDJSON progress, fetch results and cached
  artifacts) started by ``python -m repro serve``.
* :mod:`repro.serve.client` — sync and async clients; ``repro sweep
  --server URL`` routes an ordinary sweep through a running server.

Everything rides on the content-addressed ``.repro_cache`` store, so a
server and local sweeps sharing a cache directory also share results.
"""

from repro.serve.scheduler import Job, JobStore, QueueFullError
from repro.serve.server import SweepServer

__all__ = ["Job", "JobStore", "QueueFullError", "SweepServer"]

"""Deterministic fault injection for the serve layer (the chaos harness).

Crash-safety claims are only as good as the crashes they were tested
against, so this module makes serve-layer faults *reproducible*: every
injected fault — a dropped RPC, a lost reply, a duplicated request, a
heartbeat blackout, a head killed mid-sweep — is drawn from a
:func:`repro.sim.rng.make_rng` stream seeded by a
:class:`ChaosSchedule`, so a failing schedule replays exactly.

Three pieces:

* :class:`ChaosSchedule` — a frozen spec of fault probabilities and
  windows plus the seed that drives them.  Carried by value into tests;
  two runs with the same schedule inject the same faults in the same
  order.
* :class:`ChaosClient` — a :class:`~repro.serve.client.ServeClient`
  whose transport misbehaves on schedule.  Inject it into a
  :class:`~repro.serve.worker.WorkerNode` (``client=``) to exercise the
  worker's backoff, buffering, and release paths.  Faults raise
  :class:`~repro.serve.client.ServeConnectionError` with a
  ``ConnectionResetError`` cause, so they classify as *transient*
  exactly like real resets.  ``drop_reply`` is the nasty one: the
  request **executes head-side** but the caller sees a failure, so a
  retrying worker produces duplicate pushes — which the head must fold
  at most once.
* :class:`RestartableHead` — a real :class:`~repro.serve.server
  .SweepServer` + :class:`~repro.serve.scheduler.JobStore` on a
  background event-loop thread that can be killed abruptly (no
  compaction, no farewell — in-memory state simply vanishes, exactly
  like ``kill -9``) and restarted on the *same* cache dir and port, so
  journal recovery is exercised against live clients.  Set
  ``kill_after_folds`` to crash deterministically at the N-th result
  fold (a cell boundary).

None of this is imported by production paths; it lives in the package
(not in ``tests/``) so external users can chaos-test their own
deployments.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.serve.client import ServeClient, ServeConnectionError
from repro.serve.scheduler import JobStore
from repro.serve.server import SweepServer
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class ChaosSchedule:
    """A reproducible serve-layer fault plan.

    Probabilities are per-RPC, drawn in a fixed order from one seeded
    stream, so the fault sequence is a pure function of (seed, RPC
    order).  ``heartbeat_blackout=(first, count)`` drops that window of
    heartbeat calls outright, regardless of probability draws — the
    deterministic way to force a lease past its TTL.
    """

    seed: int
    drop_rpc_p: float = 0.0        # connection dies before the request sends
    drop_reply_p: float = 0.0      # request executes; the reply is lost
    duplicate_rpc_p: float = 0.0   # request is sent (and executed) twice
    delay_p: float = 0.0           # request is delayed by ``delay_s``
    delay_s: float = 0.05
    heartbeat_blackout: Optional[tuple[int, int]] = None
    #: Crash the :class:`RestartableHead` right after its N-th result
    #: fold (consumed by the head, not the client).
    kill_head_after_folds: Optional[int] = None

    def rng(self, stream: str = "chaos:rpc"):
        return make_rng(self.seed, stream)


class ChaosClient(ServeClient):
    """A ServeClient whose transport fails on a seeded schedule.

    Only ``_request_once`` is overridden: every fault is visible to the
    caller exactly as a real transport fault would be, so the retry,
    grace, and buffering machinery above it is what gets tested.
    Thread-safe — worker heartbeat/push threads share one draw stream
    under a lock (the draw *order* then depends on thread interleaving,
    but each run still only injects schedule-distributed faults, and
    the blackout window is indexed by heartbeat count, which is
    deterministic per batch).
    """

    def __init__(self, schedule: ChaosSchedule, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.schedule = schedule
        self._chaos_rng = schedule.rng()
        self._chaos_lock = threading.Lock()
        self._heartbeat_calls = 0
        #: How many of each fault actually fired (test assertions).
        self.injected = {
            "dropped": 0,
            "replies_dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "blackouts": 0,
        }

    def _fault(self, path: str, why: str) -> ServeConnectionError:
        exc = ServeConnectionError(f"chaos: {why} ({path})")
        exc.__cause__ = ConnectionResetError(why)  # classify as transient
        return exc

    def _plan(self, path: str) -> dict:
        s = self.schedule
        with self._chaos_lock:
            blackout = False
            if path.endswith("/heartbeat") and s.heartbeat_blackout:
                beat = self._heartbeat_calls
                self._heartbeat_calls += 1
                first, count = s.heartbeat_blackout
                blackout = first <= beat < first + count
            draw = self._chaos_rng.random(4)
            plan = {
                "blackout": blackout,
                "delay": bool(draw[0] < s.delay_p),
                "drop": bool(draw[1] < s.drop_rpc_p),
                "duplicate": bool(draw[2] < s.duplicate_rpc_p),
                "drop_reply": bool(draw[3] < s.drop_reply_p),
            }
        return plan

    def _request_once(self, method, path, payload=None):
        plan = self._plan(path)
        if plan["blackout"]:
            self.injected["blackouts"] += 1
            raise self._fault(path, "heartbeat blackout")
        if plan["delay"]:
            self.injected["delayed"] += 1
            time.sleep(self.schedule.delay_s)
        if plan["drop"]:
            self.injected["dropped"] += 1
            raise self._fault(path, "request dropped before send")
        result = super()._request_once(method, path, payload)
        if plan["duplicate"]:
            self.injected["duplicated"] += 1
            try:
                result = super()._request_once(method, path, payload)
            except ServeConnectionError:
                pass  # the replay was lost; the first reply stands
        if plan["drop_reply"]:
            self.injected["replies_dropped"] += 1
            raise self._fault(path, "reply dropped after execution")
        return result


class RestartableHead:
    """A live head that can be killed abruptly and restarted in place.

    The JobStore runs with its durable journal on ``cache_dir``; a
    :meth:`kill` tears the event loop down without compaction or any
    farewell writes — from the journal's point of view it is a crash —
    and :meth:`restart` boots a fresh store on the same cache dir and
    re-binds the *same* port, so clients mid-backoff reconnect to the
    recovered head transparently.
    """

    def __init__(self, cache_dir, **store_kwargs):
        self.cache_dir = str(cache_dir)
        self.store_kwargs = dict(store_kwargs)
        self.store_kwargs.setdefault("workers", 0)
        self.store_kwargs["use_cache"] = True
        self.store_kwargs["cache_dir"] = self.cache_dir
        self.port = 0
        self.store: Optional[JobStore] = None
        self.restarts = 0
        #: When set, the head crashes right after this many result
        #: folds (consumed by the next :meth:`start`).
        self.kill_after_folds: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop = None
        self._stop: Optional[asyncio.Event] = None
        self._ready: Optional[threading.Event] = None
        self._failure: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def client(self, tenant: str = "default", **kwargs) -> ServeClient:
        kwargs.setdefault("timeout_s", 60.0)
        return ServeClient(port=self.port, tenant=tenant, **kwargs)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "RestartableHead":
        self._ready = threading.Event()
        self._failure = None
        self._thread = threading.Thread(
            target=self._thread_main, name="chaos-head", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("chaos head never came up")
        if self._failure is not None:
            raise self._failure
        return self

    def kill(self) -> None:
        """Abrupt stop: in-memory jobs, queues, and leases vanish."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone (a self-kill fired first)
        self.wait_down()

    stop = kill  # fixture-teardown alias

    def wait_down(self, timeout_s: float = 30.0) -> None:
        """Block until the head's thread has exited (post self-kill)."""
        if self._thread is None:
            return
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():
            raise AssertionError("chaos head failed to stop")

    def restart(self) -> "RestartableHead":
        """Kill (if still up) and boot again on the same cache dir/port."""
        self.kill()
        self.restarts += 1
        return self.start()

    # -- server thread ---------------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except Exception as exc:  # surface boot failures to the caller
            self._failure = exc
            if self._ready is not None:
                self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.store = JobStore(**self.store_kwargs)
        await self.store.start()
        kill_after = self.kill_after_folds
        self.kill_after_folds = None  # consumed; re-arm per start if needed
        if kill_after is not None:
            self._arm_fold_crash(self.store, kill_after)
        server = SweepServer(self.store, port=self.port)
        self.port = await server.start()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()
            await self.store.close()

    def _arm_fold_crash(self, store: JobStore, folds: int) -> None:
        """Crash this head right after its ``folds``-th result fold.

        The fold (and its journal append) completes first, so the crash
        lands exactly on a cell boundary — the sharpest spot for
        exactly-once accounting bugs.
        """
        original = store._resolve
        state = {"folds": 0}

        def wrapped(entry, stats, error, remote=False):
            original(entry, stats, error, remote=remote)
            state["folds"] += 1
            if state["folds"] == folds:
                self._stop.set()  # we are on the loop thread here

        store._resolve = wrapped

"""Minimal HTTP/1.1 framing over asyncio streams.

The sweep service deliberately avoids web-framework dependencies — the
container ships only the scientific toolchain — so this module provides
the two things the server needs from HTTP and nothing more:

* :func:`read_request` — parse one request (request line, headers, a
  Content-Length body) from a stream reader, and
* :func:`render_response` / :func:`render_stream_head` — serialize
  responses; normal replies carry ``Content-Length`` and close the
  connection, NDJSON event streams send headers up front and write
  lines until the job finishes (``Connection: close`` delimits the
  body, so clients read to EOF).

One request per connection keeps the framing trivial and matches the
client's usage (submissions and polls are single exchanges; streams are
long-lived by design).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote

#: Reject request bodies beyond this (a 100k-cell grid is ~40 MB).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Reason phrases for the statuses the server actually emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ProtocolError(ValueError):
    """Malformed or oversized request; maps to a 400/413 response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def segments(self) -> list[str]:
        """Non-empty path segments: ``/jobs/ab12/events`` ->
        ``["jobs", "ab12", "events"]``."""
        return [part for part in self.path.split("/") if part]


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> Request | None:
    """Parse one request; None when the peer closed before sending one."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError(400, "non-integer Content-Length") from None
    if length < 0 or length > max_body:
        raise ProtocolError(413, f"body of {length} bytes exceeds {max_body}")
    body = await reader.readexactly(length) if length else b""

    path, _sep, query_string = target.partition("?")
    return Request(
        method=method.upper(),
        path=unquote(path),
        query=parse_qs(query_string),
        headers=headers,
        body=body,
    )


def _head(
    status: int, content_type: str, extra_headers: tuple[tuple[str, str], ...]
) -> list[str]:
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return lines


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """A complete fixed-length response."""
    lines = _head(status, content_type, extra_headers)
    lines.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_stream_head(
    status: int = 200,
    content_type: str = "application/x-ndjson",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Headers for a streamed body delimited by connection close."""
    lines = _head(status, content_type, extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

"""The sweep service's wire protocol: HTTP framing + versioned messages.

Two layers live here, shared by the server, the clients, and the remote
worker so that none of them can drift apart:

**HTTP framing.** The service deliberately avoids web-framework
dependencies — the container ships only the scientific toolchain — so
:func:`read_request` parses one request (request line, headers, a
Content-Length body) from a stream reader and :func:`render_response` /
:func:`render_stream_head` serialize responses; normal replies carry
``Content-Length`` and close the connection, NDJSON event streams send
headers up front and write lines until the job finishes.  One request
per connection keeps the framing trivial and matches the clients' usage.

**Versioned wire messages.** Every request/response body is a frozen
dataclass carrying ``protocol_version`` (:data:`PROTOCOL_VERSION`):
:class:`SubmitRequest`, :class:`JobSnapshot`, :class:`JobResults`,
:class:`LeaseRequest`/:class:`LeaseGrant`, :class:`HeartbeatRequest`/
:class:`HeartbeatAck`, :class:`ResultPush`/:class:`ResultAck`,
:class:`LeaseRelease`/:class:`ReleaseAck`, and :class:`ErrorBody`.  ``from_dict`` on each of them calls
:func:`check_version` first, so a head and a worker (or a client) built
from different protocol revisions fail loudly with a structured
``protocol_mismatch`` error instead of silently misreading fields.
NDJSON *events* remain plain dicts — they are an append-only stream
reached through a versioned snapshot, not a negotiated surface.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Mapping, Optional
from urllib.parse import parse_qs, unquote

from repro.core.system import RunStats
from repro.experiments.spec import SimSpec

#: Bump on any incompatible change to the message shapes below.  The
#: server rejects mismatched submissions/leases with a structured 400,
#: and workers refuse to start against a head of a different version.
PROTOCOL_VERSION = 1

#: Reject request bodies beyond this (a 100k-cell grid is ~40 MB).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Reason phrases for the statuses the server actually emits.
REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ProtocolError(ValueError):
    """Malformed or oversized request; maps to a 400/413 response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def segments(self) -> list[str]:
        """Non-empty path segments: ``/jobs/ab12/events`` ->
        ``["jobs", "ab12", "events"]``."""
        return [part for part in self.path.split("/") if part]


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> Request | None:
    """Parse one request; None when the peer closed before sending one."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError(400, "non-integer Content-Length") from None
    if length < 0 or length > max_body:
        raise ProtocolError(413, f"body of {length} bytes exceeds {max_body}")
    body = await reader.readexactly(length) if length else b""

    path, _sep, query_string = target.partition("?")
    return Request(
        method=method.upper(),
        path=unquote(path),
        query=parse_qs(query_string),
        headers=headers,
        body=body,
    )


def _head(
    status: int, content_type: str, extra_headers: tuple[tuple[str, str], ...]
) -> list[str]:
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return lines


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """A complete fixed-length response."""
    lines = _head(status, content_type, extra_headers)
    lines.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_stream_head(
    status: int = 200,
    content_type: str = "application/x-ndjson",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Headers for a streamed body delimited by connection close."""
    lines = _head(status, content_type, extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


# ---------------------------------------------------------------------------
# Versioned wire messages
# ---------------------------------------------------------------------------


class VersionMismatchError(ProtocolError):
    """The peer speaks a different protocol revision (or none at all)."""

    def __init__(self, got):
        super().__init__(
            400,
            f"protocol version mismatch: expected {PROTOCOL_VERSION}, "
            f"got {got!r}",
        )
        self.expected = PROTOCOL_VERSION
        self.got = got


def check_version(data: Mapping) -> None:
    """Raise :class:`VersionMismatchError` unless ``data`` carries ours."""
    got = data.get("protocol_version") if isinstance(data, Mapping) else None
    if got != PROTOCOL_VERSION:
        raise VersionMismatchError(got)


def _versioned(payload: dict) -> dict:
    payload["protocol_version"] = PROTOCOL_VERSION
    return payload


@dataclass(frozen=True)
class ErrorBody:
    """Structured error payload: ``{"error": {...}, "protocol_version"}``.

    ``kind`` carries either a transport-level condition (``bad_request``,
    ``queue_full``, ``protocol_mismatch``, ``unknown_job``,
    ``unknown_lease``, ``unknown_artifact``, ``internal``) or — inside
    job results — a PR-5 cell failure kind ("error" | "timeout" |
    "crash" | "stall" | "deadlock" | "worker_lost").
    """

    kind: str
    message: str
    retry_after_s: Optional[float] = None
    pending: Optional[int] = None
    limit: Optional[int] = None
    expected_version: Optional[int] = None
    got_version: Optional[int] = None

    _OPTIONAL = (
        "retry_after_s", "pending", "limit",
        "expected_version", "got_version",
    )

    def to_dict(self) -> dict:
        error = {"kind": self.kind, "message": self.message}
        for name in self._OPTIONAL:
            value = getattr(self, name)
            if value is not None:
                error[name] = value
        return _versioned({"error": error})

    @classmethod
    def from_dict(cls, data: Mapping) -> "ErrorBody":
        # Error bodies are deliberately parsed *without* a version check:
        # a mismatch report must be readable by the very peer it rejects.
        error = data.get("error", {}) if isinstance(data, Mapping) else {}
        if not isinstance(error, Mapping):
            error = {}
        return cls(
            kind=str(error.get("kind", "error")),
            message=str(error.get("message", data)),
            **{name: error.get(name) for name in cls._OPTIONAL},
        )


@dataclass(frozen=True)
class SubmitRequest:
    """``POST /jobs`` body: one tenant's grid of spec cells."""

    specs: tuple[SimSpec, ...]
    tenant: Optional[str] = None  # None: fall back to header/default

    def to_dict(self) -> dict:
        payload = {"specs": [spec.to_dict() for spec in self.specs]}
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        return _versioned(payload)

    @classmethod
    def from_dict(cls, data: Mapping) -> "SubmitRequest":
        check_version(data)
        raw_specs = data.get("specs")
        if not isinstance(raw_specs, list):
            raise TypeError("'specs' must be a list of spec objects")
        tenant = data.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise TypeError("'tenant' must be a string")
        return cls(
            specs=tuple(SimSpec.from_dict(item) for item in raw_specs),
            tenant=tenant,
        )


@dataclass(frozen=True)
class JobSnapshot:
    """One job's status: per-state counts, health, optional cell detail."""

    job_id: str
    tenant: str
    state: str  # "running" | "done"
    cells: int
    queued: int
    running: int
    done: int
    failed: int
    cached: int
    deduped: int
    simulated: int
    failure_kinds: dict
    created_at: float
    elapsed_s: float
    cells_detail: Optional[tuple[dict, ...]] = None

    _COUNTS = (
        "cells", "queued", "running", "done", "failed",
        "cached", "deduped", "simulated",
    )

    @classmethod
    def from_job(cls, job, detail: bool = False) -> "JobSnapshot":
        """Snapshot a live :class:`~repro.serve.scheduler.Job`."""
        data = job.snapshot(detail=detail)
        detail_rows = data.get("cells_detail")
        return cls(
            job_id=data["job_id"],
            tenant=data["tenant"],
            state=data["state"],
            failure_kinds=dict(data["failure_kinds"]),
            created_at=data["created_at"],
            elapsed_s=data["elapsed_s"],
            cells_detail=(
                tuple(detail_rows) if detail_rows is not None else None
            ),
            **{name: data[name] for name in cls._COUNTS},
        )

    def to_dict(self) -> dict:
        payload = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            **{name: getattr(self, name) for name in self._COUNTS},
            "failure_kinds": dict(self.failure_kinds),
            "created_at": self.created_at,
            "elapsed_s": self.elapsed_s,
        }
        if self.cells_detail is not None:
            payload["cells_detail"] = list(self.cells_detail)
        return _versioned(payload)

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobSnapshot":
        check_version(data)
        detail_rows = data.get("cells_detail")
        return cls(
            job_id=data["job_id"],
            tenant=data["tenant"],
            state=data["state"],
            failure_kinds=dict(data.get("failure_kinds", {})),
            created_at=data.get("created_at", 0.0),
            elapsed_s=data.get("elapsed_s", 0.0),
            cells_detail=(
                tuple(detail_rows) if detail_rows is not None else None
            ),
            **{name: data[name] for name in cls._COUNTS},
        )


@dataclass(frozen=True)
class CellResultWire:
    """One delivered cell inside a :class:`JobResults` body."""

    index: int
    spec: SimSpec
    spec_hash: str
    origin: Optional[str]
    stats: RunStats

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "origin": self.origin,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CellResultWire":
        return cls(
            index=data.get("index", 0),
            spec=SimSpec.from_dict(data["spec"]),
            spec_hash=data["spec_hash"],
            origin=data.get("origin"),
            stats=RunStats.from_dict(data["stats"]),
        )


@dataclass(frozen=True)
class CellFailureWire:
    """One failed cell inside a :class:`JobResults` body."""

    index: int
    spec: SimSpec
    spec_hash: str
    error: dict  # {"kind", "message", "attempts"} — PR-5 failure kinds

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "error": dict(self.error),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CellFailureWire":
        return cls(
            index=data.get("index", 0),
            spec=SimSpec.from_dict(data["spec"]),
            spec_hash=data["spec_hash"],
            error=dict(data.get("error", {})),
        )


@dataclass(frozen=True)
class JobResults:
    """``GET /jobs/<id>/results`` body: snapshot + stats + failures."""

    snapshot: JobSnapshot
    results: tuple[CellResultWire, ...]
    failures: tuple[CellFailureWire, ...]

    @classmethod
    def from_job(cls, job) -> "JobResults":
        data = job.results_dict()
        return cls(
            snapshot=JobSnapshot.from_job(job, detail=False),
            results=tuple(
                CellResultWire.from_dict(item) for item in data["results"]
            ),
            failures=tuple(
                CellFailureWire.from_dict(item) for item in data["failures"]
            ),
        )

    def to_dict(self) -> dict:
        payload = self.snapshot.to_dict()
        payload["results"] = [item.to_dict() for item in self.results]
        payload["failures"] = [item.to_dict() for item in self.failures]
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobResults":
        return cls(
            snapshot=JobSnapshot.from_dict(data),
            results=tuple(
                CellResultWire.from_dict(item)
                for item in data.get("results", ())
            ),
            failures=tuple(
                CellFailureWire.from_dict(item)
                for item in data.get("failures", ())
            ),
        )


@dataclass(frozen=True)
class LeaseRequest:
    """``POST /leases`` body: a worker asking for a batch of cells."""

    worker_id: str
    max_cells: int = 4

    def to_dict(self) -> dict:
        return _versioned({
            "worker_id": self.worker_id,
            "max_cells": self.max_cells,
        })

    @classmethod
    def from_dict(cls, data: Mapping) -> "LeaseRequest":
        check_version(data)
        worker_id = data.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise TypeError("'worker_id' must be a non-empty string")
        max_cells = data.get("max_cells", 4)
        if not isinstance(max_cells, int) or max_cells < 1:
            raise TypeError("'max_cells' must be a positive integer")
        return cls(worker_id=worker_id, max_cells=max_cells)


@dataclass(frozen=True)
class LeaseCell:
    """One leased cell: the spec to execute plus its book-keeping."""

    spec: SimSpec
    spec_hash: str
    tenant: str
    attempt: int  # 1-based count of workers this cell has been leased to

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "tenant": self.tenant,
            "attempt": self.attempt,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LeaseCell":
        return cls(
            spec=SimSpec.from_dict(data["spec"]),
            spec_hash=data["spec_hash"],
            tenant=data.get("tenant", "default"),
            attempt=data.get("attempt", 1),
        )


@dataclass(frozen=True)
class LeaseGrant:
    """``POST /leases`` response: a batch of cells + lease token + TTL.

    An empty grant (``lease_id == ""``, no cells) means no work was
    queued; the worker should poll again after ``retry_after_s``.
    """

    lease_id: str
    token: str
    ttl_s: float
    cells: tuple[LeaseCell, ...]
    retry_after_s: float = 0.0

    @property
    def is_empty(self) -> bool:
        return not self.cells

    def to_dict(self) -> dict:
        return _versioned({
            "lease_id": self.lease_id,
            "token": self.token,
            "ttl_s": self.ttl_s,
            "cells": [cell.to_dict() for cell in self.cells],
            "retry_after_s": self.retry_after_s,
        })

    @classmethod
    def from_dict(cls, data: Mapping) -> "LeaseGrant":
        check_version(data)
        return cls(
            lease_id=data.get("lease_id", ""),
            token=data.get("token", ""),
            ttl_s=data.get("ttl_s", 0.0),
            cells=tuple(
                LeaseCell.from_dict(item) for item in data.get("cells", ())
            ),
            retry_after_s=data.get("retry_after_s", 0.0),
        )


@dataclass(frozen=True)
class HeartbeatRequest:
    """``POST /leases/<id>/heartbeat`` body: extend the lease TTL."""

    token: str

    def to_dict(self) -> dict:
        return _versioned({"token": self.token})

    @classmethod
    def from_dict(cls, data: Mapping) -> "HeartbeatRequest":
        check_version(data)
        token = data.get("token")
        if not isinstance(token, str) or not token:
            raise TypeError("'token' must be a non-empty string")
        return cls(token=token)


@dataclass(frozen=True)
class HeartbeatAck:
    """Heartbeat response: the renewed deadline and remaining cells."""

    lease_id: str
    ttl_s: float
    expires_in_s: float
    cells_outstanding: int

    def to_dict(self) -> dict:
        return _versioned({
            "lease_id": self.lease_id,
            "ttl_s": self.ttl_s,
            "expires_in_s": self.expires_in_s,
            "cells_outstanding": self.cells_outstanding,
        })

    @classmethod
    def from_dict(cls, data: Mapping) -> "HeartbeatAck":
        check_version(data)
        return cls(
            lease_id=data["lease_id"],
            ttl_s=data.get("ttl_s", 0.0),
            expires_in_s=data.get("expires_in_s", 0.0),
            cells_outstanding=data.get("cells_outstanding", 0),
        )


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell pushed back by a worker: stats or a failure."""

    spec_hash: str
    stats: Optional[RunStats] = None
    error: Optional[dict] = None  # {"kind", "message", "attempts"}
    simulated: bool = True  # False: served from a worker-side cache

    def to_dict(self) -> dict:
        payload: dict = {
            "spec_hash": self.spec_hash,
            "simulated": self.simulated,
        }
        if self.stats is not None:
            payload["stats"] = self.stats.to_dict()
        if self.error is not None:
            payload["error"] = dict(self.error)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "CellOutcome":
        stats = data.get("stats")
        error = data.get("error")
        if (stats is None) == (error is None):
            raise TypeError(
                "a cell outcome carries exactly one of 'stats' or 'error'"
            )
        return cls(
            spec_hash=data["spec_hash"],
            stats=RunStats.from_dict(stats) if stats is not None else None,
            error=dict(error) if error is not None else None,
            simulated=bool(data.get("simulated", True)),
        )


@dataclass(frozen=True)
class ResultPush:
    """``POST /leases/<id>/results`` body: completed cells of a lease."""

    token: str
    outcomes: tuple[CellOutcome, ...]
    worker_id: str = ""

    def to_dict(self) -> dict:
        return _versioned({
            "token": self.token,
            "worker_id": self.worker_id,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        })

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultPush":
        check_version(data)
        outcomes = data.get("outcomes")
        if not isinstance(outcomes, list):
            raise TypeError("'outcomes' must be a list")
        return cls(
            token=data.get("token", ""),
            outcomes=tuple(CellOutcome.from_dict(item) for item in outcomes),
            worker_id=data.get("worker_id", ""),
        )


@dataclass(frozen=True)
class LeaseRelease:
    """``POST /leases/<id>/release`` body: give unstarted cells back.

    A draining worker's graceful counterpart to lease expiry: the named
    cells requeue immediately (no TTL wait) and the grant's charge
    against their retry budget is refunded.  An empty ``spec_hashes``
    releases every remaining cell of the lease.
    """

    token: str
    spec_hashes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return _versioned({
            "token": self.token,
            "spec_hashes": list(self.spec_hashes),
        })

    @classmethod
    def from_dict(cls, data: Mapping) -> "LeaseRelease":
        check_version(data)
        token = data.get("token")
        if not isinstance(token, str) or not token:
            raise TypeError("'token' must be a non-empty string")
        hashes = data.get("spec_hashes", [])
        if not isinstance(hashes, list) or not all(
            isinstance(item, str) for item in hashes
        ):
            raise TypeError("'spec_hashes' must be a list of strings")
        return cls(token=token, spec_hashes=tuple(hashes))


@dataclass(frozen=True)
class ReleaseAck:
    """Release response: cells requeued, and whether the lease survives."""

    released: int
    lease_open: bool

    def to_dict(self) -> dict:
        return _versioned({
            "released": self.released,
            "lease_open": self.lease_open,
        })

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReleaseAck":
        check_version(data)
        return cls(
            released=data.get("released", 0),
            lease_open=bool(data.get("lease_open", False)),
        )


@dataclass(frozen=True)
class ResultAck:
    """Result-push response.

    ``accepted`` cells resolved a pending execution; ``stale`` cells
    were already resolved elsewhere (a reaped lease's worker pushing
    late, or a duplicate push) and were discarded.  ``lease_open`` is
    False once the head no longer tracks the lease — the worker should
    stop executing that batch, its remaining cells have been requeued.
    """

    accepted: int
    stale: int
    lease_open: bool

    def to_dict(self) -> dict:
        return _versioned({
            "accepted": self.accepted,
            "stale": self.stale,
            "lease_open": self.lease_open,
        })

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultAck":
        check_version(data)
        return cls(
            accepted=data.get("accepted", 0),
            stale=data.get("stale", 0),
            lease_open=bool(data.get("lease_open", False)),
        )

"""Durable head journal: an append-only JSONL write-ahead log.

The :class:`~repro.serve.scheduler.JobStore` keeps its scheduling state
(tenant queues, in-flight dedup, leases) in memory; this journal is what
makes that state survive a head crash.  Every state transition that must
outlive the process appends one JSON record:

``{"rec": "job", ...}``
    A submission: job id, tenant, creation time, and the full spec list.
``{"rec": "resolve", ...}``
    A terminal fold for one distinct ``spec_hash``: ``ok`` plus the
    ``(job, index, origin)`` cells it satisfied, the structured error
    for failures, and a ``remote`` flag for worker-pushed outcomes.
    Successful stats are *not* journaled — they live in the
    content-addressed result cache; recovery re-reads them by hash.
``{"rec": "lease", ...}``
    A grant: lease id, token, worker id, TTL, and the leased
    ``spec_hash -> attempt`` map.  Journaling the token is what lets a
    restarted head accept late pushes from pre-restart workers.
``{"rec": "lease_closed", ...}`` / ``{"rec": "release", ...}``
    Lease completion/reap, and a graceful give-back of unstarted cells
    (which refunds the retry attempt the grant charged).
``{"rec": "totals", ...}``
    Written by compaction: the counter contribution of every record the
    compaction dropped, so ``/stats`` totals stay cumulative across
    restarts even after fully-resolved jobs leave the journal.

Durability is batched: every append is flushed to the OS immediately
(a ``kill -9`` of the head loses nothing) and ``fsync``\\ ed every
``fsync_every`` records (bounding what a machine crash can lose without
paying an fsync per cell).  Loading tolerates corruption: the file is
truncated at the first torn or unparseable line with a warning — a
crash mid-append can never make the head unbootable.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import IO, Optional

#: Journal file name, created under the result-cache root so a head, its
#: journal, and its artifacts share one durable directory.
JOURNAL_NAME = "journal.jsonl"

#: fsync once per this many appended records (flush-to-OS is per append).
DEFAULT_FSYNC_EVERY = 32


class Journal:
    """Append-only JSONL log with batched fsync and torn-tail tolerance."""

    def __init__(self, path: str, fsync_every: int = DEFAULT_FSYNC_EVERY):
        self.path = path
        self.fsync_every = max(1, fsync_every)
        self._handle: Optional[IO[bytes]] = None
        self._unsynced = 0
        #: Records appended since the last load()/rewrite(); a cheap
        #: growth signal callers can use to trigger compaction.
        self.appended_since_load = 0

    # -- loading ---------------------------------------------------------------

    def load(self) -> list[dict]:
        """Read every record, truncating a torn tail in place.

        Scans the file line by line; the first line that fails to parse
        as a JSON object marks the torn tail — the file is truncated to
        just before it (with a warning) and everything earlier is
        returned.  A missing file is an empty journal.  Re-opens the
        append handle afterwards, so ``load()`` is safe to call again
        (recovery replays are idempotent).
        """
        self.close()
        records: list[dict] = []
        good_bytes = 0
        try:
            with open(self.path, "rb") as handle:
                for line in handle:
                    stripped = line.strip()
                    if not stripped:
                        good_bytes += len(line)
                        continue
                    try:
                        record = json.loads(stripped)
                    except ValueError:
                        record = None
                    if not isinstance(record, dict):
                        break  # torn/corrupt: drop this line and the rest
                    if not line.endswith(b"\n"):
                        break  # unterminated final line: a torn append
                    records.append(record)
                    good_bytes += len(line)
                else:
                    good_bytes = None  # clean file: no truncation needed
        except FileNotFoundError:
            good_bytes = None
        if good_bytes is not None:
            warnings.warn(
                f"journal {self.path}: torn or corrupt tail; truncating "
                f"to {good_bytes} byte(s) ({len(records)} intact record(s))",
                RuntimeWarning,
                stacklevel=2,
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(good_bytes)
        self._open_for_append()
        self.appended_since_load = 0
        return records

    # -- appending -------------------------------------------------------------

    def _open_for_append(self) -> None:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._handle = open(self.path, "ab")
        self._unsynced = 0

    def append(self, *records: dict) -> None:
        """Append records (one flush for the batch, fsync when due)."""
        if not records:
            return
        if self._handle is None:
            self._open_for_append()
        payload = b"".join(
            json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
            for record in records
        )
        self._handle.write(payload)
        self._handle.flush()  # survive a process kill; fsync is batched
        self._unsynced += len(records)
        self.appended_since_load += len(records)
        if self._unsynced >= self.fsync_every:
            os.fsync(self._handle.fileno())
            self._unsynced = 0

    def flush(self) -> None:
        """Force any batched-but-unsynced records to stable storage."""
        if self._handle is None:
            return
        self._handle.flush()
        if self._unsynced:
            os.fsync(self._handle.fileno())
            self._unsynced = 0

    # -- compaction ------------------------------------------------------------

    def rewrite(self, records: list[dict]) -> None:
        """Atomically replace the journal's contents (compaction).

        Writes the new records to a temp file in the same directory,
        fsyncs it, and ``os.replace``\\ s it over the journal, so a crash
        mid-compaction leaves either the old or the new journal — never
        a torn mix.
        """
        self.close()
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=JOURNAL_NAME + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                for record in records:
                    handle.write(
                        json.dumps(record, separators=(",", ":"))
                        .encode("utf-8") + b"\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._open_for_append()
        self.appended_since_load = 0

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            self.flush()
        finally:
            self._handle.close()
            self._handle = None

"""Remote sweep worker: ``python -m repro serve --role worker --head URL``.

A worker node owns no queues and no jobs — it is a pull loop against a
head's lease API (:mod:`repro.serve.server`):

1. **lease** — ``POST /leases`` asks for a batch of up to
   ``lease_cells`` queued cells; an empty grant sleeps ``poll_s`` (the
   head's ``retry_after_s`` hint, if longer) and retries.
2. **heartbeat** — a daemon thread extends the lease every ``ttl / 3``
   seconds while any cell of the batch is still executing.  A failed
   heartbeat (head reaped the lease, network partition) flips the
   batch's ``lost`` flag: in-flight cells finish and still push — the
   head accepts late results for unresolved cells — but no new cell of
   the batch starts.
3. **execute** — each cell first tries the worker's *local* result
   cache, then ``GET /cells/<hash>`` on the head (cache warming), and
   only then simulates via the PR-7
   :func:`~repro.experiments.orchestrator.execute_cell` path (process
   isolation, timeout, retries) on a small thread pool.
4. **push** — every completed cell is pushed promptly
   (``POST /leases/<id>/results``), one outcome per call, so a worker
   killed mid-batch loses at most the cells it had not finished; the
   head replicates pushed artifacts into its own cache, which is what
   makes the next ``GET /cells/<hash>`` — and every future submission —
   a hit.  An ack with ``lease_open=False`` means the head reaped the
   lease and requeued the leftovers: the worker abandons the batch.

Failures ride the same wire: a cell that exhausts its local retries
pushes a structured error (PR-5 ``CellFailure`` kinds), and a worker
that dies without pushing is handled entirely head-side (lease expiry →
requeue → ``worker_lost`` after the retry budget).  The worker refuses
to start against a head speaking a different ``protocol_version``.
"""

from __future__ import annotations

import secrets
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.system import RunStats
from repro.experiments.orchestrator import (
    CellExecutionError,
    ResultCache,
    _failure_kind,
    execute_cell,
)
from repro.experiments.spec import SimSpec
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import CellOutcome, LeaseGrant, ResultPush


def default_worker_id() -> str:
    """Host-qualified, collision-proof default worker name."""
    return f"{socket.gethostname()}-{secrets.token_hex(3)}"


@dataclass
class _BatchState:
    """Shared flag set by the heartbeat thread when the lease is gone."""

    lost: threading.Event = field(default_factory=threading.Event)


class WorkerNode:
    """One worker process: lease / heartbeat / execute / push."""

    def __init__(
        self,
        head_url: str,
        *,
        worker_id: Optional[str] = None,
        jobs: int = 2,
        lease_cells: int = 4,
        poll_s: float = 0.5,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        runner: Optional[Callable[[SimSpec], RunStats]] = None,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.client = ServeClient.from_url(head_url, tenant="worker")
        self.worker_id = worker_id or default_worker_id()
        self.jobs = max(1, jobs)
        self.lease_cells = max(1, lease_cells)
        self.poll_s = poll_s
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.timeout_s = timeout_s
        self.retries = retries
        self._runner = runner
        self._log = log or (lambda message: None)
        self._stop = threading.Event()
        #: Lifetime counters, mirrored into the CLI's shutdown line.
        self.counters = {
            "leases": 0,
            "cells_done": 0,
            "cells_failed": 0,
            "cells_local_cache": 0,
            "cells_head_cache": 0,
            "cells_simulated": 0,
            "leases_lost": 0,
        }

    def stop(self) -> None:
        self._stop.set()

    # -- cell execution --------------------------------------------------------

    def _resolve_cell(self, spec: SimSpec, spec_hash: str) -> CellOutcome:
        """Local cache -> head artifact -> simulate; never raises."""
        if self.cache is not None:
            hit = self.cache.get(spec)
            if hit is not None:
                self.counters["cells_local_cache"] += 1
                return CellOutcome(
                    spec_hash=spec_hash, stats=hit, simulated=False
                )
            try:
                artifact = self.client.artifact(spec_hash)
                stats = RunStats.from_dict(artifact["stats"])
            except (ServeError, KeyError, TypeError, ValueError):
                pass  # not on the head either; simulate below
            else:
                self.cache.put(spec, stats)
                self.counters["cells_head_cache"] += 1
                return CellOutcome(
                    spec_hash=spec_hash, stats=stats, simulated=False
                )
        try:
            if self._runner is not None:
                stats = self._runner(spec)
            else:
                stats = execute_cell(
                    spec, timeout_s=self.timeout_s, retries=self.retries
                )
        except CellExecutionError as exc:
            return CellOutcome(spec_hash=spec_hash, error={
                "kind": exc.kind,
                "message": exc.message,
                "attempts": exc.attempts,
            })
        except Exception as exc:  # injected-runner failures
            return CellOutcome(spec_hash=spec_hash, error={
                "kind": _failure_kind(exc),
                "message": f"{type(exc).__name__}: {exc}",
                "attempts": 1,
            })
        if self.cache is not None:
            self.cache.put(spec, stats)
        self.counters["cells_simulated"] += 1
        return CellOutcome(spec_hash=spec_hash, stats=stats)

    # -- lease handling --------------------------------------------------------

    def _heartbeat_loop(self, grant: LeaseGrant, state: _BatchState) -> None:
        interval = max(0.05, grant.ttl_s / 3)
        while not state.lost.wait(interval):
            try:
                self.client.heartbeat(grant.lease_id, grant.token)
            except ServeError:
                # Reaped or unreachable: stop starting new cells; cells
                # already executing still push (late results are
                # accepted while the cell is unresolved head-side).
                self.counters["leases_lost"] += 1
                state.lost.set()
                return

    def _push(self, grant: LeaseGrant, outcome: CellOutcome,
              state: _BatchState) -> None:
        push = ResultPush(
            token=grant.token,
            outcomes=(outcome,),
            worker_id=self.worker_id,
        )
        try:
            ack = self.client.push_results(grant.lease_id, push)
        except ServeError as exc:
            self._log(f"push failed for {outcome.spec_hash[:12]}: {exc}")
            state.lost.set()
            return
        if outcome.error is None:
            self.counters["cells_done"] += 1
        else:
            self.counters["cells_failed"] += 1
        if not ack.lease_open:
            state.lost.set()

    def _run_batch(self, grant: LeaseGrant) -> None:
        self.counters["leases"] += 1
        state = _BatchState()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(grant, state),
            name=f"{self.worker_id}-heartbeat",
            daemon=True,
        )
        beat.start()
        try:
            with ThreadPoolExecutor(
                max_workers=self.jobs,
                thread_name_prefix=f"{self.worker_id}-cell",
            ) as pool:
                futures = []
                for cell in grant.cells:
                    if state.lost.is_set() or self._stop.is_set():
                        break  # head requeued the rest; don't duplicate
                    futures.append(pool.submit(
                        self._resolve_cell, cell.spec, cell.spec_hash
                    ))
                for future in futures:
                    self._push(grant, future.result(), state)
        finally:
            state.lost.set()  # stops the heartbeat thread
            beat.join(timeout=5.0)

    # -- main loop -------------------------------------------------------------

    def run(self, max_batches: Optional[int] = None) -> dict:
        """Pull-execute-push until stopped; returns the counters.

        ``max_batches`` bounds the number of *non-empty* grants (tests);
        None runs until :meth:`stop` or the process dies.
        """
        health = self.client.check_protocol()
        self._log(
            f"worker {self.worker_id}: attached to head "
            f"{self.client.host}:{self.client.port} "
            f"(protocol {health.get('protocol_version')}, "
            f"{self.jobs} local job(s), batch={self.lease_cells})"
        )
        batches = 0
        while not self._stop.is_set():
            try:
                grant = self.client.lease(self.worker_id, self.lease_cells)
            except ServeError as exc:
                self._log(f"lease request failed: {exc}; retrying")
                if self._stop.wait(max(self.poll_s, 1.0)):
                    break
                continue
            if grant.is_empty:
                if self._stop.wait(max(self.poll_s, grant.retry_after_s)):
                    break
                continue
            self._log(
                f"lease {grant.lease_id}: {len(grant.cells)} cell(s), "
                f"ttl {grant.ttl_s:.1f}s"
            )
            self._run_batch(grant)
            batches += 1
            if max_batches is not None and batches >= max_batches:
                break
        return dict(self.counters)


def run_worker(head_url: str, **kwargs) -> dict:
    """Build and run one :class:`WorkerNode` (the CLI body)."""
    node = WorkerNode(head_url, **kwargs)
    try:
        return node.run()
    except KeyboardInterrupt:
        node.stop()
        return dict(node.counters)
